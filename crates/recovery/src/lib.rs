//! # lob-recovery — the redo recovery framework
//!
//! This crate implements the substrate the backup paper builds on: the redo
//! recovery theory of Lomet & Tuttle ("Redo recovery from system crashes",
//! VLDB 1995; "Logical logging to extend recovery to new domains", SIGMOD
//! 1999) as summarized in §2 of the backup paper.
//!
//! The three key elements (paper §2.1):
//!
//! 1. an **installation graph** ([`install`]) prescribing the order in which
//!    operation effects must be placed into the stable database — nodes are
//!    logged operations, edges are *read-write* conflicts (write-write order
//!    is implicit under LSN-based recovery; write-read conflicts are *not*
//!    edges);
//! 2. a **write graph** ([`writegraph`]) translating installation order on
//!    operations into flush order on updated objects. Two variants are
//!    provided, selected by [`GraphMode`]:
//!    * [`GraphMode::Intersecting`] — the paper's `W`: operations with
//!      intersecting write sets share a node, `vars(n) = Writes(n)`, and
//!      atomic flush sets grow monotonically (the §2.4 "highly
//!      unsatisfactory" behaviour, reproduced for the ablation experiment);
//!    * [`GraphMode::Refined`] — the paper's `rW`: blind writes remove their
//!      target from the previous holder's `vars` (the old value becomes
//!      *unexposed*), with read-write edges from every reader of the old
//!      value to the blind writer's node preserving recoverability. This is
//!      what makes *cache-manager identity writes* (`W_IP`) and therefore
//!      *installing without flushing* (Iw/oF, §3.2) possible;
//! 3. a **redo test** ([`redo`]): LSN-based — replay a logged write to a
//!    page iff the page's LSN is below the record's LSN. The test is
//!    deliberately crude (extra replays are harmless) and recovery proceeds
//!    in a single forward scan.
//!
//! Module map:
//!
//! * [`writegraph`] — [`WriteGraph`]: incremental construction, flush
//!   plans, node install/flush lifecycle, invariant checking.
//! * [`install`] — explicit installation graph and prefix checking, used by
//!   the property tests to validate that every flush schedule the write
//!   graph permits installs operations in installation order.
//! * [`redo`] — the forward redo pass over a log suffix, used both for
//!   crash recovery of `S` and media roll-forward of a restored backup.
//! * [`repair`] — online single-page repair: dependency closures over a log
//!   suffix, scratch closure replay seeded from a backup generation, and a
//!   deterministic retry schedule for transient I/O.
//! * [`parallel`] — partition-parallel restore and redo: a write-graph-aware
//!   scheduler partitions the log suffix into page-disjoint replay units
//!   (union-find over touched pages) that replay on concurrent workers,
//!   with batched group install into the stable store.
//! * [`instant`] — instant restore: partitions become restore segments
//!   (`Failed → Restoring → Restored`) fed by a generation's page-indexed
//!   media-log archive; a background sweep restores them in order while a
//!   priority queue gives foreground reads and writes on-demand segment
//!   restore, so the store serves *during* media recovery.

mod fxhash;
pub mod install;
pub mod instant;
pub mod parallel;
pub mod redo;
pub mod repair;
pub mod writegraph;

pub use install::InstallGraph;
pub use instant::{InstantError, InstantRestore, InstantStats, SegmentState};
pub use parallel::{
    parallel_install_image, parallel_redo_scan, RecoveryConfig, ReplayPlan, ReplayUnit,
};
pub use redo::{redo_scan, RedoError, RedoOutcome, RedoTarget, StoreRedoTarget};
pub use repair::{
    dependency_closure, records_for_closure, replay_closure, BackoffSchedule, RepairReport,
    ScratchRedoTarget,
};
pub use writegraph::{GraphMode, NodeId, WriteGraph, WriteGraphError};
