//! The installation graph, used for validation.
//!
//! The installation graph (paper §2.2) has logged operations as nodes and
//! **read-write** conflicts as edges: an edge `O → P` (for `O < P` in log
//! order) whenever `readset(O) ∩ writeset(P) ≠ ∅`. Installing `P` before `O`
//! would make `O` unreplayable — its read set has changed.
//!
//! Write-write conflicts are *not* edges here: under LSN-based recovery the
//! database state is never reset, so write-write order is implicitly
//! enforced (and the refined write graph deliberately installs a blind
//! overwriter before the overwritten op in some schedules). Write-read
//! conflicts are never edges.
//!
//! The engine does not use this graph at run time — the write graph is its
//! operational counterpart. This explicit construction exists so property
//! tests can verify the central safety claim: *every install schedule the
//! write graph permits installs operations in a prefix of the installation
//! graph*.

use lob_ops::OpBody;
use lob_pagestore::{Lsn, PageId};
use std::collections::{BTreeMap, BTreeSet};

/// An explicit installation graph over a logged operation history.
#[derive(Debug, Default)]
pub struct InstallGraph {
    ops: Vec<Lsn>,
    reads: BTreeMap<Lsn, BTreeSet<PageId>>,
    writes: BTreeMap<Lsn, BTreeSet<PageId>>,
    /// `edges[p]` = operations that must be installed before `p`.
    edges: BTreeMap<Lsn, BTreeSet<Lsn>>,
    /// Readers seen so far, per page (to build read-write edges
    /// incrementally).
    readers_of: BTreeMap<PageId, BTreeSet<Lsn>>,
}

impl InstallGraph {
    /// An empty graph.
    pub fn new() -> InstallGraph {
        InstallGraph::default()
    }

    /// Append the next operation in log order.
    pub fn push(&mut self, lsn: Lsn, body: &OpBody) {
        let reads: BTreeSet<PageId> = body.readset().into_iter().collect();
        let writes: BTreeSet<PageId> = body.writeset().into_iter().collect();
        let mut preds = BTreeSet::new();
        for w in &writes {
            if let Some(rs) = self.readers_of.get(w) {
                for &r in rs {
                    if r != lsn {
                        preds.insert(r);
                    }
                }
            }
        }
        for r in &reads {
            self.readers_of.entry(*r).or_default().insert(lsn);
        }
        self.reads.insert(lsn, reads);
        self.writes.insert(lsn, writes);
        self.edges.insert(lsn, preds);
        self.ops.push(lsn);
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total read-write edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// Required predecessors of `lsn`.
    pub fn preds(&self, lsn: Lsn) -> Option<&BTreeSet<Lsn>> {
        self.edges.get(&lsn)
    }

    /// Check that `installed` is a **prefix** of the installation graph:
    /// for every installed operation, all of its predecessors are installed.
    /// Returns the first violated edge `(pred, installed_op)` if any.
    pub fn prefix_violation(&self, installed: &BTreeSet<Lsn>) -> Option<(Lsn, Lsn)> {
        for (&p, preds) in &self.edges {
            if installed.contains(&p) {
                for &o in preds {
                    if !installed.contains(&o) {
                        return Some((o, p));
                    }
                }
            }
        }
        None
    }

    /// Convenience: whether `installed` is a prefix.
    pub fn is_prefix(&self, installed: &BTreeSet<Lsn>) -> bool {
        self.prefix_violation(installed).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lob_ops::{LogicalOp, PhysioOp};

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn copy(src: u32, dst: u32) -> OpBody {
        OpBody::Logical(LogicalOp::Copy {
            src: pid(src),
            dst: pid(dst),
        })
    }

    fn physio(t: u32) -> OpBody {
        OpBody::Physio(PhysioOp::SetBytes {
            target: pid(t),
            offset: 0,
            bytes: Bytes::from_static(b"x"),
        })
    }

    #[test]
    fn read_write_conflicts_are_edges() {
        let mut g = InstallGraph::new();
        g.push(Lsn(1), &copy(1, 2)); // reads 1
        g.push(Lsn(2), &physio(1)); // writes 1 → edge 1 → 2
        assert_eq!(g.edge_count(), 1);
        assert!(g.preds(Lsn(2)).unwrap().contains(&Lsn(1)));
    }

    #[test]
    fn write_read_is_not_an_edge() {
        let mut g = InstallGraph::new();
        g.push(Lsn(1), &physio(1)); // writes 1 (also reads it: physio)
        g.push(Lsn(2), &copy(1, 2)); // reads 1 — write-read w.r.t. op 1
                                     // op1 reads page 1 itself, and op2 writes page 2 which nobody read:
                                     // only possible edge would be (1 → x writes page1) — none here.
        assert!(g.preds(Lsn(2)).unwrap().is_empty());
    }

    #[test]
    fn physio_chain_self_edges_excluded() {
        let mut g = InstallGraph::new();
        g.push(Lsn(1), &physio(1));
        g.push(Lsn(2), &physio(1)); // reads+writes 1: edge 1 → 2 (op1 read 1)
        assert!(g.preds(Lsn(2)).unwrap().contains(&Lsn(1)));
        assert!(!g.preds(Lsn(1)).unwrap().contains(&Lsn(1)), "no self edge");
    }

    #[test]
    fn prefix_checking() {
        let mut g = InstallGraph::new();
        g.push(Lsn(1), &copy(1, 2));
        g.push(Lsn(2), &physio(1));
        let empty: BTreeSet<Lsn> = BTreeSet::new();
        assert!(g.is_prefix(&empty));
        let only_first: BTreeSet<Lsn> = [Lsn(1)].into_iter().collect();
        assert!(g.is_prefix(&only_first));
        let only_second: BTreeSet<Lsn> = [Lsn(2)].into_iter().collect();
        assert_eq!(g.prefix_violation(&only_second), Some((Lsn(1), Lsn(2))));
        let both: BTreeSet<Lsn> = [Lsn(1), Lsn(2)].into_iter().collect();
        assert!(g.is_prefix(&both));
    }

    #[test]
    fn btree_split_ordering() {
        // MovRec reads old; RmvRec writes old → MovRec must install first.
        let mut g = InstallGraph::new();
        g.push(
            Lsn(1),
            &OpBody::Logical(LogicalOp::MovRec {
                old: pid(1),
                sep: Bytes::from_static(b"k"),
                new: pid(2),
            }),
        );
        g.push(
            Lsn(2),
            &OpBody::Physio(PhysioOp::RmvRec {
                target: pid(1),
                sep: Bytes::from_static(b"k"),
            }),
        );
        let only_rmv: BTreeSet<Lsn> = [Lsn(2)].into_iter().collect();
        assert!(!g.is_prefix(&only_rmv));
    }
}
