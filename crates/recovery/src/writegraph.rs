//! Write graphs: translating installation order into flush order.
//!
//! A write-graph node `n` carries a set `ops(n)` of uninstalled operations
//! and a set `vars(n)` of objects; atomically flushing `vars(n)` (when `n`
//! has no predecessors) installs `ops(n)` (paper §2.4). Two constructions
//! are provided:
//!
//! * **Intersecting writes (`W`)** — operations whose write sets intersect
//!   are collapsed into one node and `vars(n) = Writes(n)`. Objects can
//!   never leave `vars(n)`, so atomic flush sets grow monotonically — the
//!   behaviour the paper calls "highly unsatisfactory" and the reason the
//!   refined graph exists. Kept for the `fig2` ablation.
//!
//! * **Refined (`rW`)** — a *blind* write of `X` (one that does not read
//!   `X`) moves `X` into the blind writer's node and removes it from the
//!   previous holder's `vars`: the old value of `X` has become *unexposed* —
//!   no future recovery needs it, provided every uninstalled reader of the
//!   old value installs **before the holder** does. The paper's *inverse
//!   write-read edges* (§2.4) — reader → holder, deliberately not
//!   installation-graph edges — enforce that; the ordinary read-write
//!   edges reader → blind-writer are added as well. Cache-manager identity
//!   writes (`W_IP`) are blind writes that do not change the value, so the
//!   reader edges are provably unnecessary and are skipped — this is what
//!   lets Iw/oF (installing without flushing, §3.2) drain `vars(n)` to
//!   empty without waiting on readers.
//!
//! Both constructions keep the graph acyclic by collapsing strongly
//! connected components after every insertion (the paper's "second
//! collapse").

use lob_ops::OpBody;
use lob_pagestore::{Lsn, PageId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which write-graph construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMode {
    /// The paper's `W`: merge on intersecting write sets, `vars = Writes`.
    Intersecting,
    /// The paper's `rW`: blind writes un-expose old values and shrink
    /// `vars`; required for Iw/oF and hence for the backup protocol.
    Refined,
}

/// Stable handle of a write-graph node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

/// Errors from write-graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteGraphError {
    /// The node id is not (or no longer) present.
    NoSuchNode(NodeId),
    /// The node cannot be removed because it still has predecessors.
    HasPredecessors(NodeId),
    /// Internal invariant violation (only from [`WriteGraph::check_invariants`]).
    Invariant(String),
}

impl fmt::Display for WriteGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteGraphError::NoSuchNode(n) => write!(f, "no such write-graph node {n:?}"),
            WriteGraphError::HasPredecessors(n) => {
                write!(f, "node {n:?} still has predecessors")
            }
            WriteGraphError::Invariant(msg) => write!(f, "write-graph invariant: {msg}"),
        }
    }
}

impl std::error::Error for WriteGraphError {}

#[derive(Debug, Default, Clone)]
struct Node {
    ops: Vec<Lsn>,
    vars: BTreeSet<PageId>,
    writes: BTreeSet<PageId>,
    reads: BTreeSet<PageId>,
    preds: BTreeSet<NodeId>,
    succs: BTreeSet<NodeId>,
    /// Installing this node is only crash-safe once the log is durable up
    /// to here. Set when a blind write *steals* an object from this node's
    /// `vars`: the steal's promise — "the thief's logged operation will
    /// regenerate the object" — must survive a crash *before* this node's
    /// remaining vars reach `S` (or the node installs free), or recovery
    /// is left with neither the object's value nor a way to recompute it.
    wal_floor: Lsn,
}

/// The write graph a cache manager consults before flushing.
pub struct WriteGraph {
    mode: GraphMode,
    nodes: BTreeMap<NodeId, Node>,
    /// Node currently responsible for flushing each page (`X ∈ vars(n)`).
    by_var: BTreeMap<PageId, NodeId>,
    /// Nodes with an uninstalled op that read each page.
    readers: BTreeMap<PageId, BTreeSet<NodeId>>,
    next_id: u64,
    /// Largest `|vars(n)|` ever observed (ablation statistic).
    max_vars: usize,
    installed_ops: u64,
}

impl WriteGraph {
    /// An empty graph in the given mode.
    pub fn new(mode: GraphMode) -> WriteGraph {
        WriteGraph {
            mode,
            nodes: BTreeMap::new(),
            by_var: BTreeMap::new(),
            readers: BTreeMap::new(),
            next_id: 0,
            max_vars: 0,
            installed_ops: 0,
        }
    }

    /// The construction mode.
    pub fn mode(&self) -> GraphMode {
        self.mode
    }

    fn fresh_id(&mut self) -> NodeId {
        self.next_id += 1;
        NodeId(self.next_id)
    }

    /// Register a logged operation. `lsn` is the operation's log record LSN;
    /// the read/write sets and blindness are derived from `body`. Returns
    /// the node that now carries the operation.
    pub fn add_op(&mut self, lsn: Lsn, body: &OpBody) -> NodeId {
        let reads: BTreeSet<PageId> = body.readset().into_iter().collect();
        let writes: BTreeSet<PageId> = body.writeset().into_iter().collect();
        let identity = matches!(body, OpBody::IdentityWrite { .. });

        // 1. Decide which existing nodes merge with the new operation.
        let merge_with: BTreeSet<NodeId> = match self.mode {
            GraphMode::Intersecting => {
                // Writes intersect (vars == writes in this mode).
                writes
                    .iter()
                    .filter_map(|w| self.by_var.get(w).copied())
                    .collect()
            }
            GraphMode::Refined => {
                // Only non-blind shared writes force a merge; blind writes
                // steal the object instead (refinement below).
                writes
                    .iter()
                    .filter(|w| reads.contains(*w))
                    .filter_map(|w| self.by_var.get(w).copied())
                    .collect()
            }
        };

        // 2. Build the new node, folding in the merged nodes.
        let merged_any = !merge_with.is_empty();
        let id = self.fresh_id();
        let mut node = Node {
            ops: vec![lsn],
            vars: writes.clone(),
            writes: writes.clone(),
            reads: reads.clone(),
            preds: BTreeSet::new(),
            succs: BTreeSet::new(),
            wal_floor: Lsn::NULL,
        };
        for m in &merge_with {
            // Merge ids were drawn from `by_var`, so they are live.
            let Some(old) = self.detach(*m) else { continue };
            node.ops.extend(old.ops);
            node.vars.extend(old.vars);
            node.writes.extend(old.writes);
            node.reads.extend(old.reads);
            node.preds.extend(old.preds);
            node.succs.extend(old.succs);
            node.wal_floor = node.wal_floor.max(old.wal_floor);
        }
        node.preds.retain(|p| !merge_with.contains(p));
        node.succs.retain(|s| !merge_with.contains(s));

        // 3. Refined mode: blind writes steal their target from the current
        //    holder — the old value becomes unexposed there, PROVIDED every
        //    uninstalled reader of the old value installs before the holder
        //    does. The paper's *inverse write-read edges* (§2.4) enforce
        //    exactly that: reader → holder. (They are extra edges — not
        //    installation-graph edges; the genuine read-write edges from
        //    the same readers to this new node are added in step 4.)
        //    Identity writes change no value, so the old readers are
        //    unaffected and no inverse edges are needed (§2.5) — that is
        //    what keeps Iw/oF from cascading.
        let mut inverse_edges_added = false;
        if self.mode == GraphMode::Refined {
            for w in &writes {
                if reads.contains(w) {
                    continue; // not blind
                }
                if let Some(&holder) = self.by_var.get(w) {
                    if let Some(h) = self.nodes.get_mut(&holder) {
                        h.vars.remove(w);
                        h.wal_floor = h.wal_floor.max(lsn);
                    }
                    if !identity {
                        let readers: Vec<NodeId> = self
                            .readers
                            .get(w)
                            .map(|rs| rs.iter().copied().collect())
                            .unwrap_or_default();
                        for r in readers {
                            if r == holder {
                                continue;
                            }
                            let Some(rn) = self.nodes.get_mut(&r) else {
                                continue;
                            };
                            rn.succs.insert(holder);
                            if let Some(hn) = self.nodes.get_mut(&holder) {
                                hn.preds.insert(r);
                            }
                            inverse_edges_added = true;
                        }
                    }
                }
            }
        }

        // 4. Read-write edges into the new node: every node with an
        //    uninstalled op that read a page this op writes must install
        //    first. (For blind writes these are the paper's inverse
        //    write-read edges.) Identity writes change no value, so the old
        //    readers are unaffected and the edges are skipped — this is what
        //    lets Iw/oF proceed without cascading flushes.
        if !identity {
            for w in &writes {
                if let Some(rs) = self.readers.get(w) {
                    for &r in rs {
                        if r != id && !merge_with.contains(&r) {
                            node.preds.insert(r);
                        }
                    }
                }
            }
        }

        // 5. Install the node and fix up indexes.
        for w in node.vars.iter() {
            self.by_var.insert(*w, id);
        }
        for r in node.reads.iter() {
            self.readers.entry(*r).or_default().insert(id);
        }
        let preds = node.preds.clone();
        let succs = node.succs.clone();
        self.max_vars = self.max_vars.max(node.vars.len());
        self.nodes.insert(id, node);
        for p in preds {
            if let Some(pn) = self.nodes.get_mut(&p) {
                pn.succs.insert(id);
            }
        }
        for s in succs {
            if let Some(sn) = self.nodes.get_mut(&s) {
                sn.preds.insert(id);
            }
        }

        // 6. Second collapse: merge any strongly connected component the new
        //    edges created, keeping the graph a feasible flush order. A
        //    cycle is only possible when this insertion merged existing
        //    nodes (the merged node inherits outgoing edges) or added
        //    inverse edges between existing nodes; a fresh node has no
        //    successors, so plain insertions cannot close a cycle and the
        //    (full-graph) Tarjan pass is skipped.
        if merged_any || inverse_edges_added {
            self.collapse_sccs(id)
        } else {
            id
        }
    }

    /// Remove `m` from the graph entirely (for merging), returning its data.
    /// `None` if the id is not live (callers draw ids from the live node
    /// set, so they treat that as "nothing to do").
    fn detach(&mut self, m: NodeId) -> Option<Node> {
        let node = self.nodes.remove(&m)?;
        for v in &node.vars {
            self.by_var.remove(v);
        }
        for r in &node.reads {
            if let Some(rs) = self.readers.get_mut(r) {
                rs.remove(&m);
            }
        }
        for p in &node.preds {
            if let Some(pn) = self.nodes.get_mut(p) {
                pn.succs.remove(&m);
            }
        }
        for s in &node.succs {
            if let Some(sn) = self.nodes.get_mut(s) {
                sn.preds.remove(&m);
            }
        }
        Some(node)
    }

    /// Collapse every SCC of size > 1. Returns the surviving id of the node
    /// that (transitively) contains `track`.
    fn collapse_sccs(&mut self, track: NodeId) -> NodeId {
        let sccs = self.tarjan();
        let mut result = track;
        for scc in sccs {
            if scc.len() <= 1 {
                continue;
            }
            let Some((&keep, rest)) = scc.split_first() else {
                continue;
            };
            let rest = rest.to_vec();
            let Some(mut merged) = self.detach(keep) else {
                continue;
            };
            for m in &rest {
                let Some(old) = self.detach(*m) else { continue };
                merged.ops.extend(old.ops);
                merged.vars.extend(old.vars);
                merged.writes.extend(old.writes);
                merged.reads.extend(old.reads);
                merged.preds.extend(old.preds);
                merged.succs.extend(old.succs);
                merged.wal_floor = merged.wal_floor.max(old.wal_floor);
            }
            let members: BTreeSet<NodeId> = scc.iter().copied().collect();
            merged.preds.retain(|p| !members.contains(p));
            merged.succs.retain(|s| !members.contains(s));
            for v in merged.vars.iter() {
                self.by_var.insert(*v, keep);
            }
            for r in merged.reads.iter() {
                self.readers.entry(*r).or_default().insert(keep);
            }
            let preds = merged.preds.clone();
            let succs = merged.succs.clone();
            self.max_vars = self.max_vars.max(merged.vars.len());
            self.nodes.insert(keep, merged);
            for p in preds {
                if let Some(pn) = self.nodes.get_mut(&p) {
                    pn.succs.insert(keep);
                }
            }
            for s in succs {
                if let Some(sn) = self.nodes.get_mut(&s) {
                    sn.preds.insert(keep);
                }
            }
            if members.contains(&result) {
                result = keep;
            }
        }
        result
    }

    /// Iterative Tarjan SCC; returns components (each a vector of ids).
    fn tarjan(&self) -> Vec<Vec<NodeId>> {
        #[derive(Clone, Copy)]
        struct Meta {
            index: u32,
            lowlink: u32,
            on_stack: bool,
        }
        let mut meta: BTreeMap<NodeId, Meta> = BTreeMap::new();
        let mut index = 0u32;
        let mut stack: Vec<NodeId> = Vec::new();
        let mut out = Vec::new();

        // Explicit DFS stack of (node, iterator position over succs).
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for start in ids {
            if meta.contains_key(&start) {
                continue;
            }
            let mut call: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
            let succs: Vec<NodeId> = self
                .nodes
                .get(&start)
                .map(|n| n.succs.iter().copied().collect())
                .unwrap_or_default();
            meta.insert(
                start,
                Meta {
                    index,
                    lowlink: index,
                    on_stack: true,
                },
            );
            index += 1;
            stack.push(start);
            call.push((start, succs, 0));

            while let Some((v, succs, mut i)) = call.pop() {
                let mut descended = false;
                while let Some(&w) = succs.get(i) {
                    i += 1;
                    match meta.get(&w).copied() {
                        None => {
                            // Descend into w.
                            meta.insert(
                                w,
                                Meta {
                                    index,
                                    lowlink: index,
                                    on_stack: true,
                                },
                            );
                            index += 1;
                            stack.push(w);
                            let wsuccs: Vec<NodeId> = self
                                .nodes
                                .get(&w)
                                .map(|n| n.succs.iter().copied().collect())
                                .unwrap_or_default();
                            call.push((v, succs, i));
                            call.push((w, wsuccs, 0));
                            descended = true;
                            break;
                        }
                        Some(mw) if mw.on_stack => {
                            if let Some(lv) = meta.get_mut(&v) {
                                lv.lowlink = lv.lowlink.min(mw.index);
                            }
                        }
                        Some(_) => {}
                    }
                }
                if descended {
                    continue;
                }
                // v finished: pop SCC if root, propagate lowlink to parent.
                let Some(mv) = meta.get(&v).copied() else {
                    continue; // v was given meta when it was pushed
                };
                if mv.lowlink == mv.index {
                    let mut scc = Vec::new();
                    // Tarjan invariant: root `v` is still on the stack, so
                    // the pop loop terminates at it (or drains the stack).
                    while let Some(w) = stack.pop() {
                        if let Some(mw) = meta.get_mut(&w) {
                            mw.on_stack = false;
                        }
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(scc);
                }
                if let Some((parent, _, _)) = call.last() {
                    if let Some(lp) = meta.get_mut(parent) {
                        lp.lowlink = lp.lowlink.min(mv.lowlink);
                    }
                }
            }
        }
        out
    }

    /// Node currently responsible for flushing `page`, if any.
    pub fn node_of(&self, page: PageId) -> Option<NodeId> {
        self.by_var.get(&page).copied()
    }

    /// Atomic flush set of a node.
    pub fn vars(&self, id: NodeId) -> Result<&BTreeSet<PageId>, WriteGraphError> {
        self.nodes
            .get(&id)
            .map(|n| &n.vars)
            .ok_or(WriteGraphError::NoSuchNode(id))
    }

    /// The LSN the log must be durable to before this node may be
    /// installed (see the field documentation on the steal semantics).
    /// `Lsn::NULL` when nothing was ever stolen from the node.
    pub fn wal_floor(&self, id: NodeId) -> Result<Lsn, WriteGraphError> {
        self.nodes
            .get(&id)
            .map(|n| n.wal_floor)
            .ok_or(WriteGraphError::NoSuchNode(id))
    }

    /// Uninstalled operations carried by a node.
    pub fn ops(&self, id: NodeId) -> Result<&[Lsn], WriteGraphError> {
        self.nodes
            .get(&id)
            .map(|n| n.ops.as_slice())
            .ok_or(WriteGraphError::NoSuchNode(id))
    }

    /// Whether the node still has write-graph predecessors.
    pub fn has_preds(&self, id: NodeId) -> Result<bool, WriteGraphError> {
        self.nodes
            .get(&id)
            .map(|n| !n.preds.is_empty())
            .ok_or(WriteGraphError::NoSuchNode(id))
    }

    /// All nodes with no predecessors (candidates for flushing/installing).
    pub fn frontier(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.preds.is_empty())
            .map(|(id, _)| *id)
            .collect()
    }

    /// The ancestors of `id` (nodes that must install first), topologically
    /// ordered, followed by `id` itself: a valid install schedule for `id`.
    pub fn flush_plan(&self, id: NodeId) -> Result<Vec<NodeId>, WriteGraphError> {
        if !self.nodes.contains_key(&id) {
            return Err(WriteGraphError::NoSuchNode(id));
        }
        // Gather ancestors by reverse BFS.
        let mut anc: BTreeSet<NodeId> = BTreeSet::new();
        let mut work = vec![id];
        while let Some(v) = work.pop() {
            let Some(n) = self.nodes.get(&v) else {
                continue;
            };
            for &p in &n.preds {
                if anc.insert(p) {
                    work.push(p);
                }
            }
        }
        anc.insert(id);
        // Kahn over the induced subgraph.
        let mut indeg: BTreeMap<NodeId, usize> = anc
            .iter()
            .map(|v| {
                (
                    *v,
                    self.nodes
                        .get(v)
                        .map(|n| n.preds.iter().filter(|p| anc.contains(p)).count())
                        .unwrap_or(0),
                )
            })
            .collect();
        let mut ready: Vec<NodeId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(v, _)| *v)
            .collect();
        let mut plan = Vec::with_capacity(anc.len());
        while let Some(v) = ready.pop() {
            plan.push(v);
            let Some(n) = self.nodes.get(&v) else {
                continue;
            };
            for &s in &n.succs {
                if let Some(d) = indeg.get_mut(&s) {
                    *d = d.saturating_sub(1);
                    if *d == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        debug_assert_eq!(plan.len(), anc.len(), "ancestor subgraph must be acyclic");
        Ok(plan)
    }

    /// Remove a node whose operations are now installed (its `vars` were
    /// flushed, or drained to empty by identity writes). Fails if the node
    /// still has predecessors — installing it would violate installation
    /// order. Returns the installed operations' LSNs.
    pub fn install_node(&mut self, id: NodeId) -> Result<Vec<Lsn>, WriteGraphError> {
        if let Some(n) = self.nodes.get(&id) {
            if !n.preds.is_empty() {
                return Err(WriteGraphError::HasPredecessors(id));
            }
        }
        let Some(node) = self.detach(id) else {
            return Err(WriteGraphError::NoSuchNode(id));
        };
        self.installed_ops += node.ops.len() as u64;
        Ok(node.ops)
    }

    /// Smallest LSN among uninstalled operations — the crash-recovery log
    /// truncation bound.
    pub fn min_uninstalled_lsn(&self) -> Option<Lsn> {
        self.nodes
            .values()
            .flat_map(|n| n.ops.iter().copied())
            .min()
    }

    /// Number of live (uninstalled) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether every operation has been installed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Largest atomic flush set ever observed (the `fig2` ablation metric).
    pub fn max_vars_seen(&self) -> usize {
        self.max_vars
    }

    /// Total operations installed so far.
    pub fn installed_ops(&self) -> u64 {
        self.installed_ops
    }

    /// Iterate over live node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.keys().copied()
    }

    /// Verify internal invariants; used by tests.
    pub fn check_invariants(&self) -> Result<(), WriteGraphError> {
        let inv = |msg: String| Err(WriteGraphError::Invariant(msg));
        // by_var: bijective with vars membership.
        let mut seen_vars: BTreeSet<PageId> = BTreeSet::new();
        for (id, n) in &self.nodes {
            for v in &n.vars {
                if !seen_vars.insert(*v) {
                    return inv(format!("page {v} in vars of two nodes"));
                }
                if self.by_var.get(v) != Some(id) {
                    return inv(format!("by_var[{v}] does not point at holder {id:?}"));
                }
                if !n.writes.contains(v) {
                    return inv(format!("var {v} of {id:?} not in its writes"));
                }
            }
            // Edge symmetry.
            for p in &n.preds {
                match self.nodes.get(p) {
                    Some(pn) if pn.succs.contains(id) => {}
                    _ => return inv(format!("pred edge {p:?}->{id:?} not mirrored")),
                }
            }
            for s in &n.succs {
                match self.nodes.get(s) {
                    Some(sn) if sn.preds.contains(id) => {}
                    _ => return inv(format!("succ edge {id:?}->{s:?} not mirrored")),
                }
            }
            if n.preds.contains(id) || n.succs.contains(id) {
                return inv(format!("self loop at {id:?}"));
            }
        }
        for (v, id) in &self.by_var {
            match self.nodes.get(id) {
                Some(n) if n.vars.contains(v) => {}
                _ => return inv(format!("stale by_var entry {v} -> {id:?}")),
            }
        }
        for (r, rs) in &self.readers {
            for id in rs {
                match self.nodes.get(id) {
                    Some(n) if n.reads.contains(r) => {}
                    _ => return inv(format!("stale reader entry {r} -> {id:?}")),
                }
            }
        }
        // Acyclicity.
        if self.tarjan().iter().any(|scc| scc.len() > 1) {
            return inv("graph contains a cycle".into());
        }
        Ok(())
    }
}

impl fmt::Debug for WriteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "WriteGraph({:?}, {} nodes):",
            self.mode,
            self.nodes.len()
        )?;
        for (id, n) in &self.nodes {
            writeln!(
                f,
                "  {id:?}: ops={:?} vars={:?} preds={:?}",
                n.ops, n.vars, n.preds
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lob_ops::{LogicalOp, PhysioOp};

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn physio(target: u32) -> OpBody {
        OpBody::Physio(PhysioOp::SetBytes {
            target: pid(target),
            offset: 0,
            bytes: Bytes::from_static(b"x"),
        })
    }

    fn copy(src: u32, dst: u32) -> OpBody {
        OpBody::Logical(LogicalOp::Copy {
            src: pid(src),
            dst: pid(dst),
        })
    }

    fn mix(reads: &[u32], writes: &[u32]) -> OpBody {
        OpBody::Logical(LogicalOp::Mix {
            reads: reads.iter().map(|&i| pid(i)).collect(),
            writes: writes.iter().map(|&i| pid(i)).collect(),
            salt: 0,
        })
    }

    fn identity(target: u32) -> OpBody {
        OpBody::IdentityWrite {
            target: pid(target),
            value: Bytes::from_static(b"v"),
        }
    }

    #[test]
    fn page_oriented_ops_have_free_flush_order() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        g.add_op(Lsn(1), &physio(1));
        g.add_op(Lsn(2), &physio(2));
        g.add_op(Lsn(3), &physio(3));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.frontier().len(), 3, "no edges between page-oriented ops");
        g.check_invariants().unwrap();
    }

    #[test]
    fn repeated_updates_accumulate_in_one_node() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        let a = g.add_op(Lsn(1), &physio(1));
        let b = g.add_op(Lsn(2), &physio(1));
        assert_eq!(
            g.node_of(pid(1)),
            Some(b),
            "same-page physiological ops share a node (id may be refreshed by the merge)"
        );
        assert!(!g.nodes.contains_key(&a) || a == b, "old id absorbed");
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.ops(b).unwrap().len(), 2);
        assert_eq!(g.vars(b).unwrap().len(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn copy_creates_flush_dependency() {
        // copy(X, Y): Y must flush before a subsequent update of X.
        let mut g = WriteGraph::new(GraphMode::Refined);
        let ny = g.add_op(Lsn(1), &copy(1, 2)); // reads 1 writes 2
        let nx = g.add_op(Lsn(2), &physio(1)); // updates X=1
        assert_ne!(ny, nx);
        assert!(g.has_preds(nx).unwrap(), "X's node waits on Y's node");
        assert!(!g.has_preds(ny).unwrap());
        assert_eq!(g.frontier(), vec![ny]);
        let plan = g.flush_plan(nx).unwrap();
        assert_eq!(plan, vec![ny, nx]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn install_respects_predecessors() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        let ny = g.add_op(Lsn(1), &copy(1, 2));
        let nx = g.add_op(Lsn(2), &physio(1));
        assert!(matches!(
            g.install_node(nx),
            Err(WriteGraphError::HasPredecessors(_))
        ));
        let ops = g.install_node(ny).unwrap();
        assert_eq!(ops, vec![Lsn(1)]);
        assert!(!g.has_preds(nx).unwrap(), "edge released");
        g.install_node(nx).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.installed_ops(), 2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn intersecting_mode_merges_and_grows() {
        let mut g = WriteGraph::new(GraphMode::Intersecting);
        g.add_op(Lsn(1), &mix(&[1], &[2, 3]));
        g.add_op(Lsn(2), &mix(&[4], &[3, 5]));
        // Write sets {2,3} and {3,5} intersect → one node with vars {2,3,5}.
        assert_eq!(g.node_count(), 1);
        let id = g.node_ids().next().unwrap();
        assert_eq!(g.vars(id).unwrap().len(), 3);
        assert_eq!(g.max_vars_seen(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn intersecting_mode_never_shrinks_vars() {
        let mut g = WriteGraph::new(GraphMode::Intersecting);
        g.add_op(Lsn(1), &mix(&[1], &[2, 3]));
        // Blind physical write of 2 merges rather than stealing.
        g.add_op(
            Lsn(2),
            &OpBody::PhysicalWrite {
                target: pid(2),
                value: Bytes::from_static(b"v"),
            },
        );
        assert_eq!(g.node_count(), 1);
        let id = g.node_ids().next().unwrap();
        assert_eq!(g.vars(id).unwrap().len(), 2, "vars stay {{2,3}}");
        g.check_invariants().unwrap();
    }

    #[test]
    fn refined_mode_blind_write_shrinks_vars() {
        // Figure 2 of the paper: A writes {X=2, Y=3}; blind write C of X
        // leaves node(A) with vars {Y} and node(C) with vars {X}.
        let mut g = WriteGraph::new(GraphMode::Refined);
        let a = g.add_op(Lsn(1), &mix(&[1], &[2, 3]));
        assert_eq!(g.vars(a).unwrap().len(), 2);
        let c = g.add_op(
            Lsn(2),
            &OpBody::PhysicalWrite {
                target: pid(2),
                value: Bytes::from_static(b"v"),
            },
        );
        assert_ne!(a, c);
        assert_eq!(
            g.vars(a).unwrap().iter().copied().collect::<Vec<_>>(),
            vec![pid(3)],
            "X removed from node A's flush set"
        );
        assert_eq!(
            g.vars(c).unwrap().iter().copied().collect::<Vec<_>>(),
            vec![pid(2)]
        );
        assert_eq!(g.node_of(pid(2)), Some(c));
        g.check_invariants().unwrap();
    }

    #[test]
    fn blind_write_gets_edges_from_readers_of_old_value() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        // B reads X(=1) and writes 5: B's node reads 1.
        let b = g.add_op(Lsn(1), &copy(1, 5));
        // C blind-writes X: inverse write-read edge B -> C.
        let c = g.add_op(
            Lsn(2),
            &OpBody::PhysicalWrite {
                target: pid(1),
                value: Bytes::from_static(b"v"),
            },
        );
        assert!(g.has_preds(c).unwrap());
        assert_eq!(g.flush_plan(c).unwrap(), vec![b, c]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn identity_write_steals_without_reader_edges() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        let b = g.add_op(Lsn(1), &copy(1, 5)); // reads 1
        let m = g.add_op(Lsn(2), &identity(1)); // identity write of 1
        assert_ne!(b, m);
        assert!(
            !g.has_preds(m).unwrap(),
            "identity write does not wait on readers — Iw/oF must not cascade"
        );
        g.check_invariants().unwrap();
    }

    #[test]
    fn iwof_drains_vars_to_empty() {
        // Multi-object node; identity writes drain vars; node installs free.
        let mut g = WriteGraph::new(GraphMode::Refined);
        let n = g.add_op(Lsn(1), &mix(&[1], &[2, 3]));
        let m2 = g.add_op(Lsn(2), &identity(2));
        let m3 = g.add_op(Lsn(3), &identity(3));
        assert!(g.vars(n).unwrap().is_empty(), "vars drained by W_IP");
        assert_eq!(g.vars(m2).unwrap().len(), 1);
        assert_eq!(g.vars(m3).unwrap().len(), 1);
        // n has no preds → installable without flushing anything.
        let ops = g.install_node(n).unwrap();
        assert_eq!(ops, vec![Lsn(1)]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn cycles_are_collapsed() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        // op1 reads 1 writes 2; op2 reads 2 writes 1 (physio-style non-blind
        // via Mix reading both targets is cleaner: craft a genuine cycle).
        // n1: reads{1} writes{2}; n2: reads{2} writes{1}: edge n1->n2
        // (n1 read 1? no — n1 reads 1, n2 writes 1 → edge n1->n2).
        let n1 = g.add_op(Lsn(1), &mix(&[1], &[2]));
        let n2 = g.add_op(Lsn(2), &mix(&[2], &[1]));
        // Edge n1 -> n2 exists (n1 read 1, n2 writes 1).
        assert!(g.has_preds(n2).unwrap());
        // op3 reads 3, writes 2 — blind write of 2 steals from n1 and gets
        // an edge from readers of 2 (n2) → n2 -> n3.
        let n3 = g.add_op(Lsn(3), &mix(&[3], &[2]));
        assert_ne!(n3, n1);
        // op4 reads 2 (current = n3's), writes 3 — blind write of 3; edge
        // from readers of 3 (n3) → n3 -> n4; plus n4 reads 2.
        let n4 = g.add_op(Lsn(4), &mix(&[2], &[3]));
        // op5 reads 4, writes 1: blind write of 1, readers of 1 = n1 → n1 -> n5.
        // (no cycle yet; now force one:)
        // op6 reads 1, writes 4... we just need *some* op set that cycles;
        // instead verify global acyclicity holds after all insertions.
        let _ = (n4, n3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn genuine_cycle_collapses_to_single_node() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        // n_a: reads{1} writes{1,2}: physio-ish multi-write (non-blind on 1,
        // blind on 2).
        let a = g.add_op(Lsn(1), &mix(&[1, 2], &[1, 2]));
        // a reads {1,2} writes {1,2} — non-blind both.
        // n_b: reads{2} ... wait, 2 ∈ vars(a) non-blind → merges into a.
        // Use disjoint pages to build a 2-cycle across two nodes:
        // n1: reads{10} writes{11}; n2: reads{11} writes{10}:
        let n1 = g.add_op(Lsn(2), &mix(&[10, 11], &[11])); // reads 10,11 writes 11 (non-blind 11)
        let n2 = g.add_op(Lsn(3), &mix(&[11, 10], &[10])); // reads both, writes 10 (non-blind 10)
                                                           // Edges: n1 reads 10, n2 writes 10 → n1 -> n2.
                                                           //        n2 reads 11, and n1 writes 11, but n1 < n2 so that is a
                                                           //        write-read (no edge). To get the back edge, a later op in
                                                           //        n1's node must write 11 — physio on 11 merges into n1's
                                                           //        node and reads... n2 reads 11 → edge n2 -> (n1 node).
        let n3 = g.add_op(Lsn(4), &mix(&[11], &[11])); // physio on 11, merges into n1
                                                       // Now n1 -> n2 and n2 -> n1 → collapsed.
        assert_eq!(n3, g.node_of(pid(11)).unwrap());
        let holder_10 = g.node_of(pid(10)).unwrap();
        let holder_11 = g.node_of(pid(11)).unwrap();
        assert_eq!(
            holder_10, holder_11,
            "cycle members collapsed into one node"
        );
        let _ = (a, n1, n2);
        g.check_invariants().unwrap();
    }

    #[test]
    fn btree_split_shape_is_a_tree() {
        // MovRec(old=1, new=2) then RmvRec(old=1): node(new) -> node(old).
        let mut g = WriteGraph::new(GraphMode::Refined);
        let mov = OpBody::Logical(LogicalOp::MovRec {
            old: pid(1),
            sep: Bytes::from_static(b"k"),
            new: pid(2),
        });
        let n_new = g.add_op(Lsn(1), &mov);
        let rmv = OpBody::Physio(PhysioOp::RmvRec {
            target: pid(1),
            sep: Bytes::from_static(b"k"),
        });
        let n_old = g.add_op(Lsn(2), &rmv);
        assert_ne!(n_new, n_old);
        assert_eq!(g.vars(n_new).unwrap().len(), 1);
        assert_eq!(g.vars(n_old).unwrap().len(), 1);
        assert_eq!(g.flush_plan(n_old).unwrap(), vec![n_new, n_old]);
        assert_eq!(g.frontier(), vec![n_new]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn min_uninstalled_lsn_tracks_truncation_bound() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        assert_eq!(g.min_uninstalled_lsn(), None);
        let a = g.add_op(Lsn(5), &physio(1));
        g.add_op(Lsn(9), &physio(2));
        assert_eq!(g.min_uninstalled_lsn(), Some(Lsn(5)));
        g.install_node(a).unwrap();
        assert_eq!(g.min_uninstalled_lsn(), Some(Lsn(9)));
    }

    #[test]
    fn node_of_absent_page_is_none() {
        let g = WriteGraph::new(GraphMode::Refined);
        assert_eq!(g.node_of(pid(7)), None);
        assert!(matches!(
            g.vars(NodeId(99)),
            Err(WriteGraphError::NoSuchNode(_))
        ));
    }

    #[test]
    fn blind_steal_sets_wal_floor_on_holder() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        let n = g.add_op(Lsn(1), &mix(&[1], &[2, 3]));
        assert_eq!(g.wal_floor(n).unwrap(), Lsn::NULL);
        // Blind write of 2 steals it; the holder may not install until the
        // thief's record (LSN 5) is durable.
        g.add_op(
            Lsn(5),
            &OpBody::PhysicalWrite {
                target: pid(2),
                value: Bytes::from_static(b"v"),
            },
        );
        assert_eq!(g.wal_floor(n).unwrap(), Lsn(5));
        // A second steal raises the floor.
        g.add_op(
            Lsn(9),
            &OpBody::PhysicalWrite {
                target: pid(3),
                value: Bytes::from_static(b"v"),
            },
        );
        assert_eq!(g.wal_floor(n).unwrap(), Lsn(9));
        assert!(g.vars(n).unwrap().is_empty());
        g.check_invariants().unwrap();
    }

    #[test]
    fn identity_steal_also_sets_wal_floor() {
        // The engine forces identity records before installing anyway, but
        // the graph reports the requirement uniformly.
        let mut g = WriteGraph::new(GraphMode::Refined);
        let n = g.add_op(Lsn(1), &mix(&[1], &[2]));
        g.add_op(Lsn(4), &identity(2));
        assert_eq!(g.wal_floor(n).unwrap(), Lsn(4));
    }

    #[test]
    fn inverse_edges_target_the_holder() {
        // A writes {2}; R reads 2 (uninstalled); thief T blind-writes 2.
        // §2.4: R must install before A (the holder) — edge R → A — in
        // addition to the ordinary read-write edge R → T.
        let mut g = WriteGraph::new(GraphMode::Refined);
        let a = g.add_op(Lsn(1), &mix(&[1], &[2]));
        let r = g.add_op(Lsn(2), &mix(&[2], &[5]));
        let t = g.add_op(
            Lsn(3),
            &OpBody::PhysicalWrite {
                target: pid(2),
                value: Bytes::from_static(b"v"),
            },
        );
        // Holder A lost var 2 but now waits on reader R.
        assert!(g.vars(a).unwrap().is_empty());
        assert!(g.has_preds(a).unwrap(), "inverse write-read edge R -> A");
        assert!(g.has_preds(t).unwrap(), "ordinary read-write edge R -> T");
        assert!(!g.has_preds(r).unwrap());
        // Installing R releases both.
        let plan = g.flush_plan(a).unwrap();
        assert_eq!(plan, vec![r, a]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn wal_floor_survives_merges() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        g.add_op(Lsn(1), &mix(&[1], &[2, 3]));
        g.add_op(
            Lsn(5),
            &OpBody::PhysicalWrite {
                target: pid(2),
                value: Bytes::from_static(b"v"),
            },
        );
        // A physiological op on 3 merges into the (floored) holder.
        let merged = g.add_op(Lsn(6), &mix(&[3], &[3]));
        assert_eq!(g.wal_floor(merged).unwrap(), Lsn(5));
    }

    #[test]
    fn deep_chain_flush_plan_is_topological() {
        let mut g = WriteGraph::new(GraphMode::Refined);
        // copy(1,2), update 1; copy(1,3) ... build a chain:
        // copy(k, k+1) then physio(k): node(k+1) -> node(k).
        let mut last = None;
        for k in 0..10u32 {
            g.add_op(Lsn(2 * k as u64 + 1), &copy(k, k + 1));
            last = Some(g.add_op(Lsn(2 * k as u64 + 2), &physio(k)));
        }
        let plan = g.flush_plan(last.unwrap()).unwrap();
        // The plan respects edges: every node appears after its preds.
        let pos: BTreeMap<NodeId, usize> = plan.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        for &n in &plan {
            for p in &g.nodes[&n].preds {
                if let Some(pi) = pos.get(p) {
                    assert!(pi < &pos[&n], "pred before successor");
                }
            }
        }
        g.check_invariants().unwrap();
    }
}
