//! Partition-parallel restore and redo.
//!
//! The paper's §3.4 parallelism argument is symmetric: just as the on-line
//! backup sweep fans one worker out per coordinator domain, *recovery* can
//! replay independent parts of the log concurrently — provided dependent
//! operations are never reordered. Logical operations create cross-object
//! dependencies (the forest structure the write graph tracks), so the
//! scheduler here partitions the log suffix into **replay units**:
//! connected components of records over the pages they touch (read set ∪
//! write set, union-find). Two records that could ever observe each other —
//! directly or through any chain of intermediate pages — land in the same
//! unit; units are therefore pairwise page-disjoint and can replay on
//! separate workers with no synchronization at all.
//!
//! Why a per-unit [`redo_scan`] is byte-identical to the global sequential
//! scan restricted to that unit's pages:
//!
//! * every record that writes or reads a page of the unit is *in* the unit,
//!   so the per-page LSN test and every replay-time read see exactly the
//!   intermediate states the global scan would produce;
//! * identity-record backdating anchors an identity write after the last
//!   earlier record writing its object — all writers of that object share
//!   the object's component, so the anchor is unit-local;
//! * control records touch no pages; they are counted by the plan and
//!   excluded from every unit.
//!
//! Batching is orthogonal: with `batch > 1` a unit replays through a
//! [`GroupReplay`] table — pages fault in from the store once, every
//! later read and LSN test is local, and installs are deferred and
//! drained as contiguous runs through [`StableStore::write_run`], one
//! lock round-trip and one checksummed [`Page`] construction per
//! *installed* page instead of per replayed write. Deferral is invisible
//! to replay because every read goes through the table. `workers = 1,
//! batch = 1` takes literally the legacy code path ([`redo_scan`] over a
//! [`StoreRedoTarget`]), which the differential tests pin as bit-identical.

use crate::fxhash::FxHashMap;
use crate::redo::{
    anchor_identities, redo_scan, AnchoredIdentity, IdentityAnchors, RedoError, RedoOutcome,
    StoreRedoTarget,
};
use bytes::Bytes;
use lob_pagestore::{Lsn, Page, PageId, PageImage, StableStore, StoreError};
use lob_wal::{LogRecord, RecordBody};
use std::collections::hash_map::Entry;
use std::collections::BTreeSet;

/// Tuning knobs for parallel recovery, carried by `EngineConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Maximum replay workers. `1` (the default) is the sequential legacy
    /// path; each additional worker replays independent units concurrently.
    pub workers: usize,
    /// Pages buffered per group install. `1` (the default) writes through
    /// page-at-a-time; larger batches drain contiguous runs through
    /// [`StableStore::write_run`].
    pub batch: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::sequential()
    }
}

impl RecoveryConfig {
    /// The legacy sequential configuration: one worker, no batching.
    pub fn sequential() -> RecoveryConfig {
        RecoveryConfig {
            workers: 1,
            batch: 1,
        }
    }

    /// A configuration with both knobs clamped to at least 1.
    pub fn new(workers: usize, batch: usize) -> RecoveryConfig {
        RecoveryConfig {
            workers: workers.max(1),
            batch: batch.max(1),
        }
    }
}

/// Union-find over dense node ids, with path compression and deterministic
/// (lowest-root-wins) union so plans are reproducible across runs.
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    fn len(&self) -> usize {
        self.parent.len()
    }

    fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent.get(x).copied().unwrap_or(x);
            if p == x {
                return x;
            }
            let gp = self.parent.get(p).copied().unwrap_or(p);
            if let Some(slot) = self.parent.get_mut(x) {
                *slot = gp;
            }
            x = gp;
        }
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        if let Some(slot) = self.parent.get_mut(hi) {
            *slot = lo;
        }
        lo
    }
}

/// One independently replayable subsequence of the log suffix: record
/// indices (ascending, into the original slice) plus the pages the unit
/// owns. Units of one plan are pairwise page-disjoint.
#[derive(Debug, Clone, Default)]
pub struct ReplayUnit {
    indices: Vec<usize>,
    pages: BTreeSet<PageId>,
}

impl ReplayUnit {
    /// Indices into the original record slice, in log order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Pages owned by this unit (the union of all its records' read and
    /// write sets).
    pub fn pages(&self) -> &BTreeSet<PageId> {
        &self.pages
    }

    /// Number of records in the unit.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the unit holds no records.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// The write-graph-aware schedule for one log suffix: replay units (page
/// connected components) in first-record order, plus the control-record
/// count (controls belong to no unit).
#[derive(Debug, Clone, Default)]
pub struct ReplayPlan {
    units: Vec<ReplayUnit>,
    controls: u64,
}

impl ReplayPlan {
    /// Partition `records` (in LSN order) into replay units with one
    /// union-find pass over the touched pages. Plan construction is on the
    /// restore critical path (only the parallel pipeline pays it), so the
    /// pass allocates nothing per record: pages are visited in place via
    /// [`OpBody::for_each_write`]/[`for_each_read`] and the page→node map
    /// is a seed-free fast-hash table.
    pub fn build(records: &[LogRecord]) -> ReplayPlan {
        let mut uf = UnionFind::default();
        let mut page_node: FxHashMap<PageId, usize> = FxHashMap::default();
        let mut rec_node: Vec<Option<usize>> = Vec::with_capacity(records.len());
        let mut controls = 0u64;
        for rec in records {
            let op = match &rec.body {
                RecordBody::Op(op) => op,
                _ => {
                    controls += 1;
                    rec_node.push(None);
                    continue;
                }
            };
            let mut node: Option<usize> = None;
            let mut touch = |p: PageId| {
                let pn = match page_node.entry(p) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(v) => *v.insert(uf.push()),
                };
                node = Some(match node {
                    None => uf.find(pn),
                    Some(n) => uf.union(n, pn),
                });
            };
            op.for_each_write(&mut touch);
            op.for_each_read(&mut touch);
            // An op touching no pages (none exist today) forms its own
            // trivial unit rather than silently dropping from the plan.
            let n = match node {
                Some(n) => n,
                None => uf.push(),
            };
            rec_node.push(Some(n));
        }
        // Second pass: roots are stable now, so unit membership is two
        // dense-array loads per record (no tree lookups).
        let mut unit_of_root: Vec<usize> = vec![usize::MAX; uf.len()];
        let mut units: Vec<ReplayUnit> = Vec::new();
        for (i, n) in rec_node.iter().enumerate() {
            let Some(n) = *n else { continue };
            let root = uf.find(n);
            let slot = match unit_of_root.get_mut(root) {
                Some(slot) => slot,
                None => continue,
            };
            if *slot == usize::MAX {
                *slot = units.len();
                units.push(ReplayUnit::default());
            }
            if let Some(unit) = units.get_mut(*slot) {
                unit.indices.push(i);
            }
        }
        for (&p, &n) in &page_node {
            let root = uf.find(n);
            if let Some(unit) = unit_of_root.get(root).and_then(|&ui| units.get_mut(ui)) {
                unit.pages.insert(p);
            }
        }
        ReplayPlan { units, controls }
    }

    /// The units, ordered by first record index.
    pub fn units(&self) -> &[ReplayUnit] {
        &self.units
    }

    /// Control records seen (they belong to no unit).
    pub fn controls(&self) -> u64 {
        self.controls
    }

    /// Deterministically pack units onto at most `workers` queues
    /// (longest-processing-time greedy: biggest unit first onto the least
    /// loaded queue, lowest queue id on ties). Returns per-queue lists of
    /// unit indices.
    pub fn assign(&self, workers: usize) -> Vec<Vec<usize>> {
        let lanes = workers.max(1).min(self.units.len().max(1));
        let mut order: Vec<usize> = (0..self.units.len()).collect();
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(self.units.get(i).map_or(0, |u| u.len())),
                i,
            )
        });
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); lanes];
        let mut loads: Vec<usize> = vec![0; lanes];
        for i in order {
            let mut best = 0usize;
            let mut best_load = usize::MAX;
            for (w, &l) in loads.iter().enumerate() {
                if l < best_load {
                    best = w;
                    best_load = l;
                }
            }
            if let Some(q) = queues.get_mut(best) {
                q.push(i);
            }
            if let Some(l) = loads.get_mut(best) {
                *l += self.units.get(i).map_or(0, |u| u.len());
            }
        }
        queues
    }
}

fn map_store_err(e: StoreError) -> RedoError {
    RedoError::Target(e.to_string())
}

fn write_pending_run(
    store: &StableStore,
    start: Option<PageId>,
    run: &mut Vec<Page>,
) -> Result<(), RedoError> {
    if run.is_empty() {
        return Ok(());
    }
    match start {
        Some(s) => store
            // lint:allow(durability-order) restore installs runs from a durable backup image; no log records are at risk
            .write_run(s.partition, s.index, run)
            .map_err(map_store_err),
        None => Ok(()),
    }
}

/// One page of a [`GroupReplay`] table: current value and pageLSN, plus
/// whether it differs from the store (only dirty slots are installed).
struct PageSlot {
    lsn: Lsn,
    data: Bytes,
    dirty: bool,
}

/// The grouped replay state for one unit (`batch > 1`): a local page
/// table the whole subsequence replays against, with installs deferred
/// and drained as contiguous runs through [`StableStore::write_run`].
///
/// This is where the parallel pipeline's single-thread speedup comes
/// from, beyond amortizing lock round-trips:
///
/// * pages are fetched from the store once (first touch) and every later
///   read or LSN test is a local map hit;
/// * intermediate page versions are plain `(Lsn, Bytes)` pairs — the
///   checksummed [`Page`] is only constructed at drain time, so the
///   checksum is paid per *installed* page, not per replayed write.
///
/// The final store state is byte-identical to write-through replay (the
/// differential torture oracle and the grid tests pin this): deferral is
/// invisible to the replay itself because all reads go through the table,
/// and the drained value/LSN per page equals the last write-through
/// value. `batch` bounds how many dirty pages may be pending before a
/// drain, so memory stays proportional to the knob, as with the
/// page-at-a-time path.
pub(crate) struct GroupReplay<'a> {
    // lint: guarded-by(immutable) shared store reference, never reseated
    store: &'a StableStore,
    // lint: guarded-by(immutable) drain threshold is fixed at construction
    batch: usize,
    // lint: guarded-by(unit-local) one replay unit = one worker thread
    table: FxHashMap<PageId, PageSlot>,
    // lint: guarded-by(unit-local) one replay unit = one worker thread
    dirty: usize,
    /// Witness identity: the lock-set witness verifies that exactly one
    /// thread ever touches this replay's table/dirty state.
    // lint: guarded-by(immutable) witness unit id is fixed at construction
    unit: u64,
}

impl<'a> GroupReplay<'a> {
    /// `pages_hint` pre-sizes the table (the plan already counted each
    /// unit's distinct pages); `0` means unknown.
    pub(crate) fn new(store: &'a StableStore, batch: usize, pages_hint: usize) -> Self {
        GroupReplay {
            store,
            batch: batch.max(2),
            table: FxHashMap::with_capacity_and_hasher(pages_hint, Default::default()),
            dirty: 0,
            unit: lob_pagestore::witness::new_unit(),
        }
    }

    /// The slot for `id`, faulted in from the store on first touch.
    fn slot(&mut self, id: PageId) -> Result<&mut PageSlot, RedoError> {
        lob_pagestore::witness::access_exclusive("GroupReplay.table", self.unit);
        match self.table.entry(id) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(v) => {
                let page = self.store.read_page(id).map_err(map_store_err)?;
                Ok(v.insert(PageSlot {
                    lsn: page.lsn(),
                    data: page.data().clone(),
                    dirty: false,
                }))
            }
        }
    }

    /// Record a replayed write; drains when `batch` dirty pages pend.
    pub(crate) fn set(&mut self, id: PageId, lsn: Lsn, data: Bytes) -> Result<(), RedoError> {
        lob_pagestore::witness::access_exclusive("GroupReplay.table", self.unit);
        match self.table.entry(id) {
            Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                if !slot.dirty {
                    slot.dirty = true;
                    self.dirty += 1;
                }
                slot.lsn = lsn;
                slot.data = data;
            }
            Entry::Vacant(v) => {
                v.insert(PageSlot {
                    lsn,
                    data,
                    dirty: true,
                });
                self.dirty += 1;
            }
        }
        if self.dirty >= self.batch {
            return self.drain();
        }
        Ok(())
    }

    /// Replay a physically-logged write in one table probe: the LSN redo
    /// test and the conditional install share the slot lookup, and the
    /// logged value is aliased, never re-derived — replaying `W_P` is an
    /// install, not a re-computation. Returns whether the page was written.
    fn install_if_newer(&mut self, id: PageId, lsn: Lsn, value: &Bytes) -> Result<bool, RedoError> {
        lob_pagestore::witness::access_exclusive("GroupReplay.table", self.unit);
        let written = match self.table.entry(id) {
            Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                if slot.lsn >= lsn {
                    false
                } else {
                    if !slot.dirty {
                        slot.dirty = true;
                        self.dirty += 1;
                    }
                    slot.lsn = lsn;
                    slot.data = value.clone();
                    true
                }
            }
            Entry::Vacant(v) => {
                let page = self.store.read_page(id).map_err(map_store_err)?;
                if page.lsn() >= lsn {
                    v.insert(PageSlot {
                        lsn: page.lsn(),
                        data: page.data().clone(),
                        dirty: false,
                    });
                    false
                } else {
                    v.insert(PageSlot {
                        lsn,
                        data: value.clone(),
                        dirty: true,
                    });
                    self.dirty += 1;
                    true
                }
            }
        };
        if self.dirty >= self.batch {
            self.drain()?;
        }
        Ok(written)
    }

    /// Install every dirty slot as contiguous runs. Slots stay resident
    /// (now clean) so later records still read locally.
    pub(crate) fn drain(&mut self) -> Result<(), RedoError> {
        lob_pagestore::witness::access_exclusive("GroupReplay.table", self.unit);
        if self.dirty == 0 {
            return Ok(());
        }
        let mut ids: Vec<PageId> = self
            .table
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        let mut start: Option<PageId> = None;
        let mut prev: Option<PageId> = None;
        let mut run: Vec<Page> = Vec::new();
        for id in ids {
            let Some(slot) = self.table.get_mut(&id) else {
                continue;
            };
            slot.dirty = false;
            let contiguous = matches!(prev, Some(p)
                if p.partition == id.partition && id.index == p.index + 1);
            if !contiguous {
                write_pending_run(self.store, start, &mut run)?;
                start = Some(id);
            }
            // The deferred checksummed Page: one construction per
            // installed page, not per replayed write.
            run.push(Page::new(slot.lsn, slot.data.clone()));
            prev = Some(id);
        }
        write_pending_run(self.store, start, &mut run)?;
        self.dirty = 0;
        Ok(())
    }
}

/// Replay a record subsequence through a [`GroupReplay`] table. Mirrors
/// [`redo_scan`] exactly — same identity anchoring (shared
/// [`anchor_identities`] analysis), same per-page LSN test, same
/// [`RedoOutcome`] counters — but reads and writes resolve against the
/// local table instead of store round-trips per record.
fn replay_grouped<'a, I>(
    records: I,
    store: &StableStore,
    batch: usize,
    pages_hint: usize,
) -> Result<RedoOutcome, RedoError>
where
    I: Iterator<Item = &'a LogRecord> + Clone,
{
    let IdentityAnchors { at_start, after } = anchor_identities(records.clone());
    let mut replay = GroupReplay::new(store, batch, pages_hint);
    let mut out = RedoOutcome::default();

    fn apply_identity(
        replay: &mut GroupReplay<'_>,
        items: &[AnchoredIdentity],
        out: &mut RedoOutcome,
    ) -> Result<(), RedoError> {
        for (pid, value, ilsn) in items {
            if replay.slot(*pid)?.lsn < *ilsn {
                replay.set(*pid, *ilsn, value.clone())?;
                out.pages_written += 1;
            }
            out.replayed += 1;
        }
        Ok(())
    }
    apply_identity(&mut replay, &at_start, &mut out)?;

    let mut needs: Vec<PageId> = Vec::new();
    let mut writes: Vec<PageId> = Vec::new();
    for (i, rec) in records.enumerate() {
        'one: {
            let body = match &rec.body {
                RecordBody::Op(op) => op,
                _ => {
                    out.controls += 1;
                    break 'one;
                }
            };
            if matches!(body, lob_ops::OpBody::IdentityWrite { .. }) {
                // Applied at its anchor; nothing at its natural position.
                break 'one;
            }
            if let lob_ops::OpBody::PhysicalWrite { target, value } = body {
                // Fast path: redo test + install in one probe, and the
                // same counters the general path would produce.
                if replay.install_if_newer(*target, rec.lsn, value)? {
                    out.pages_written += 1;
                    out.replayed += 1;
                } else {
                    out.skipped += 1;
                }
                break 'one;
            }
            // LSN redo test, per written page. The write set is gathered
            // into a reused scratch vector — no allocation per record.
            writes.clear();
            body.for_each_write(|w| writes.push(w));
            needs.clear();
            for &w in &writes {
                if replay.slot(w)?.lsn < rec.lsn {
                    needs.push(w);
                }
            }
            if needs.is_empty() {
                out.skipped += 1;
                break 'one;
            }
            // Re-evaluate the operation against current (local) state.
            let outputs = {
                let replay = &mut replay;
                let mut reader = |id: PageId| -> Result<Bytes, lob_ops::OpError> {
                    match replay.slot(id) {
                        Ok(slot) => Ok(slot.data.clone()),
                        Err(e) => Err(lob_ops::OpError::ReadFailed {
                            page: id,
                            cause: e.to_string(),
                        }),
                    }
                };
                body.apply(&mut reader).map_err(|source| RedoError::Op {
                    lsn: rec.lsn,
                    source,
                })?
            };
            for (pid, bytes) in outputs {
                if needs.contains(&pid) {
                    replay.set(pid, rec.lsn, bytes)?;
                    out.pages_written += 1;
                }
            }
            out.replayed += 1;
        }
        // Identity records anchored here apply regardless of whether the
        // record itself replayed, was skipped, or was an identity record.
        if let Some(items) = after.get(&i) {
            apply_identity(&mut replay, items, &mut out)?;
        }
    }
    replay.drain()?;
    Ok(out)
}

/// Replay one record subsequence against the store with the requested
/// batching. `batch <= 1` is literally the legacy write-through path.
fn replay_subsequence(
    records: &[LogRecord],
    store: &StableStore,
    batch: usize,
) -> Result<RedoOutcome, RedoError> {
    if batch <= 1 {
        let mut target = StoreRedoTarget::new(store);
        return redo_scan(records, &mut target);
    }
    replay_grouped(records.iter(), store, batch, 0)
}

fn accumulate(total: &mut RedoOutcome, part: RedoOutcome) {
    total.replayed += part.replayed;
    total.skipped += part.skipped;
    total.pages_written += part.pages_written;
    total.controls += part.controls;
}

/// The parallel counterpart of [`redo_scan`]: partition `records` into
/// replay units and fan them out over up to `config.workers` scoped
/// threads, each installing through a batch-`config.batch` target.
///
/// With `workers <= 1` this *is* the sequential scan (no plan, no threads);
/// with `batch <= 1` on top, it is the exact legacy code path. The summed
/// [`RedoOutcome`] is identical to the sequential scan's in every
/// configuration, because units partition the op records and the per-page
/// LSN tests are unit-local. The first failing unit's error (in plan
/// order) is surfaced.
pub fn parallel_redo_scan(
    records: &[LogRecord],
    store: &StableStore,
    config: RecoveryConfig,
) -> Result<RedoOutcome, RedoError> {
    let workers = config.workers.max(1);
    let batch = config.batch.max(1);
    if workers == 1 {
        return replay_subsequence(records, store, batch);
    }
    let plan = ReplayPlan::build(records);
    let queues = plan.assign(workers);
    let mut results: Vec<(usize, Result<RedoOutcome, RedoError>)> =
        Vec::with_capacity(queues.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(queues.len());
        for queue in &queues {
            let plan = &plan;
            handles.push(
                scope.spawn(move || -> (usize, Result<RedoOutcome, RedoError>) {
                    let mut total = RedoOutcome::default();
                    let mut first_unit = usize::MAX;
                    for &ui in queue {
                        first_unit = first_unit.min(ui);
                        let Some(unit) = plan.units().get(ui) else {
                            continue;
                        };
                        let result = if batch <= 1 {
                            // Legacy write-through path wants a slice.
                            let subseq: Vec<LogRecord> = unit
                                .indices()
                                .iter()
                                .filter_map(|&i| records.get(i).cloned())
                                .collect();
                            replay_subsequence(&subseq, store, batch)
                        } else {
                            // Grouped replay walks the indices in place — no
                            // per-unit record clone.
                            replay_grouped(
                                unit.indices().iter().filter_map(|&i| records.get(i)),
                                store,
                                batch,
                                unit.pages().len(),
                            )
                        };
                        match result {
                            Ok(out) => accumulate(&mut total, out),
                            Err(e) => return (ui, Err(e)),
                        }
                    }
                    (first_unit, Ok(total))
                }),
            );
        }
        for h in handles {
            results.push(h.join().unwrap_or((
                0,
                Err(RedoError::Target("parallel redo worker panicked".into())),
            )));
        }
    });
    // Surface the earliest failing unit (plan order) so errors are
    // deterministic regardless of thread interleaving.
    results.sort_by_key(|&(ui, _)| ui);
    let mut total = RedoOutcome {
        controls: plan.controls(),
        ..RedoOutcome::default()
    };
    for (_, r) in results {
        accumulate(&mut total, r?);
    }
    Ok(total)
}

/// Install a backup image's pages with up to `config.workers` workers,
/// each draining contiguous runs of at most `config.batch` pages through
/// [`StableStore::write_run`] (`batch <= 1` degrades to per-page
/// [`StableStore::write_page`], the legacy restore path). Runs are dealt
/// round-robin to workers, so the assignment is deterministic. Returns the
/// number of pages installed.
pub fn parallel_install_image(
    image: &PageImage,
    store: &StableStore,
    config: RecoveryConfig,
) -> Result<u64, RedoError> {
    struct RunSpec {
        start: PageId,
        pages: Vec<Page>,
    }
    let workers = config.workers.max(1);
    let batch = config.batch.max(1);
    let mut runs: Vec<RunSpec> = Vec::new();
    for (id, page) in image.iter() {
        let extend = matches!(runs.last(), Some(r)
            if r.pages.len() < batch
                && r.start.partition == id.partition
                && r.start.index + r.pages.len() as u32 == id.index);
        if extend {
            if let Some(r) = runs.last_mut() {
                r.pages.push(page.clone());
            }
        } else {
            runs.push(RunSpec {
                start: id,
                pages: vec![page.clone()],
            });
        }
    }
    let total: u64 = runs.iter().map(|r| r.pages.len() as u64).sum();
    let install = |spec: &mut RunSpec| -> Result<(), RedoError> {
        if batch <= 1 {
            for (off, page) in spec.pages.drain(..).enumerate() {
                store
                    .write_page(
                        PageId::new(spec.start.partition.0, spec.start.index + off as u32),
                        page,
                    )
                    .map_err(map_store_err)?;
            }
            return Ok(());
        }
        store
            .write_run(spec.start.partition, spec.start.index, &mut spec.pages)
            .map_err(map_store_err)
    };
    if workers == 1 {
        for spec in &mut runs {
            install(spec)?;
        }
        return Ok(total);
    }
    let mut queues: Vec<Vec<RunSpec>> = Vec::new();
    queues.resize_with(workers.min(runs.len().max(1)), Vec::new);
    let lanes = queues.len();
    for (i, spec) in runs.into_iter().enumerate() {
        if let Some(q) = queues.get_mut(i % lanes) {
            q.push(spec);
        }
    }
    let mut results: Vec<Result<(), RedoError>> = Vec::with_capacity(lanes);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lanes);
        for queue in &mut queues {
            let install = &install;
            handles.push(scope.spawn(move || -> Result<(), RedoError> {
                for spec in queue.iter_mut() {
                    install(spec)?;
                }
                Ok(())
            }));
        }
        for h in handles {
            results.push(h.join().unwrap_or(Err(RedoError::Target(
                "parallel restore worker panicked".into(),
            ))));
        }
    });
    for r in results {
        r?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lob_ops::{LogicalOp, OpBody};
    use lob_pagestore::{Lsn, StoreConfig};

    const SIZE: usize = 32;

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn op_rec(lsn: u64, body: OpBody) -> LogRecord {
        LogRecord::new(Lsn(lsn), RecordBody::Op(body))
    }

    fn phys(lsn: u64, t: u32, fill: u8) -> LogRecord {
        op_rec(
            lsn,
            OpBody::PhysicalWrite {
                target: pid(t),
                value: Bytes::from(vec![fill; SIZE]),
            },
        )
    }

    fn copy(lsn: u64, s: u32, d: u32) -> LogRecord {
        op_rec(
            lsn,
            OpBody::Logical(LogicalOp::Copy {
                src: pid(s),
                dst: pid(d),
            }),
        )
    }

    fn store(pages: u32) -> StableStore {
        StableStore::single(StoreConfig { page_size: SIZE }, pages)
    }

    #[test]
    fn plan_groups_connected_records() {
        // {0,1} chained by a copy; {2} independent; a control in no unit.
        let recs = vec![
            phys(1, 0, 0xAA),
            phys(2, 2, 0xBB),
            copy(3, 0, 1),
            LogRecord::new(Lsn(4), RecordBody::BackupEnd { backup_id: 7 }),
        ];
        let plan = ReplayPlan::build(&recs);
        assert_eq!(plan.controls(), 1);
        assert_eq!(plan.units().len(), 2);
        assert_eq!(plan.units()[0].indices(), &[0, 2]);
        assert_eq!(plan.units()[1].indices(), &[1]);
        assert!(plan.units()[0].pages().contains(&pid(1)));
        assert!(!plan.units()[1].pages().contains(&pid(0)));
    }

    #[test]
    fn plan_bridges_transitive_page_chains() {
        // 0 and 2 never co-occur in one op, but page 1 bridges them:
        // copy(0→1) then copy(1→2) must all share one unit.
        let recs = vec![
            phys(1, 0, 0x11),
            phys(2, 2, 0x22),
            copy(3, 0, 1),
            copy(4, 1, 2),
        ];
        let plan = ReplayPlan::build(&recs);
        assert_eq!(plan.units().len(), 1);
        assert_eq!(plan.units()[0].indices(), &[0, 1, 2, 3]);
    }

    #[test]
    fn assignment_is_deterministic_and_covers_all_units() {
        let recs: Vec<LogRecord> = (0..9u32).map(|i| phys(i as u64 + 1, i, i as u8)).collect();
        let plan = ReplayPlan::build(&recs);
        assert_eq!(plan.units().len(), 9);
        let a = plan.assign(4);
        let b = plan.assign(4);
        assert_eq!(a, b);
        let mut all: Vec<usize> = a.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_scan_matches_sequential_scan() {
        let recs = vec![
            phys(1, 0, 0x11),
            phys(2, 3, 0x22),
            copy(3, 0, 1),
            phys(4, 5, 0x33),
            copy(5, 1, 2),
            copy(6, 5, 6),
            op_rec(
                7,
                OpBody::IdentityWrite {
                    target: pid(3),
                    value: Bytes::from(vec![0x22; SIZE]),
                },
            ),
        ];
        let seq = store(8);
        let mut t = StoreRedoTarget::new(&seq);
        let want = redo_scan(&recs, &mut t).unwrap();
        for (workers, batch) in [(2, 1), (4, 8), (2, 64)] {
            let par = store(8);
            let got = parallel_redo_scan(&recs, &par, RecoveryConfig::new(workers, batch)).unwrap();
            assert_eq!(got, want, "workers={workers} batch={batch}");
            for i in 0..8 {
                assert_eq!(
                    par.read_page(pid(i)).unwrap(),
                    seq.read_page(pid(i)).unwrap(),
                    "page {i} workers={workers} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn group_replay_defers_installs_and_serves_reads_locally() {
        let s = store(4);
        let mut g = GroupReplay::new(&s, 64, 0);
        g.set(pid(1), Lsn(5), Bytes::from(vec![0x77; SIZE]))
            .unwrap();
        // Not yet in the store, but visible through the table.
        assert!(s.read_page(pid(1)).unwrap().lsn().is_null());
        assert_eq!(g.slot(pid(1)).unwrap().lsn, Lsn(5));
        assert_eq!(g.slot(pid(1)).unwrap().data.as_ref(), &[0x77; SIZE]);
        g.drain().unwrap();
        let installed = s.read_page(pid(1)).unwrap();
        assert_eq!(installed.lsn(), Lsn(5));
        assert_eq!(installed.data().as_ref(), &[0x77; SIZE]);
    }

    #[test]
    fn group_replay_drains_when_batch_dirty_pages_pend() {
        let s = store(8);
        let mut g = GroupReplay::new(&s, 2, 0);
        g.set(pid(0), Lsn(1), Bytes::from(vec![1; SIZE])).unwrap();
        assert!(s.read_page(pid(0)).unwrap().lsn().is_null());
        // Second dirty page crosses the batch bound: both install.
        g.set(pid(3), Lsn(2), Bytes::from(vec![2; SIZE])).unwrap();
        assert_eq!(s.read_page(pid(0)).unwrap().lsn(), Lsn(1));
        assert_eq!(s.read_page(pid(3)).unwrap().lsn(), Lsn(2));
        // Drained slots stay readable locally (now clean).
        assert_eq!(g.slot(pid(0)).unwrap().data.as_ref(), &[1; SIZE]);
    }

    #[test]
    fn install_image_round_trips_in_every_configuration() {
        let src = store(16);
        for i in 0..16u32 {
            src.write_page(
                pid(i),
                Page::new(Lsn(i as u64 + 1), Bytes::from(vec![i as u8; SIZE])),
            )
            .unwrap();
        }
        let img = src.snapshot().unwrap();
        for (workers, batch) in [(1, 1), (1, 8), (4, 1), (4, 8), (3, 64)] {
            let dst = store(16);
            let n =
                parallel_install_image(&img, &dst, RecoveryConfig::new(workers, batch)).unwrap();
            assert_eq!(n, 16, "workers={workers} batch={batch}");
            for i in 0..16u32 {
                assert_eq!(
                    dst.read_page(pid(i)).unwrap(),
                    src.read_page(pid(i)).unwrap(),
                    "page {i} workers={workers} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn config_clamps_to_one() {
        let c = RecoveryConfig::new(0, 0);
        assert_eq!(c, RecoveryConfig::sequential());
        assert_eq!(RecoveryConfig::default(), RecoveryConfig::sequential());
    }
}
