//! The forward redo pass.
//!
//! Recovery is a single forward scan over a log suffix. For each operation
//! record, the **LSN redo test** decides per written page whether to install
//! the operation's effect: replay iff `pageLSN < recLSN`. The test is crude
//! — an operation whose written pages are all up to date is skipped without
//! being evaluated, and an operation may be re-evaluated even though it was
//! "installed" in the write-graph sense — but by the Lomet–Tuttle
//! applicability theorem (paper §2.3), as long as flush order respected the
//! write graph, each minimal uninstalled operation finds its read set in the
//! state it saw during normal execution, so replay regenerates its exact
//! effects.
//!
//! The same pass serves both recovery flavours:
//!
//! * **crash recovery** — scan from the log truncation point against the
//!   surviving stable database `S`;
//! * **media roll-forward** — restore `S` from the backup image, then scan
//!   from the backup's start LSN.

use bytes::Bytes;
use lob_ops::OpError;
use lob_pagestore::{Page, PageId, StableStore, StoreError};
use lob_wal::{LogRecord, RecordBody};
use std::fmt;

/// Errors during redo.
#[derive(Debug)]
pub enum RedoError {
    /// The redo target failed to read or write a page.
    Target(String),
    /// Re-evaluating an operation failed (should be impossible when flush
    /// order was respected — surfacing it loudly is the point).
    Op {
        /// LSN of the operation that failed to replay.
        lsn: lob_pagestore::Lsn,
        /// Underlying evaluation error.
        source: OpError,
    },
}

impl fmt::Display for RedoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedoError::Target(msg) => write!(f, "redo target error: {msg}"),
            RedoError::Op { lsn, source } => {
                write!(f, "replay of operation at {lsn} failed: {source}")
            }
        }
    }
}

impl std::error::Error for RedoError {}

/// Where redo reads and installs pages. Crash recovery uses
/// [`StoreRedoTarget`] (write-through to `S`); tests use in-memory targets.
pub trait RedoTarget {
    /// Current value of a page (payload + pageLSN).
    fn page(&mut self, id: PageId) -> Result<Page, RedoError>;
    /// Install a page value.
    fn set_page(&mut self, id: PageId, page: Page) -> Result<(), RedoError>;
}

/// Counters describing a redo pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedoOutcome {
    /// Operations whose effects were (at least partly) regenerated.
    pub replayed: u64,
    /// Operations skipped because every written page was already current.
    pub skipped: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Control records (backup begin/end) encountered.
    pub controls: u64,
}

/// One anchored identity write: target page, carried value, the identity
/// record's LSN (installed as the pageLSN).
pub(crate) type AnchoredIdentity = (PageId, Bytes, lob_pagestore::Lsn);

/// The analysis half of the redo pass: where every identity record must
/// apply. `after[j]` = identity writes to apply right after record
/// position `j`; `at_start` = before anything. Shared by the sequential
/// scan and the parallel grouped replay so the backdating rule exists in
/// exactly one place.
#[derive(Debug, Default)]
pub(crate) struct IdentityAnchors {
    pub(crate) at_start: Vec<AnchoredIdentity>,
    pub(crate) after: std::collections::BTreeMap<usize, Vec<AnchoredIdentity>>,
}

/// Anchor every identity record of `records` (an in-LSN-order record
/// sequence; positions are iteration order) immediately after the last
/// earlier record writing its object.
///
/// The last-writer tracking costs a map insert per written page, so a
/// cheap pre-scan skips the whole analysis for suffixes that carry no
/// identity records at all — the common case for media roll-forward of a
/// tail logged under flush-before-install disciplines.
pub(crate) fn anchor_identities<'a, I>(records: I) -> IdentityAnchors
where
    I: Iterator<Item = &'a LogRecord> + Clone,
{
    let any_identity = records.clone().any(|rec| {
        matches!(
            &rec.body,
            RecordBody::Op(lob_ops::OpBody::IdentityWrite { .. })
        )
    });
    let mut anchors = IdentityAnchors::default();
    if !any_identity {
        return anchors;
    }
    let mut last_writer: crate::fxhash::FxHashMap<PageId, usize> =
        crate::fxhash::FxHashMap::default();
    for (i, rec) in records.enumerate() {
        if let RecordBody::Op(op) = &rec.body {
            if let lob_ops::OpBody::IdentityWrite { target, value } = op {
                match last_writer.get(target) {
                    Some(&j) => {
                        anchors
                            .after
                            .entry(j)
                            .or_default()
                            .push((*target, value.clone(), rec.lsn))
                    }
                    None => anchors.at_start.push((*target, value.clone(), rec.lsn)),
                }
            }
            op.for_each_write(|w| {
                last_writer.insert(w, i);
            });
        }
    }
    anchors
}

/// Run the redo pass over `records` (must be in LSN order).
///
/// ## Identity-record backdating
///
/// A cache-manager identity write `W_IP(X, log(X))` is appended at *flush*
/// time, so its LSN is later than operations that **read** the value it
/// carries. Its value, however, has been `X`'s state ever since `X`'s last
/// preceding write — the identity write changes nothing. Replaying it only
/// at its own LSN would let an intermediate operation read a stale or
/// wrongly-regenerated `X` (the operation that produced `X`'s value may
/// itself be unreplayable against the fuzzy backup; that is exactly why the
/// cache manager logged the identity record). This is the replay-time face
/// of the rLSN advancement of Lomet & Tuttle's SIGMOD 1999 paper: the
/// identity record *supersedes* redo of `X` back to `X`'s last write.
///
/// The pass therefore runs in two phases: an analysis phase anchors every
/// identity record immediately after the last earlier record that wrote its
/// object (or at the scan start if none — see [`anchor_identities`]), and
/// the redo phase applies it there — under the usual LSN test, and with the
/// identity record's own LSN as the installed pageLSN so later records
/// interact with it correctly.
pub fn redo_scan(
    records: &[LogRecord],
    target: &mut dyn RedoTarget,
) -> Result<RedoOutcome, RedoError> {
    let IdentityAnchors {
        at_start,
        after: promotions,
    } = anchor_identities(records.iter());

    let mut out = RedoOutcome::default();
    let apply_identity = |target: &mut dyn RedoTarget,
                          items: &[(PageId, Bytes, lob_pagestore::Lsn)],
                          out: &mut RedoOutcome|
     -> Result<(), RedoError> {
        for (pid, value, ilsn) in items {
            if target.page(*pid)?.lsn() < *ilsn {
                target.set_page(*pid, Page::new(*ilsn, value.clone()))?;
                out.pages_written += 1;
            }
            out.replayed += 1;
        }
        Ok(())
    };
    apply_identity(target, &at_start, &mut out)?;

    for (i, rec) in records.iter().enumerate() {
        'one: {
            let body = match &rec.body {
                RecordBody::Op(op) => op,
                _ => {
                    out.controls += 1;
                    break 'one;
                }
            };
            if matches!(body, lob_ops::OpBody::IdentityWrite { .. }) {
                // Applied at its anchor; nothing at its natural position.
                break 'one;
            }
            // LSN redo test, per written page.
            let mut needs = Vec::new();
            for w in body.writeset() {
                if target.page(w)?.lsn() < rec.lsn {
                    needs.push(w);
                }
            }
            if needs.is_empty() {
                out.skipped += 1;
                break 'one;
            }
            // Re-evaluate the operation against current state.
            let mut reader = |id: PageId| -> Result<Bytes, OpError> {
                match target.page(id) {
                    Ok(p) => Ok(p.data().clone()),
                    Err(e) => Err(OpError::ReadFailed {
                        page: id,
                        cause: e.to_string(),
                    }),
                }
            };
            let outputs = body.apply(&mut reader).map_err(|source| RedoError::Op {
                lsn: rec.lsn,
                source,
            })?;
            for (pid, bytes) in outputs {
                if needs.contains(&pid) {
                    target.set_page(pid, Page::new(rec.lsn, bytes))?;
                    out.pages_written += 1;
                }
            }
            out.replayed += 1;
        }
        // Identity records anchored here apply regardless of whether the
        // record itself replayed, was skipped, or was an identity record.
        if let Some(items) = promotions.get(&i) {
            apply_identity(target, items, &mut out)?;
        }
    }
    Ok(out)
}

/// Redo target that reads and writes a [`StableStore`] directly
/// (write-through: recovered pages are installed immediately, so nothing is
/// dirty when recovery completes).
pub struct StoreRedoTarget<'a> {
    store: &'a StableStore,
}

impl<'a> StoreRedoTarget<'a> {
    /// Wrap a store.
    pub fn new(store: &'a StableStore) -> Self {
        StoreRedoTarget { store }
    }
}

fn map_store_err(e: StoreError) -> RedoError {
    RedoError::Target(e.to_string())
}

impl RedoTarget for StoreRedoTarget<'_> {
    fn page(&mut self, id: PageId) -> Result<Page, RedoError> {
        self.store.read_page(id).map_err(map_store_err)
    }

    fn set_page(&mut self, id: PageId, page: Page) -> Result<(), RedoError> {
        // lint:allow(durability-order) redo installs only updates already durable in the log it is replaying
        self.store.write_page(id, page).map_err(map_store_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lob_ops::{LogicalOp, OpBody, PhysioOp};
    use lob_pagestore::{Lsn, StoreConfig};
    use lob_wal::RecordBody;

    const SIZE: usize = 32;

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn store() -> StableStore {
        StableStore::single(StoreConfig { page_size: SIZE }, 8)
    }

    fn op_rec(lsn: u64, body: OpBody) -> LogRecord {
        LogRecord::new(Lsn(lsn), RecordBody::Op(body))
    }

    fn phys(lsn: u64, t: u32, fill: u8) -> LogRecord {
        op_rec(
            lsn,
            OpBody::PhysicalWrite {
                target: pid(t),
                value: Bytes::from(vec![fill; SIZE]),
            },
        )
    }

    #[test]
    fn replays_missing_physical_writes() {
        let s = store();
        let recs = vec![phys(1, 0, 0xAA), phys(2, 1, 0xBB)];
        let mut t = StoreRedoTarget::new(&s);
        let out = redo_scan(&recs, &mut t).unwrap();
        assert_eq!(out.replayed, 2);
        assert_eq!(out.pages_written, 2);
        assert_eq!(s.read_page(pid(0)).unwrap().lsn(), Lsn(1));
        assert_eq!(s.read_page(pid(1)).unwrap().data()[0], 0xBB);
    }

    #[test]
    fn lsn_test_skips_installed_ops() {
        let s = store();
        // Page 0 already carries the effect of LSN 1.
        s.write_page(pid(0), Page::new(Lsn(1), Bytes::from(vec![0xAA; SIZE])))
            .unwrap();
        let recs = vec![phys(1, 0, 0xFF)];
        let mut t = StoreRedoTarget::new(&s);
        let out = redo_scan(&recs, &mut t).unwrap();
        assert_eq!(out.skipped, 1);
        assert_eq!(out.replayed, 0);
        assert_eq!(
            s.read_page(pid(0)).unwrap().data()[0],
            0xAA,
            "installed value untouched"
        );
    }

    #[test]
    fn redo_is_idempotent() {
        let s = store();
        let recs = vec![
            phys(1, 0, 1),
            op_rec(
                2,
                OpBody::Logical(LogicalOp::Copy {
                    src: pid(0),
                    dst: pid(1),
                }),
            ),
            op_rec(
                3,
                OpBody::Physio(PhysioOp::SetBytes {
                    target: pid(0),
                    offset: 0,
                    bytes: Bytes::from_static(b"zz"),
                }),
            ),
        ];
        let mut t = StoreRedoTarget::new(&s);
        redo_scan(&recs, &mut t).unwrap();
        let snap = s.snapshot().unwrap();
        let mut t2 = StoreRedoTarget::new(&s);
        let out2 = redo_scan(&recs, &mut t2).unwrap();
        assert_eq!(out2.replayed, 0);
        assert_eq!(out2.skipped, 3);
        let snap2 = s.snapshot().unwrap();
        for (id, p) in snap.iter() {
            assert_eq!(snap2.get(id).unwrap(), p);
        }
    }

    #[test]
    fn logical_replay_reads_recovered_state() {
        // copy(0 → 1) must see the value the physical write of 0 installed
        // earlier in the same pass.
        let s = store();
        let recs = vec![
            phys(1, 0, 0x77),
            op_rec(
                2,
                OpBody::Logical(LogicalOp::Copy {
                    src: pid(0),
                    dst: pid(1),
                }),
            ),
        ];
        let mut t = StoreRedoTarget::new(&s);
        redo_scan(&recs, &mut t).unwrap();
        assert_eq!(s.read_page(pid(1)).unwrap().data()[0], 0x77);
        assert_eq!(s.read_page(pid(1)).unwrap().lsn(), Lsn(2));
    }

    #[test]
    fn partial_install_replays_only_missing_pages() {
        // Mix writes pages 1 and 2; page 2 was flushed (LSN 1), page 1 not.
        let s = store();
        let body = OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(0)],
            writes: vec![pid(1), pid(2)],
            salt: 5,
        });
        // Normal execution results for comparison.
        let mut exec_reader =
            |id: PageId| -> Result<Bytes, OpError> { Ok(s.read_page(id).unwrap().data().clone()) };
        let outs = body.apply(&mut exec_reader).unwrap();
        // Install only page 2.
        let p2 = outs.iter().find(|(p, _)| *p == pid(2)).unwrap();
        s.write_page(pid(2), Page::new(Lsn(1), p2.1.clone()))
            .unwrap();
        // Pre-existing independent value for page 2's "future": give page 2
        // a later unrelated update to prove it is not clobbered.
        s.write_page(pid(2), Page::new(Lsn(9), Bytes::from(vec![9u8; SIZE])))
            .unwrap();

        let recs = vec![op_rec(1, body)];
        let mut t = StoreRedoTarget::new(&s);
        let out = redo_scan(&recs, &mut t).unwrap();
        assert_eq!(out.replayed, 1);
        assert_eq!(out.pages_written, 1, "only page 1 installed");
        let expect_p1 = outs.iter().find(|(p, _)| *p == pid(1)).unwrap();
        assert_eq!(s.read_page(pid(1)).unwrap().data(), &expect_p1.1);
        assert_eq!(
            s.read_page(pid(2)).unwrap().lsn(),
            Lsn(9),
            "newer page kept"
        );
    }

    #[test]
    fn control_records_are_counted_not_replayed() {
        let s = store();
        let recs = vec![
            LogRecord::new(
                Lsn(1),
                RecordBody::BackupBegin {
                    backup_id: 1,
                    start_lsn: Lsn(1),
                },
            ),
            LogRecord::new(Lsn(2), RecordBody::BackupEnd { backup_id: 1 }),
        ];
        let mut t = StoreRedoTarget::new(&s);
        let out = redo_scan(&recs, &mut t).unwrap();
        assert_eq!(out.controls, 2);
        assert_eq!(out.replayed + out.skipped, 0);
    }

    #[test]
    fn media_failure_surfaces_as_target_error() {
        let s = store();
        s.fail_partition(lob_pagestore::PartitionId(0)).unwrap();
        let recs = vec![phys(1, 0, 1)];
        let mut t = StoreRedoTarget::new(&s);
        assert!(matches!(
            redo_scan(&recs, &mut t),
            Err(RedoError::Target(_))
        ));
    }
}
