//! On-demand single-page (and single-partition) repair.
//!
//! Whole-device media recovery restores a backup image over `S` and rolls
//! the log forward. Online *self-healing* needs something surgical: one
//! quarantined page brought back to its current state while every other
//! page keeps serving. With purely physical log records that is easy —
//! fetch the backup copy, replay just that page's records. With **logical
//! log operations** it is not: replaying `copy(X → Y)` re-reads `X` from
//! current state, and current `X` may already reflect *later* operations
//! than the point the replay has reached, regenerating a wrong `Y`.
//!
//! The fix is the same observation that makes the paper's backup sound:
//! redo is only applicable when every record reads state of the *same
//! vintage* it saw in normal execution (the Lomet–Tuttle applicability
//! theorem, §2.3). So repair computes the **dependency closure** of the
//! target page over the log suffix — the page set reachable through
//! readsets of records that write into the set — seeds a *scratch* target
//! with the backup generation's copies of exactly those pages, and replays
//! the filtered suffix against the scratch. Every read during replay hits
//! a closure page of backup vintage; by the applicability theorem the
//! replay regenerates the target page's exact current value. Only then is
//! the single repaired page written back to `S`.
//!
//! Replaying into a scratch (never `S` itself) also makes repair atomic
//! with respect to a concurrently running backup sweep: the sweep can never
//! capture a page that repair has temporarily rolled back to backup
//! vintage, because no such state ever exists in `S`.
//!
//! Transient I/O errors while fetching backup copies are retried under a
//! [`BackoffSchedule`] — bounded, seeded, and counted in *virtual ticks*:
//! repair never consults a wall clock (the determinism lint on this crate
//! enforces that), so drills replay identically.

use crate::redo::{redo_scan, RedoError, RedoOutcome, RedoTarget};
use lob_pagestore::{CorruptionEntry, Lsn, Page, PageId};
use lob_wal::{LogRecord, RecordBody};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A bounded, deterministic retry schedule for transient I/O errors.
///
/// Delays are *virtual ticks* from a seeded xorshift-style mixer — never a
/// wall clock. Exponential in the attempt number with deterministic
/// jitter, so two repairs with the same seed back off identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// Seed mixed into every delay (use the drill seed for reproducibility).
    pub seed: u64,
    /// Total attempts allowed, including the first (so `max_attempts - 1`
    /// retries). Zero means "don't even try once".
    pub max_attempts: u32,
}

impl BackoffSchedule {
    /// A schedule with the given seed and attempt bound.
    pub fn new(seed: u64, max_attempts: u32) -> BackoffSchedule {
        BackoffSchedule { seed, max_attempts }
    }

    /// Virtual ticks to wait after failed attempt `attempt` (0-based):
    /// `2^(attempt+1)` base plus deterministic jitter below the base.
    pub fn delay_ticks(&self, attempt: u32) -> u64 {
        let base = 1u64 << (attempt.min(16) + 1);
        let mut x = self
            .seed
            .wrapping_add((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        base + (x % base)
    }
}

/// The dependency closure of `targets` over a log suffix: the least page
/// set containing `targets` and closed under "a record that writes into
/// the set contributes its readset and writeset".
///
/// Seeding a scratch replay with backup-vintage copies of exactly this set
/// guarantees every read issued while regenerating the targets hits a page
/// of the vintage the record originally saw — the applicability condition
/// for logical redo. For physical records the closure is just the targets;
/// logical records (copies, moves, tree splits) pull in their sources.
pub fn dependency_closure(records: &[LogRecord], targets: &BTreeSet<PageId>) -> BTreeSet<PageId> {
    let mut closure = targets.clone();
    loop {
        let before = closure.len();
        for rec in records {
            if let RecordBody::Op(op) = &rec.body {
                if op.writeset().iter().any(|w| closure.contains(w)) {
                    closure.extend(op.readset());
                    closure.extend(op.writeset());
                }
            }
        }
        if closure.len() == before {
            return closure;
        }
    }
}

/// The subsequence of `records` a closure replay needs: every operation
/// that writes at least one closure page (identity writes of closure pages
/// included, so the redo pass's identity backdating works unchanged), plus
/// control records (counted, never applied).
pub fn records_for_closure(records: &[LogRecord], closure: &BTreeSet<PageId>) -> Vec<LogRecord> {
    records
        .iter()
        .filter(|rec| match &rec.body {
            RecordBody::Op(op) => op.writeset().iter().any(|w| closure.contains(w)),
            _ => true,
        })
        .cloned()
        .collect()
}

/// A scratch redo target over an in-memory page map. Reads outside the
/// seeded closure are a hard error — they would mean the closure
/// computation was wrong, and silently faulting in current state would
/// reintroduce exactly the vintage mixing the closure exists to prevent.
pub struct ScratchRedoTarget {
    pages: BTreeMap<PageId, Page>,
}

impl ScratchRedoTarget {
    /// A scratch seeded with backup-vintage copies of the closure pages.
    pub fn new(seed: BTreeMap<PageId, Page>) -> ScratchRedoTarget {
        ScratchRedoTarget { pages: seed }
    }

    /// The scratch contents after replay.
    pub fn into_pages(self) -> BTreeMap<PageId, Page> {
        self.pages
    }

    /// A single page of the scratch.
    pub fn get(&self, id: PageId) -> Option<&Page> {
        self.pages.get(&id)
    }
}

impl RedoTarget for ScratchRedoTarget {
    fn page(&mut self, id: PageId) -> Result<Page, RedoError> {
        self.pages.get(&id).cloned().ok_or_else(|| {
            RedoError::Target(format!(
                "repair replay read {id} outside the seeded closure"
            ))
        })
    }

    fn set_page(&mut self, id: PageId, page: Page) -> Result<(), RedoError> {
        self.pages.insert(id, page);
        Ok(())
    }
}

/// Replay the closure-filtered suffix against a scratch seeded with
/// backup-vintage closure pages; returns the redo counters and the final
/// scratch state (closure pages rolled forward to current vintage).
pub fn replay_closure(
    seed: BTreeMap<PageId, Page>,
    records: &[LogRecord],
    closure: &BTreeSet<PageId>,
) -> Result<(RedoOutcome, BTreeMap<PageId, Page>), RedoError> {
    let filtered = records_for_closure(records, closure);
    let mut scratch = ScratchRedoTarget::new(seed);
    let outcome = redo_scan(&filtered, &mut scratch)?;
    Ok((outcome, scratch.into_pages()))
}

/// Telemetry from one page repair: which generation served, what it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// The page brought back into service.
    pub page: PageId,
    /// The dependency closure the replay was seeded with (includes `page`).
    pub closure: Vec<PageId>,
    /// Generation that supplied the closure copies.
    pub generation_used: u64,
    /// Every generation tried, newest first (`generation_used` last).
    pub generations_tried: Vec<u64>,
    /// Redo-start LSN of the generation used.
    pub start_lsn: Lsn,
    /// Log records the repair had to *read* to build and replay the
    /// closure: the full suffix length on the scan path, or the fetched
    /// run/control records (plus any archive catch-up tail) when the
    /// generation's page-indexed archive served the closure.
    pub records_scanned: u64,
    /// Whether the page-indexed media-log archive supplied the closure
    /// records (instead of a full log-suffix scan).
    pub index_used: bool,
    /// Operations replayed by the closure scan.
    pub records_replayed: u64,
    /// Transient-error retries spent across all fetches.
    pub retries: u32,
    /// Virtual backoff ticks accumulated by those retries.
    pub backoff_ticks: u64,
    /// The checksum evidence that triggered the repair, when the scrub
    /// captured one (media failures and quarantines arrive without it).
    pub corruption: Option<CorruptionEntry>,
}

impl fmt::Display for RepairReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repaired {} from backup {} (closure {} pages, {} records replayed from {}, {} of {} scanned records via {}, {} generation(s) tried, {} retries / {} ticks)",
            self.page,
            self.generation_used,
            self.closure.len(),
            self.records_replayed,
            self.start_lsn,
            self.records_replayed,
            self.records_scanned,
            if self.index_used { "archive index" } else { "suffix scan" },
            self.generations_tried.len(),
            self.retries,
            self.backoff_ticks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lob_ops::{LogicalOp, OpBody};
    use lob_pagestore::Lsn;
    use lob_wal::RecordBody;

    const SIZE: usize = 16;

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn op_rec(lsn: u64, body: OpBody) -> LogRecord {
        LogRecord::new(Lsn(lsn), RecordBody::Op(body))
    }

    fn phys(lsn: u64, t: u32, fill: u8) -> LogRecord {
        op_rec(
            lsn,
            OpBody::PhysicalWrite {
                target: pid(t),
                value: Bytes::from(vec![fill; SIZE]),
            },
        )
    }

    fn copy(lsn: u64, src: u32, dst: u32) -> LogRecord {
        op_rec(
            lsn,
            OpBody::Logical(LogicalOp::Copy {
                src: pid(src),
                dst: pid(dst),
            }),
        )
    }

    fn targets(ids: &[u32]) -> BTreeSet<PageId> {
        ids.iter().map(|&i| pid(i)).collect()
    }

    #[test]
    fn closure_of_physical_records_is_the_target() {
        let recs = vec![phys(1, 0, 1), phys(2, 1, 2), phys(3, 2, 3)];
        let c = dependency_closure(&recs, &targets(&[1]));
        assert_eq!(c, targets(&[1]));
    }

    #[test]
    fn closure_pulls_in_logical_sources_transitively() {
        // 0 → 1 → 2: repairing 2 needs 1 (source of its copy), which needs 0.
        let recs = vec![phys(1, 0, 7), copy(2, 0, 1), copy(3, 1, 2)];
        let c = dependency_closure(&recs, &targets(&[2]));
        assert_eq!(c, targets(&[0, 1, 2]));
        // Repairing 0 needs nothing else (nothing 0-writing reads).
        assert_eq!(dependency_closure(&recs, &targets(&[0])), targets(&[0]));
    }

    #[test]
    fn closure_fixpoint_handles_later_records_relevant_to_earlier_adds() {
        // copy(3 → 0) makes 3 relevant; an *earlier* record copy(4 → 3)
        // then becomes relevant too — the fixpoint must revisit.
        let recs = vec![phys(1, 4, 9), copy(2, 4, 3), copy(3, 3, 0)];
        let c = dependency_closure(&recs, &targets(&[0]));
        assert_eq!(c, targets(&[0, 3, 4]));
    }

    #[test]
    fn records_filter_keeps_closure_writers_and_controls() {
        let recs = vec![
            phys(1, 0, 1),
            LogRecord::new(
                Lsn(2),
                RecordBody::BackupBegin {
                    backup_id: 1,
                    start_lsn: Lsn(1),
                },
            ),
            phys(3, 5, 5),
            copy(4, 0, 1),
        ];
        let c = dependency_closure(&recs, &targets(&[1]));
        let kept = records_for_closure(&recs, &c);
        let lsns: Vec<u64> = kept.iter().map(|r| r.lsn.raw()).collect();
        // Record 3 writes page 5, outside the closure — dropped.
        assert_eq!(lsns, vec![1, 2, 4]);
    }

    #[test]
    fn replay_regenerates_target_from_backup_vintage_seed() {
        // Backup vintage: all pages blank. Log: write 0, copy 0 → 1.
        let recs = vec![phys(1, 0, 0xAB), copy(2, 0, 1)];
        let c = dependency_closure(&recs, &targets(&[1]));
        let seed: BTreeMap<PageId, Page> =
            c.iter().map(|&id| (id, Page::formatted(SIZE))).collect();
        let (outcome, pages) = replay_closure(seed, &recs, &c).unwrap();
        assert_eq!(outcome.replayed, 2);
        let repaired = pages.get(&pid(1)).unwrap();
        assert_eq!(repaired.lsn(), Lsn(2));
        assert_eq!(repaired.data()[0], 0xAB);
    }

    #[test]
    fn scratch_read_outside_closure_is_a_hard_error() {
        // A replay that reads outside its seed means the closure was wrong;
        // it must fail loudly, not fault in current state.
        let recs = vec![copy(1, 3, 0)];
        let seed: BTreeMap<PageId, Page> = [(pid(0), Page::formatted(SIZE))].into();
        let only_target: BTreeSet<PageId> = targets(&[0]);
        // Readset reads travel through the op's reader closure, so the
        // scratch's hard error surfaces as a failed replay.
        let err = replay_closure(seed, &recs, &only_target).unwrap_err();
        assert!(matches!(err, RedoError::Op { .. } | RedoError::Target(_)));
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let a = BackoffSchedule::new(42, 5);
        let b = BackoffSchedule::new(42, 5);
        let ticks_a: Vec<u64> = (0..5).map(|i| a.delay_ticks(i)).collect();
        let ticks_b: Vec<u64> = (0..5).map(|i| b.delay_ticks(i)).collect();
        assert_eq!(ticks_a, ticks_b, "same seed, same schedule");
        for (i, &t) in ticks_a.iter().enumerate() {
            let base = 1u64 << (i + 1);
            assert!(t >= base && t < 2 * base, "tick {t} out of band at {i}");
        }
        let other = BackoffSchedule::new(43, 5);
        assert_ne!(
            ticks_a,
            (0..5).map(|i| other.delay_ticks(i)).collect::<Vec<_>>(),
            "different seeds jitter differently"
        );
    }
}
