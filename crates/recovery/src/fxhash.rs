//! A deterministic multiply-xor hasher for the replay machinery's hot maps.
//!
//! Recovery's inner loops index by small fixed-width keys — [`PageId`]s and
//! record positions — and probe once or more per replayed log record, so the
//! per-probe cost of `std`'s DoS-resistant SipHash is pure overhead here:
//! the keys come from the log, not from an adversary, and plan construction
//! sits on the restore critical path. The hasher is also seed-free, so map
//! behaviour is identical across processes — the same determinism the
//! replay plan already guarantees by ordering units by first record.
//!
//! [`PageId`]: lob_pagestore::PageId

// lint:allow(nondet) seed-free BuildHasherDefault<FxHasher> below — no RandomState
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style state: rotate, xor the word in, multiply by a large odd
/// constant. Quality is ample for u32/u64 keys feeding a power-of-two
/// table.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed through [`FxHasher`].
// lint:allow(nondet) seed-free hasher: iteration order is identical across processes
pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use lob_pagestore::PageId;

    #[test]
    fn deterministic_across_maps() {
        let mut a: FxHashMap<PageId, u32> = FxHashMap::default();
        let mut b: FxHashMap<PageId, u32> = FxHashMap::default();
        for i in 0..64u32 {
            a.insert(PageId::new(i % 4, i), i);
            b.insert(PageId::new(i % 4, i), i);
        }
        let ka: Vec<_> = a.keys().copied().collect();
        let kb: Vec<_> = b.keys().copied().collect();
        assert_eq!(ka, kb, "seed-free hashing iterates identically");
    }

    #[test]
    fn distinct_page_ids_spread() {
        use std::collections::HashSet;
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let hashes: HashSet<u64> = (0..4096u32)
            .map(|i| bh.hash_one(PageId::new(i % 8, i / 8)))
            .collect();
        assert_eq!(hashes.len(), 4096, "no collisions on a dense id range");
    }
}
