//! Seeded fault planning on top of the engine's [`FaultHook`].
//!
//! The hook mechanism (in `lob_pagestore::fault`) is deliberately dumb: every
//! I/O site asks "what do I do at this event?". A [`FaultPlan`] is the
//! deterministic answer-machine the torture harness installs: it numbers the
//! I/O events of a run (the event stream is a pure function of the workload
//! seed) and arms exactly one fault at a chosen event index.
//!
//! A plan is used in two passes. First a [`FaultKind::CountOnly`] pass runs
//! the workload to completion and records the total event count; then the
//! harness re-runs the identical workload once per chosen index with a real
//! fault armed, recovers, and verifies against the shadow oracle.

use lob_pagestore::{FaultHook, FaultVerdict, IoEvent, PageId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which fault a [`FaultPlan`] arms, and at which event index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No fault: observe and count every event (pass 1 of a sweep).
    CountOnly,
    /// Process crash at exactly event `k`.
    CrashAt(u64),
    /// Process crash at the `k`-th occurrence (0-based) of one specific
    /// event kind — e.g. "the first log truncation" — regardless of how
    /// many other events interleave. Used for targeted crash points whose
    /// events are rare in a sweep.
    CrashAtEvent(IoEvent, u64),
    /// Tear the first page write at event index `>= k` (front half new,
    /// back half old), which also crashes the process.
    TornWriteAt(u64),
    /// Silently corrupt the first page write at event index `>= k`; the run
    /// continues — a later read or scrub must catch the checksum mismatch.
    CorruptWriteAt(u64),
    /// Fail the medium under the first page-carrying event at index `>= k`
    /// (a store write or a backup copy).
    MediaFailAt(u64),
    /// Corrupt the *stored bytes* under the first page read at index `>= k`;
    /// the read itself then fails the checksum. Exercises detection,
    /// quarantine, and online repair.
    CorruptReadAt(u64),
    /// Tear the stored bytes (front half kept, back half zeroed) under the
    /// first page read at index `>= k`.
    TornReadAt(u64),
    /// Answer the first **two** page reads at index `>= k` with a transient
    /// device error (two, because the engine's bounded backoff must survive
    /// more than one consecutive miss); later reads proceed.
    TransientReadAt(u64),
}

/// Shared state behind the hook closure.
struct PlanState {
    counter: AtomicU64, // lint: atomic(seqcst)
    /// Occurrences of the targeted kind seen so far (CrashAtEvent only).
    kind_seen: AtomicU64, // lint: atomic(seqcst)
    fired: AtomicBool,  // lint: atomic(seqcst)
    fired_page: Mutex<Option<PageId>>,
    fired_event: Mutex<Option<(u64, IoEvent)>>,
}

/// A deterministic fault plan: counts I/O events and arms one fault.
///
/// Cloning is cheap and shares the underlying counters, so the harness can
/// keep a handle while the engine owns the hook.
#[derive(Clone)]
pub struct FaultPlan {
    kind: FaultKind,
    state: Arc<PlanState>,
}

impl FaultPlan {
    /// A plan arming `kind`.
    pub fn new(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            kind,
            state: Arc::new(PlanState {
                counter: AtomicU64::new(0),
                kind_seen: AtomicU64::new(0),
                fired: AtomicBool::new(false),
                fired_page: Mutex::new(None),
                fired_event: Mutex::new(None),
            }),
        }
    }

    /// The hook to install via `Engine::install_fault_hook`.
    pub fn hook(&self) -> FaultHook {
        let kind = self.kind;
        let state = Arc::clone(&self.state);
        Arc::new(move |ev: IoEvent, page: Option<PageId>| {
            let idx = state.counter.fetch_add(1, Ordering::SeqCst);
            let verdict = match kind {
                FaultKind::CountOnly => FaultVerdict::Proceed,
                FaultKind::CrashAt(k) => {
                    if idx == k {
                        FaultVerdict::Crash
                    } else {
                        FaultVerdict::Proceed
                    }
                }
                FaultKind::CrashAtEvent(target, k) => {
                    if ev == target {
                        let seen = state.kind_seen.fetch_add(1, Ordering::SeqCst);
                        if seen == k {
                            FaultVerdict::Crash
                        } else {
                            FaultVerdict::Proceed
                        }
                    } else {
                        FaultVerdict::Proceed
                    }
                }
                // The targeted write kinds are "sticky": the plan waits from
                // event `k` for the first event of the right shape, so every
                // index in `0..total` is a valid arm point even when the
                // event at `k` itself is (say) a log force.
                FaultKind::TornWriteAt(k) => {
                    if idx >= k && ev == IoEvent::PageWrite && !state.fired.load(Ordering::SeqCst) {
                        FaultVerdict::TornWrite
                    } else {
                        FaultVerdict::Proceed
                    }
                }
                FaultKind::CorruptWriteAt(k) => {
                    if idx >= k && ev == IoEvent::PageWrite && !state.fired.load(Ordering::SeqCst) {
                        FaultVerdict::CorruptWrite
                    } else {
                        FaultVerdict::Proceed
                    }
                }
                FaultKind::MediaFailAt(k) => {
                    if idx >= k && page.is_some() && !state.fired.load(Ordering::SeqCst) {
                        FaultVerdict::MediaFail
                    } else {
                        FaultVerdict::Proceed
                    }
                }
                FaultKind::CorruptReadAt(k) => {
                    if idx >= k && ev == IoEvent::PageRead && !state.fired.load(Ordering::SeqCst) {
                        FaultVerdict::CorruptRead
                    } else {
                        FaultVerdict::Proceed
                    }
                }
                FaultKind::TornReadAt(k) => {
                    if idx >= k && ev == IoEvent::PageRead && !state.fired.load(Ordering::SeqCst) {
                        FaultVerdict::TornRead
                    } else {
                        FaultVerdict::Proceed
                    }
                }
                FaultKind::TransientReadAt(k) => {
                    if idx >= k
                        && ev == IoEvent::PageRead
                        && state.kind_seen.fetch_add(1, Ordering::SeqCst) < 2
                    {
                        FaultVerdict::TransientRead
                    } else {
                        FaultVerdict::Proceed
                    }
                }
            };
            if verdict != FaultVerdict::Proceed && !state.fired.swap(true, Ordering::SeqCst) {
                *state.fired_page.lock() = page;
                *state.fired_event.lock() = Some((idx, ev));
            }
            verdict
        })
    }

    /// Which fault this plan arms.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.state.counter.load(Ordering::SeqCst)
    }

    /// Whether the armed fault has fired.
    pub fn fired(&self) -> bool {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// The page the fault fired on, if it fired on a page-carrying event.
    pub fn fired_page(&self) -> Option<PageId> {
        *self.state.fired_page.lock()
    }

    /// The `(event index, event kind)` the fault fired at.
    pub fn fired_event(&self) -> Option<(u64, IoEvent)> {
        *self.state.fired_event.lock()
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("kind", &self.kind)
            .field("events_seen", &self.events_seen())
            .field("fired", &self.fired())
            .finish()
    }
}

/// Evenly sample at most `max_points` distinct indices from `0..total`.
///
/// With `total <= max_points` every index is returned — the sweep is
/// exhaustive; otherwise the sample is an even stride across the run so
/// early, middle, and late crash points are all represented.
pub fn sample_indices(total: u64, max_points: usize) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    let max = max_points.max(1) as u64;
    if total <= max {
        return (0..total).collect();
    }
    let mut out: Vec<u64> = (0..max).map(|i| i * total / max).collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_plan_fires_exactly_once_at_its_index() {
        let plan = FaultPlan::new(FaultKind::CrashAt(2));
        let hook = plan.hook();
        assert_eq!(hook(IoEvent::LogForce, None), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::LogAppend, None), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::LogAppend, None), FaultVerdict::Crash);
        assert_eq!(hook(IoEvent::LogAppend, None), FaultVerdict::Proceed);
        assert!(plan.fired());
        assert_eq!(plan.fired_event(), Some((2, IoEvent::LogAppend)));
        assert_eq!(plan.events_seen(), 4);
    }

    #[test]
    fn torn_plan_waits_for_the_first_page_write() {
        let plan = FaultPlan::new(FaultKind::TornWriteAt(1));
        let hook = plan.hook();
        let p = PageId::new(0, 7);
        assert_eq!(hook(IoEvent::PageWrite, Some(p)), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::LogForce, None), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::PageWrite, Some(p)), FaultVerdict::TornWrite);
        assert_eq!(hook(IoEvent::PageWrite, Some(p)), FaultVerdict::Proceed);
        assert_eq!(plan.fired_page(), Some(p));
    }

    #[test]
    fn media_fail_plan_accepts_any_page_carrying_event() {
        let plan = FaultPlan::new(FaultKind::MediaFailAt(0));
        let hook = plan.hook();
        assert_eq!(hook(IoEvent::LogAppend, None), FaultVerdict::Proceed);
        assert_eq!(
            hook(IoEvent::BackupCopy, Some(PageId::new(0, 3))),
            FaultVerdict::MediaFail
        );
        assert!(plan.fired());
    }

    #[test]
    fn corrupt_read_plan_waits_for_the_first_page_read() {
        let plan = FaultPlan::new(FaultKind::CorruptReadAt(1));
        let hook = plan.hook();
        let p = PageId::new(0, 2);
        assert_eq!(hook(IoEvent::PageRead, Some(p)), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::PageWrite, Some(p)), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::PageRead, Some(p)), FaultVerdict::CorruptRead);
        assert_eq!(hook(IoEvent::PageRead, Some(p)), FaultVerdict::Proceed);
        assert_eq!(plan.fired_page(), Some(p));
        assert_eq!(plan.fired_event(), Some((2, IoEvent::PageRead)));
    }

    #[test]
    fn torn_read_plan_ignores_non_read_events() {
        let plan = FaultPlan::new(FaultKind::TornReadAt(0));
        let hook = plan.hook();
        let p = PageId::new(1, 5);
        assert_eq!(hook(IoEvent::LogRead, None), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::ImageRead, Some(p)), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::PageRead, Some(p)), FaultVerdict::TornRead);
        assert!(plan.fired());
    }

    #[test]
    fn transient_read_plan_fires_twice_then_proceeds() {
        let plan = FaultPlan::new(FaultKind::TransientReadAt(1));
        let hook = plan.hook();
        let p = PageId::new(0, 0);
        assert_eq!(hook(IoEvent::PageRead, Some(p)), FaultVerdict::Proceed);
        assert_eq!(
            hook(IoEvent::PageRead, Some(p)),
            FaultVerdict::TransientRead
        );
        assert_eq!(
            hook(IoEvent::PageRead, Some(p)),
            FaultVerdict::TransientRead
        );
        assert_eq!(hook(IoEvent::PageRead, Some(p)), FaultVerdict::Proceed);
        assert_eq!(hook(IoEvent::PageRead, Some(p)), FaultVerdict::Proceed);
        assert!(plan.fired());
    }

    #[test]
    fn sampling_is_exhaustive_when_small_and_even_when_large() {
        assert_eq!(sample_indices(5, 10), vec![0, 1, 2, 3, 4]);
        let s = sample_indices(1000, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().unwrap() >= 900);
        assert!(sample_indices(0, 10).is_empty());
    }
}
