//! The Figure 5 measurement simulation.
//!
//! The paper's §5 analysis predicts how often a flush needs Iw/oF logging
//! during an `N`-step backup, assuming flushed objects are uniformly
//! distributed over the backup order. This module *measures* the same
//! quantity by running the real protocol: a database under a random
//! workload, flushes uniformly spread over positions and steps, and the
//! actual coordinator decisions counted — then compares against the closed
//! form from `lob-analysis`.
//!
//! Two workloads mirror the two analyses:
//!
//! * **General** (§5.1): every round executes a `Mix` op reading one random
//!   page and blindly writing another random page, then flushes the written
//!   page. The flushed position is uniform; successors are unknowable, so
//!   the §3.5 rule applies.
//! * **Tree** (§5.2): every round copies a random *used* page into a random
//!   *fresh* page (`|S(X)| = 1`, exactly the analysis's modelling
//!   assumption) and flushes the fresh page. Fresh pages are drawn from a
//!   pre-shuffled pool so their positions stay uniform.
//!
//! Each run optionally ends with a full media-recovery drill against the
//! shadow oracle — the measurement and the correctness proof come from the
//! same execution.

use crate::shadow::ShadowOracle;
use crate::workload::WorkloadGen;
use lob_core::{BackupPolicy, Discipline, Engine, EngineConfig, PageId, PartitionId};
use lob_ops::{LogicalOp, OpBody};
use rand::RngCore;

/// Which §5 analysis the simulation instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimDiscipline {
    /// General logical operations (§5.1).
    General,
    /// Tree operations with single successors (§5.2).
    Tree,
}

/// Configuration of one Figure 5 measurement run.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Number of backup steps `N`.
    pub steps: u32,
    /// Database pages (one partition).
    pub pages: u32,
    /// Flush decisions to sample per backup step.
    pub flushes_per_step: u32,
    /// RNG seed.
    pub seed: u64,
    /// Operation discipline.
    pub discipline: SimDiscipline,
    /// Page size (small keeps runs fast; the protocol is size-oblivious).
    pub page_size: usize,
    /// End with a media-failure + restore + roll-forward, verified against
    /// the shadow oracle.
    pub verify_recovery: bool,
    /// Tree workload only: fraction of rounds that flush a *blind-written*
    /// fresh page (no successors — `S(X) = ∅`). The paper's §5.2 analysis
    /// assumes `|S(X)| = 1` and notes that "an object might have no
    /// successors and be flushed without extra logging"; raising this pulls
    /// the measured curve below the closed form.
    pub tree_no_successor_frac: f64,
    /// Tree workload only: when `> 1`, rounds build *chains* of that length
    /// (each fresh page copied from the previous, still-dirty one) before
    /// flushing them newest-first — so the successor table carries
    /// transitive `MAX(X)` spans at decision time, the paper's "an object
    /// may have more than one successor" caveat. `0` or `1` = off (the
    /// paper's |S(X)| = 1 model).
    pub tree_chain_len: u32,
}

impl Fig5Config {
    /// Sensible defaults for `steps = n` and the given discipline.
    pub fn new(n: u32, discipline: SimDiscipline) -> Fig5Config {
        Fig5Config {
            steps: n,
            pages: 2048,
            flushes_per_step: 256,
            seed: 0x5EED_0000 + n as u64,
            discipline,
            page_size: 64,
            verify_recovery: false,
            tree_no_successor_frac: 0.0,
            tree_chain_len: 0,
        }
    }
}

/// Result of one Figure 5 measurement run.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Steps `N`.
    pub steps: u32,
    /// Flush decisions taken while the backup was active.
    pub decisions: u64,
    /// Decisions that required Iw/oF.
    pub iwof: u64,
    /// Measured probability `iwof / decisions`.
    pub measured: f64,
    /// The §5 closed-form prediction for this `N` and discipline.
    pub predicted: f64,
    /// Identity-write bytes appended (the extra log volume).
    pub iwof_bytes: u64,
    /// Total log bytes appended during the backup window.
    pub log_bytes: u64,
    /// Whether the end-of-run media recovery matched the oracle
    /// (`true` when not requested).
    pub recovery_ok: bool,
}

/// Run one Figure 5 measurement.
pub fn run_fig5(cfg: &Fig5Config) -> Result<Fig5Result, String> {
    match cfg.discipline {
        SimDiscipline::General => run_general(cfg),
        SimDiscipline::Tree => run_tree(cfg),
    }
}

fn engine_for(cfg: &Fig5Config, discipline: Discipline) -> Result<Engine, String> {
    Engine::new(EngineConfig {
        discipline,
        policy: BackupPolicy::Protocol,
        ..EngineConfig::single(cfg.pages, cfg.page_size)
    })
    .map_err(|e| e.to_string())
}

fn finish(
    cfg: &Fig5Config,
    mut engine: Engine,
    oracle: &ShadowOracle,
    run: lob_core::BackupRun,
    log_bytes_before: u64,
    predicted: f64,
) -> Result<Fig5Result, String> {
    let image = engine.complete_backup(run).map_err(|e| e.to_string())?;
    let (decisions, iwof, _, _, _, _) = engine.coordinator().stats().snapshot();
    let stats = engine.stats();
    let log_bytes = engine.log().stats().bytes - log_bytes_before;

    let recovery_ok = if cfg.verify_recovery {
        engine
            .store()
            .fail_partition(PartitionId(0))
            .map_err(|e| e.to_string())?;
        engine.media_recover(&image).map_err(|e| e.to_string())?;
        oracle.verify_store(&engine, lob_core::Lsn::MAX).is_ok()
    } else {
        true
    };

    Ok(Fig5Result {
        steps: cfg.steps,
        decisions,
        iwof,
        measured: if decisions == 0 {
            0.0
        } else {
            iwof as f64 / decisions as f64
        },
        predicted,
        iwof_bytes: stats.iwof_bytes,
        log_bytes,
        recovery_ok,
    })
}

fn run_general(cfg: &Fig5Config) -> Result<Fig5Result, String> {
    let mut engine = engine_for(cfg, Discipline::General)?;
    let mut oracle = ShadowOracle::new(cfg.page_size);
    let mut gen = WorkloadGen::new(cfg.seed, cfg.page_size);
    let pages: Vec<PageId> = (0..cfg.pages).map(|i| PageId::new(0, i)).collect();

    // Prefill every page so reads find real content, then quiesce.
    for &p in &pages {
        oracle.execute(&mut engine, gen.physical(p))?;
    }
    engine.flush_all().map_err(|e| e.to_string())?;
    engine.coordinator().stats().reset();
    let log_bytes_before = engine.log().stats().bytes;

    let mut run = engine.begin_backup(cfg.steps).map_err(|e| e.to_string())?;
    loop {
        for _ in 0..cfg.flushes_per_step {
            // One uniformly-positioned flush: blind-write a random page
            // from a random other page, flush it immediately.
            let x = gen.pick(&pages);
            let mut r = gen.pick(&pages);
            while r == x {
                r = gen.pick(&pages);
            }
            oracle.execute(
                &mut engine,
                OpBody::Logical(LogicalOp::Mix {
                    reads: vec![r],
                    writes: vec![x],
                    salt: gen.rng().next_u64(),
                }),
            )?;
            engine.flush_page(x).map_err(|e| e.to_string())?;
        }
        if engine.backup_step(&mut run).map_err(|e| e.to_string())? {
            break;
        }
    }
    let predicted = lob_analysis::general_prob(cfg.steps);
    finish(cfg, engine, &oracle, run, log_bytes_before, predicted)
}

fn run_tree(cfg: &Fig5Config) -> Result<Fig5Result, String> {
    let rounds = (cfg.steps as usize) * (cfg.flushes_per_step as usize);
    if rounds > cfg.pages as usize / 2 {
        return Err(format!(
            "tree run needs pages >= 2 * steps * flushes_per_step \
             ({} rounds, {} pages)",
            rounds, cfg.pages
        ));
    }
    let mut engine = engine_for(cfg, Discipline::Tree)?;
    let mut oracle = ShadowOracle::new(cfg.page_size);
    let mut gen = WorkloadGen::new(cfg.seed, cfg.page_size);
    let all: Vec<PageId> = (0..cfg.pages).map(|i| PageId::new(0, i)).collect();

    // Uniformly interleave used and fresh pages: shuffle, then prefill the
    // first half ("used") and keep the second half as the fresh pool —
    // both uniformly positioned.
    let shuffled = gen.shuffled(&all);
    let (used_init, fresh_pool) = shuffled.split_at(cfg.pages as usize / 2);
    let mut used: Vec<PageId> = used_init.to_vec();
    let mut fresh: Vec<PageId> = fresh_pool.to_vec();
    for &p in &used {
        oracle.execute(&mut engine, gen.physical(p))?;
    }
    engine.flush_all().map_err(|e| e.to_string())?;
    engine.coordinator().stats().reset();
    let log_bytes_before = engine.log().stats().bytes;

    let chain_len = cfg.tree_chain_len.max(1) as usize;
    let mut run = engine.begin_backup(cfg.steps).map_err(|e| e.to_string())?;
    loop {
        let mut flushed_this_step = 0;
        while flushed_this_step < cfg.flushes_per_step {
            if chain_len > 1 {
                // Build a chain x1 ← x2 ← … ← xk of still-dirty copies, so
                // each decision sees a transitive successor span, then
                // flush newest-first.
                let mut chain: Vec<PageId> = Vec::with_capacity(chain_len);
                for i in 0..chain_len {
                    let x = fresh
                        .pop()
                        .ok_or("fresh page pool exhausted before the run ended")?;
                    let src = if i == 0 {
                        gen.pick(&used)
                    } else {
                        chain[i - 1]
                    };
                    oracle.execute(
                        &mut engine,
                        lob_ops::OpBody::Logical(LogicalOp::Copy { src, dst: x }),
                    )?;
                    chain.push(x);
                }
                for &x in chain.iter().rev() {
                    engine.flush_page(x).map_err(|e| e.to_string())?;
                    flushed_this_step += 1;
                }
                used.extend(chain);
            } else {
                let x = fresh
                    .pop()
                    .ok_or("fresh page pool exhausted before the run ended")?;
                let op = if gen.chance(cfg.tree_no_successor_frac) {
                    // Blind initialization of a fresh page: S(X) = ∅.
                    gen.physical(x)
                } else {
                    // The paper's |S(X)| = 1 model: uniform source.
                    gen.copy_to_fresh(&used, x)
                };
                oracle.execute(&mut engine, op)?;
                engine.flush_page(x).map_err(|e| e.to_string())?;
                flushed_this_step += 1;
                used.push(x);
            }
        }
        if engine.backup_step(&mut run).map_err(|e| e.to_string())? {
            break;
        }
    }
    let predicted = lob_analysis::tree_prob(cfg.steps);
    finish(cfg, engine, &oracle, run, log_bytes_before, predicted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_measurement_tracks_closed_form() {
        let mut cfg = Fig5Config::new(4, SimDiscipline::General);
        cfg.pages = 512;
        cfg.flushes_per_step = 128;
        cfg.verify_recovery = true;
        let r = run_fig5(&cfg).unwrap();
        assert_eq!(r.decisions, 4 * 128);
        assert!(r.recovery_ok, "media recovery must match the oracle");
        // 512 samples: allow generous sampling noise around 0.625.
        assert!(
            (r.measured - r.predicted).abs() < 0.08,
            "measured {} vs predicted {}",
            r.measured,
            r.predicted
        );
        assert!(r.iwof > 0 && r.iwof_bytes > 0);
    }

    #[test]
    fn tree_measurement_tracks_closed_form() {
        let mut cfg = Fig5Config::new(4, SimDiscipline::Tree);
        cfg.pages = 2048;
        cfg.flushes_per_step = 128;
        cfg.verify_recovery = true;
        let r = run_fig5(&cfg).unwrap();
        assert_eq!(r.decisions, 4 * 128);
        assert!(r.recovery_ok);
        // Tree N=4: predicted 1/6 + 1/8 - 1/96 ≈ 0.281.
        assert!(
            (r.measured - r.predicted).abs() < 0.08,
            "measured {} vs predicted {}",
            r.measured,
            r.predicted
        );
    }

    #[test]
    fn tree_needs_less_logging_than_general() {
        let mk = |d| {
            let mut cfg = Fig5Config::new(8, d);
            cfg.pages = 4096;
            cfg.flushes_per_step = 128;
            run_fig5(&cfg).unwrap()
        };
        let g = mk(SimDiscipline::General);
        let t = mk(SimDiscipline::Tree);
        assert!(
            t.measured < g.measured,
            "tree {} !< general {}",
            t.measured,
            g.measured
        );
    }

    #[test]
    fn measurements_are_deterministic_per_seed() {
        let mut cfg = Fig5Config::new(2, SimDiscipline::General);
        cfg.pages = 256;
        cfg.flushes_per_step = 64;
        let a = run_fig5(&cfg).unwrap();
        let b = run_fig5(&cfg).unwrap();
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.iwof_bytes, b.iwof_bytes);
        assert_eq!(a.log_bytes, b.log_bytes);
        cfg.seed += 1;
        let c = run_fig5(&cfg).unwrap();
        assert_ne!(a.log_bytes, c.log_bytes, "different seed, different run");
    }

    #[test]
    fn successor_knobs_move_the_measurement_as_predicted() {
        let mk = |no_succ: f64, chain: u32| {
            let mut cfg = Fig5Config::new(4, SimDiscipline::Tree);
            cfg.pages = 4096;
            cfg.flushes_per_step = 128;
            cfg.tree_no_successor_frac = no_succ;
            cfg.tree_chain_len = chain;
            run_fig5(&cfg).unwrap().measured
        };
        let base = mk(0.0, 0);
        let no_succ = mk(0.6, 0);
        let chains = mk(0.0, 4);
        assert!(no_succ < base, "successor-free flushes reduce logging");
        assert!(chains > base, "dirty-copy chains increase logging");
    }

    #[test]
    fn tree_config_validation() {
        let mut cfg = Fig5Config::new(64, SimDiscipline::Tree);
        cfg.pages = 64;
        assert!(run_fig5(&cfg).is_err());
    }
}
