//! # lob-harness — the experiment harness
//!
//! Everything the reproduction's experiments, integration tests, and
//! benches share:
//!
//! * [`shadow`] — [`ShadowOracle`]: a deterministic replica of the logged
//!   operation history providing ground truth. After any crash recovery or
//!   media recovery, the recovered stable database must byte-match the
//!   oracle's state at the surviving log prefix.
//! * [`workload`] — seeded random workload generators for each operation
//!   discipline.
//! * [`sim`] — the Figure 5 measurement: drive uniformly-positioned flushes
//!   through an `N`-step on-line backup and measure the Iw/oF frequency,
//!   for both general and tree operations, against the closed-form §5
//!   model.
//! * [`scenarios`] — the Figure 1 B-tree-split counterexample (naive fuzzy
//!   dump loses data; the paper's protocol does not) and randomized
//!   end-to-end sessions with backups, crashes, and media failures.
//! * [`fault`] — [`FaultPlan`]: seeded planning on top of the engine's
//!   fault hook — count the I/O events of a run, then arm one crash, torn
//!   write, silent corruption, or media failure at a chosen event index.
//! * [`instant`] — [`InstantDrillRunner`]: the restore-under-load drill —
//!   fail every partition, enter an instant-restore epoch, and interleave
//!   verified foreground reads and writes with background sweep steps
//!   under an armed fault plan, including mid-restore kills that re-enter
//!   restore through [`lob_core::Engine::recover_instant`].
//! * [`sessions`] — [`VirtualScheduler`]: a seeded deterministic
//!   interleaver of multi-session scripts over the concurrent
//!   [`lob_core::EngineService`]; and [`SessionDrillRunner`]: threaded
//!   session races with live backup sweeps, optional crash injection
//!   inside the group-commit force, armed dynamic witnesses, and
//!   LSN-merged shadow-oracle verification.
//! * [`torture`] — [`TortureRunner`]: the crash-point torture harness —
//!   re-run a seeded workload crashing at every (or a sampled set of) I/O
//!   event(s), recover, and require byte-equality with the shadow oracle.
//! * [`report`] — plain-text table formatting for the experiment binaries.

pub mod fault;
pub mod instant;
pub mod parallel;
pub mod report;
pub mod scenarios;
pub mod sessions;
pub mod shadow;
pub mod sim;
pub mod torture;
pub mod workload;

pub use fault::{sample_indices, FaultKind, FaultPlan};
pub use instant::{
    InstantCaseResult, InstantDrillConfig, InstantDrillReport, InstantDrillRunner, InstantPath,
};
pub use parallel::{
    combine_images, DrillPath, ParallelCaseResult, ParallelDrillConfig, ParallelDrillReport,
    ParallelDrillRunner,
};
pub use report::Table;
pub use scenarios::{
    fig1_split_scenario, random_session, Fig1Outcome, SessionConfig, SessionReport,
};
pub use sessions::{
    SessionDrillConfig, SessionDrillReport, SessionDrillRunner, SessionStep, VirtualScheduler,
};
pub use shadow::ShadowOracle;
pub use sim::{run_fig5, Fig5Config, Fig5Result, SimDiscipline};
pub use torture::{
    CaseResult, RecoveryPath, TortureConfig, TortureReport, TortureRunner, TortureWorkload,
};
pub use workload::WorkloadGen;
