//! The partition-parallel torture drill (DESIGN.md §5.9).
//!
//! One sweep worker thread per coordinator domain drives
//! [`lob_core::BackupRun::step_batch`] against the shared store while the
//! main thread keeps executing partition-confined operations — the real
//! §3.4 concurrency, not the single-threaded interleaving of the classic
//! torture sweeps — with a [`FaultPlan`] armed underneath all of them.
//!
//! Because threads race, *which* thread trips the armed event index is
//! scheduler-dependent; what the drill checks is outcome-based and must
//! hold for every interleaving:
//!
//! - an injected crash (in any worker or the writer) recovers via crash
//!   or media recovery and byte-verifies against the oracle at the
//!   durable LSN;
//! - injected media damage (media failure, detected corruption) recovers
//!   via media recovery from the pre-session base image and verifies at
//!   the full history;
//! - a fault-free (or silently-corrupting) session completes every sweep,
//!   and the **fuzzy parallel images themselves** restore the store after
//!   total media loss — combine, restore, roll forward, byte-verify.
//!
//! Every case additionally runs with the Eraser-style lock-set witness
//! ([`lob_pagestore::witness`]) armed: instrumented shared-state accesses in
//! the store, coordinator, tracker, and group-replay paths must keep a
//! non-empty candidate lock-set, or the case fails even if it byte-verified.

use crate::fault::{sample_indices, FaultKind, FaultPlan};
use crate::shadow::ShadowOracle;
use crate::workload::WorkloadGen;
use lob_core::{
    BackupImage, BackupPolicy, BackupRun, Discipline, DomainId, Engine, EngineConfig, EngineError,
    GraphMode, LogBacking, Lsn, PageId, PartitionId, PartitionSpec, Tracking,
};
use lob_pagestore::IoEvent;
use std::sync::Arc;
use std::thread;

/// Parameters of one parallel-sweep drill session.
#[derive(Debug, Clone)]
pub struct ParallelDrillConfig {
    /// Workload RNG seed.
    pub seed: u64,
    /// Partitions — one coordinator domain (and one sweep worker) each.
    pub partitions: u32,
    /// Pages per partition.
    pub pages_per_partition: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Progress steps per domain sweep.
    pub steps: u32,
    /// Pages per store-lock round-trip in each worker.
    pub batch: u32,
    /// Operations the writer executes while the workers sweep.
    pub writer_ops: u32,
    /// Probability of flushing a random dirty page after each operation.
    pub flush_prob: f64,
}

impl ParallelDrillConfig {
    /// A small, debug-build-friendly configuration.
    pub fn small(seed: u64) -> ParallelDrillConfig {
        ParallelDrillConfig {
            seed,
            partitions: 4,
            pages_per_partition: 32,
            page_size: 32,
            steps: 4,
            batch: 8,
            writer_ops: 48,
            flush_prob: 0.5,
        }
    }
}

/// How a drill case got the store back to a verified state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrillPath {
    /// Every sweep finished; the parallel images restored the store after
    /// total media loss and verified.
    CleanSweep,
    /// Crash recovery (redo from the durable prefix).
    CrashRecovery,
    /// Media recovery from the pre-session base image.
    MediaRecovery,
}

/// What one drill case observed.
#[derive(Debug, Clone)]
pub struct ParallelCaseResult {
    /// Whether the armed fault fired.
    pub fired: bool,
    /// Access events the lock-set witness recorded during the case (zero
    /// only if the witness was compiled out).
    pub witness_events: u64,
    /// `(event index, event kind)` the fault fired at (racy across runs:
    /// the index is global over all threads' consults).
    pub fired_event: Option<(u64, IoEvent)>,
    /// How the case recovered.
    pub path: DrillPath,
    /// Sweep workers spawned (one per domain).
    pub workers: u32,
    /// Workers whose sweep surfaced an error.
    pub worker_errors: usize,
    /// Total I/O events the session consulted.
    pub events_seen: u64,
}

/// Aggregated outcome of a drill sweep.
#[derive(Debug, Clone, Default)]
pub struct ParallelDrillReport {
    /// I/O events in the fault-free probe session.
    pub events_total: u64,
    /// Event indices armed.
    pub crash_points: Vec<u64>,
    /// Cases executed.
    pub cases: usize,
    /// Cases whose armed fault fired.
    pub faults_fired: usize,
    /// Cases recovered by crash recovery.
    pub crash_recoveries: usize,
    /// Cases recovered by media recovery.
    pub media_recoveries: usize,
    /// Cases where every sweep completed and the parallel images restored.
    pub clean_sweeps: usize,
    /// Workers spawned across all cases.
    pub workers: u32,
    /// Oracle divergences and unexpected failures — must stay empty.
    pub divergences: Vec<String>,
}

/// Combine per-domain images into one restorable image: earliest
/// `start_lsn` wins (roll-forward covers every domain's tail), pages
/// union (domains are disjoint partitions).
pub fn combine_images(images: &[BackupImage]) -> Option<BackupImage> {
    let first = images.first()?;
    let mut combined = first.clone();
    for img in images.iter().skip(1) {
        combined.pages.overlay(&img.pages);
        if img.start_lsn < combined.start_lsn {
            combined.start_lsn = img.start_lsn;
        }
        if img.end_lsn > combined.end_lsn {
            combined.end_lsn = img.end_lsn;
        }
    }
    Some(combined)
}

fn is_media_damage(e: &EngineError) -> bool {
    let s = e.to_string();
    s.contains("media failure") || s.contains("checksum mismatch") || s.contains("quarantined")
}

/// Runs threaded parallel-sweep sessions under a [`FaultPlan`] and
/// verifies recovery against the shadow oracle.
pub struct ParallelDrillRunner {
    cfg: ParallelDrillConfig,
}

impl ParallelDrillRunner {
    /// A runner for the given configuration.
    pub fn new(cfg: ParallelDrillConfig) -> ParallelDrillRunner {
        ParallelDrillRunner { cfg }
    }

    /// The configuration under test.
    pub fn config(&self) -> &ParallelDrillConfig {
        &self.cfg
    }

    /// Build the prefilled per-partition engine the drill races over.
    fn build(&self) -> Result<(Engine, ShadowOracle, WorkloadGen), String> {
        let cfg = &self.cfg;
        let mut engine = Engine::new(EngineConfig {
            page_size: cfg.page_size,
            partitions: (0..cfg.partitions)
                .map(|_| PartitionSpec {
                    pages: cfg.pages_per_partition,
                })
                .collect(),
            discipline: Discipline::General,
            graph_mode: GraphMode::Refined,
            tracking: Tracking::PerPartition,
            cache_capacity: None,
            policy: BackupPolicy::Protocol,
            log: LogBacking::Memory,
            recovery: lob_recovery::RecoveryConfig::sequential(),
            ..EngineConfig::small()
        })
        .map_err(|e| e.to_string())?;
        let mut oracle = ShadowOracle::new(cfg.page_size);
        let mut gen = WorkloadGen::new(cfg.seed, cfg.page_size);
        for p in 0..cfg.partitions {
            for i in 0..cfg.pages_per_partition {
                oracle.execute(&mut engine, gen.physical(PageId::new(p, i)))?;
            }
        }
        engine.flush_all().map_err(|e| e.to_string())?;
        Ok((engine, oracle, gen))
    }

    /// Run one case with `kind` armed: begin a sweep in every domain,
    /// spawn one worker thread per run, race the writer against them on
    /// this thread, then classify whatever surfaced and verify recovery.
    ///
    /// The Eraser-style lock-set witness ([`lob_pagestore::witness`]) is
    /// armed for the duration of the case: any instrumented shared site
    /// whose candidate lock-set goes empty fails the case, fault or no
    /// fault — and so is the ordering witness
    /// ([`lob_pagestore::witness::ORDER_CONTRACTS`]): a consumer I/O event
    /// observed before its required generator fails the case the same way.
    /// Concurrent cases in one process share the global registry — arming
    /// is depth-counted, so an overlapping case never resets the seen-set
    /// mid-flight, and every instrumented access pairs with its hold.
    pub fn run_case(&self, kind: FaultKind) -> Result<ParallelCaseResult, String> {
        lob_pagestore::witness::arm();
        let res = self.run_case_inner(kind);
        let events = lob_pagestore::witness::events();
        let violations = lob_pagestore::witness::take_violations();
        let order_violations = lob_pagestore::witness::take_order_violations();
        lob_pagestore::witness::disarm();
        let tail = match &res {
            Err(e) => format!(" (case also failed: {e})"),
            Ok(_) => String::new(),
        };
        if !violations.is_empty() {
            return Err(format!(
                "lock witness flagged {} site(s): {}{tail}",
                violations.len(),
                violations.join("; ")
            ));
        }
        if !order_violations.is_empty() {
            return Err(format!(
                "ordering witness flagged {} event(s): {}{tail}",
                order_violations.len(),
                order_violations.join("; ")
            ));
        }
        res.map(|mut case| {
            case.witness_events = events;
            case
        })
    }

    fn run_case_inner(&self, kind: FaultKind) -> Result<ParallelCaseResult, String> {
        let cfg = &self.cfg;
        let (mut engine, mut oracle, mut gen) = self.build()?;
        // The pre-session base image pins the media barrier and is what
        // media recovery falls back to when no sweep completed.
        let base = engine.offline_backup().map_err(|e| e.to_string())?;

        let plan = FaultPlan::new(kind);
        engine.install_fault_hook(Some(plan.hook()));

        let mut runs: Vec<BackupRun> = Vec::new();
        let mut ids: Vec<u64> = Vec::new();
        let mut begin_err: Option<EngineError> = None;
        for d in 0..engine.coordinator().domain_count() {
            match engine.begin_backup_of(DomainId(d), cfg.steps) {
                Ok(r) => {
                    ids.push(r.backup_id());
                    runs.push(r);
                }
                Err(e) => {
                    begin_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = begin_err {
            // The armed event landed inside a begin (its BackupBegin log
            // force): no threads ever spawned.
            drop(runs);
            return self.settle(engine, oracle, &base, Vec::new(), ids, vec![e], &plan, 0);
        }
        let workers = runs.len() as u32;

        let coordinator = Arc::clone(engine.coordinator());
        let store = Arc::clone(engine.store());
        let batch = cfg.batch;
        let mut handles = Vec::new();
        for mut run in runs {
            let c = Arc::clone(&coordinator);
            let s = Arc::clone(&store);
            handles.push(thread::spawn(move || {
                let res = loop {
                    match run.step_batch(&c, &s, batch) {
                        Ok(true) => break Ok(()),
                        Ok(false) => {}
                        Err(e) => break Err(e),
                    }
                };
                (run, res)
            }));
        }

        // The writer races the workers: partition-confined operations plus
        // probabilistic flushes, exactly the traffic the trackers referee.
        let mut errors: Vec<EngineError> = Vec::new();
        for _ in 0..cfg.writer_ops {
            let p = gen.below(cfg.partitions as usize) as u32;
            let pages: Vec<PageId> = (0..cfg.pages_per_partition)
                .map(|i| PageId::new(p, i))
                .collect();
            let body = if gen.chance(0.5) && pages.len() >= 4 {
                gen.mix(&pages, 2, 2)
            } else {
                let pg = PageId::new(p, gen.below(pages.len()) as u32);
                gen.physio(pg)
            };
            match engine.execute(body.clone()) {
                Ok(lsn) => oracle
                    .apply(lsn, &body)
                    .map_err(|e| format!("oracle apply failed: {e}"))?,
                Err(e) => {
                    errors.push(e);
                    break;
                }
            }
            if gen.chance(cfg.flush_prob) {
                let dirty = engine.cache().dirty_pages();
                let victim = if dirty.is_empty() {
                    None
                } else {
                    dirty.get(gen.below(dirty.len())).copied()
                };
                if let Some(victim) = victim {
                    if let Err(e) = engine.flush_page(victim) {
                        errors.push(e);
                        break;
                    }
                }
            }
        }

        let mut finished: Vec<BackupRun> = Vec::new();
        let mut worker_errors = 0usize;
        for h in handles {
            let Ok((run, res)) = h.join() else {
                return Err("a sweep worker panicked".into());
            };
            match res {
                Ok(()) => finished.push(run),
                Err(e) => {
                    worker_errors += 1;
                    errors.push(EngineError::from(e));
                    drop(run);
                }
            }
        }
        self.settle(
            engine,
            oracle,
            &base,
            finished,
            ids,
            errors,
            &plan,
            worker_errors,
        )
        .map(|mut case| {
            case.workers = workers;
            case
        })
    }

    /// Classify the session's errors, recover accordingly, and verify
    /// byte-equality with the oracle.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        mut engine: Engine,
        oracle: ShadowOracle,
        base: &BackupImage,
        finished: Vec<BackupRun>,
        ids: Vec<u64>,
        errors: Vec<EngineError>,
        plan: &FaultPlan,
        worker_errors: usize,
    ) -> Result<ParallelCaseResult, String> {
        engine.install_fault_hook(None);
        let result = |path| ParallelCaseResult {
            fired: plan.fired(),
            fired_event: plan.fired_event(),
            witness_events: 0,
            path,
            workers: 0,
            worker_errors,
            events_seen: plan.events_seen(),
        };

        if errors.iter().any(|e| e.is_injected_crash()) {
            // The process model died (in whichever thread reached the armed
            // event first). Volatile state is gone; a torn page may be in `S`.
            drop(finished);
            engine.crash();
            for id in ids {
                engine.release_backup(id);
            }
            let durable = engine.log().durable_lsn();
            let bad = engine.store().verify_pages();
            for p in bad.pages() {
                engine
                    .store()
                    .fail_range(p.partition, p.index, p.index + 1)
                    .map_err(|e| e.to_string())?;
            }
            let any_failed = (0..engine.store().partition_count())
                .any(|p| engine.store().has_failures(PartitionId(p)).unwrap_or(false));
            let path = if any_failed {
                engine
                    .media_recover(base)
                    .map_err(|e| format!("media recovery after crash failed: {e}"))?;
                DrillPath::MediaRecovery
            } else {
                engine
                    .recover()
                    .map_err(|e| format!("crash recovery failed: {e}"))?;
                DrillPath::CrashRecovery
            };
            oracle
                .verify_store(&engine, durable)
                .map_err(|e| format!("post-crash verify diverged: {e}"))?;
            Ok(result(path))
        } else if errors.iter().any(is_media_damage) {
            // Media damage surfaced while the process stayed up: abandon the
            // sweeps, scrub, restore from the base, roll the full history.
            drop(finished);
            self.media_settle(&mut engine, &oracle, base, ids)?;
            Ok(result(DrillPath::MediaRecovery))
        } else if let Some(e) = errors.first() {
            Err(format!("unexpected failure under {:?}: {e}", plan.kind()))
        } else {
            // Every sweep finished. Complete them, then prove the fuzzy
            // parallel images restore the store after total media loss —
            // a sticky silent corruption in `S` is healed by the same
            // restore + roll-forward. An armed media fault can still be
            // latent here (no thread touched the damaged page again before
            // the session ended): completing or flushing may trip it now,
            // in which case the case settles like surfaced damage.
            let mut images = Vec::new();
            let mut latent = None;
            for run in finished {
                match engine.complete_backup(run) {
                    Ok(img) => images.push(img),
                    Err(e) if is_media_damage(&e) => {
                        latent = Some(e);
                        break;
                    }
                    Err(e) => return Err(format!("complete failed: {e}")),
                }
            }
            if latent.is_none() {
                match engine.flush_all() {
                    Ok(()) => {}
                    Err(e) if is_media_damage(&e) => latent = Some(e),
                    Err(e) => return Err(e.to_string()),
                }
            }
            if latent.is_some() {
                self.media_settle(&mut engine, &oracle, base, ids)?;
                return Ok(result(DrillPath::MediaRecovery));
            }
            let combined =
                combine_images(&images).ok_or_else(|| "no images to combine".to_string())?;
            for p in 0..engine.store().partition_count() {
                engine
                    .store()
                    .fail_partition(PartitionId(p))
                    .map_err(|e| e.to_string())?;
            }
            engine
                .media_recover(&combined)
                .map_err(|e| format!("restore from parallel images failed: {e}"))?;
            oracle
                .verify_store(&engine, Lsn::MAX)
                .map_err(|e| format!("restore from parallel images diverged: {e}"))?;
            Ok(result(DrillPath::CleanSweep))
        }
    }

    /// Abandon the sweeps, scrub detectably-damaged pages, restore from
    /// the pre-session base image, and verify the full history.
    fn media_settle(
        &self,
        engine: &mut Engine,
        oracle: &ShadowOracle,
        base: &BackupImage,
        ids: Vec<u64>,
    ) -> Result<(), String> {
        engine.coordinator().reset_volatile();
        for id in ids {
            engine.release_backup(id);
        }
        let bad = engine.store().verify_pages();
        for p in bad.pages() {
            engine
                .store()
                .fail_range(p.partition, p.index, p.index + 1)
                .map_err(|e| e.to_string())?;
        }
        engine
            .media_recover(base)
            .map_err(|e| format!("media recovery failed: {e}"))?;
        oracle
            .verify_store(engine, Lsn::MAX)
            .map_err(|e| format!("post-media verify diverged: {e}"))?;
        Ok(())
    }

    /// The drill: probe a fault-free session for its event count, then arm
    /// crashes, media failures, and silent write corruptions round-robin
    /// across sampled indices. Divergences are collected, not fatal.
    pub fn drill(&self, max_points: usize) -> Result<ParallelDrillReport, String> {
        let probe = self.run_case(FaultKind::CountOnly)?;
        if probe.path != DrillPath::CleanSweep {
            return Err(format!("fault-free probe took {:?}", probe.path));
        }
        let total = probe.events_seen;
        let points = sample_indices(total, max_points);
        let mut report = ParallelDrillReport {
            events_total: total,
            crash_points: points.clone(),
            ..ParallelDrillReport::default()
        };
        for (i, &k) in points.iter().enumerate() {
            let kind = match i % 3 {
                0 => FaultKind::CrashAt(k),
                1 => FaultKind::MediaFailAt(k),
                _ => FaultKind::CorruptWriteAt(k),
            };
            report.cases += 1;
            match self.run_case(kind) {
                Ok(case) => {
                    if case.fired {
                        report.faults_fired += 1;
                    }
                    report.workers += case.workers;
                    match case.path {
                        DrillPath::CleanSweep => report.clean_sweeps += 1,
                        DrillPath::CrashRecovery => report.crash_recoveries += 1,
                        DrillPath::MediaRecovery => report.media_recoveries += 1,
                    }
                }
                Err(d) => report.divergences.push(format!("event {k}: {kind:?}: {d}")),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_probe_is_a_clean_sweep() {
        let runner = ParallelDrillRunner::new(ParallelDrillConfig::small(42));
        let case = runner.run_case(FaultKind::CountOnly).unwrap();
        assert_eq!(case.path, DrillPath::CleanSweep);
        assert!(!case.fired);
        assert_eq!(case.workers, 4);
        assert!(case.events_seen > 100, "got {}", case.events_seen);
    }

    #[test]
    fn crash_case_recovers_and_verifies() {
        let runner = ParallelDrillRunner::new(ParallelDrillConfig::small(7));
        let case = runner.run_case(FaultKind::CrashAt(40)).unwrap();
        assert!(case.fired);
        assert_ne!(case.path, DrillPath::CleanSweep);
    }

    #[test]
    fn media_failure_case_restores_from_base() {
        let runner = ParallelDrillRunner::new(ParallelDrillConfig::small(9));
        let case = runner.run_case(FaultKind::MediaFailAt(30)).unwrap();
        assert!(case.fired);
        // Which thread consumes event 30 is scheduler-dependent: the damage
        // usually surfaces mid-session (media recovery from the base), but a
        // schedule where the damaged page is healed on read — or never
        // touched again until the clean arm's total-loss restore — settles
        // as a clean sweep. Both end byte-verified; only a crash path would
        // mean the wrong fault fired.
        assert_ne!(case.path, DrillPath::CrashRecovery);
    }

    #[test]
    fn small_drill_has_no_divergences() {
        let runner = ParallelDrillRunner::new(ParallelDrillConfig::small(23));
        let report = runner.drill(6).unwrap();
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.cases, 6);
        assert!(report.faults_fired > 0);
        assert!(report.workers > 0);
    }
}
