//! The instant-restore torture drill (DESIGN.md §5.13).
//!
//! Media recovery that *serves traffic while it runs* has a much larger
//! failure surface than an offline restore: foreground reads and writes
//! race the background sweep for segments, an on-demand restore can be
//! interrupted by the very crash it is recovering from, and the
//! commit-point protocol (install into the failed partition, *then* clear
//! the failure flag) must leave every half-restored segment re-derivable
//! after a reboot.
//!
//! One drill case runs the whole life cycle under a [`FaultPlan`]:
//!
//! 1. prefill the database, take a full backup, register it as a repair
//!    generation, and build the generation's page-indexed archive;
//! 2. execute a tail of logged operations past the backup (the log suffix
//!    instant restore must replay), then flush;
//! 3. fail **every** partition — total media loss — and enter an
//!    instant-restore epoch;
//! 4. interleave foreground traffic (verified reads, single-partition and
//!    cross-partition writes) with background sweep steps until the epoch
//!    completes; the armed fault fires somewhere inside;
//! 5. an injected crash kills the process model mid-restore: volatile
//!    state is dropped, the oracle forgets the unforced tail, and
//!    [`lob_core::Engine::recover_instant`] re-enters the epoch from the
//!    surviving media (archive + images + log) — traffic resumes under the
//!    rebooted epoch;
//! 6. after the epoch drains, a burst of post-restore writes proves the
//!    engine left degraded mode intact, and the stable database must
//!    byte-match the shadow oracle at the surviving history.
//!
//! Every case runs with the Eraser-style lock-set witness and the
//! I/O-ordering witness ([`lob_pagestore::witness`]) armed: an instant
//! segment install observed before the segment's archive fetch fails the
//! case even if it byte-verified.

use crate::fault::{sample_indices, FaultKind, FaultPlan};
use crate::shadow::ShadowOracle;
use crate::workload::WorkloadGen;
use lob_core::{
    BackupPolicy, Discipline, Engine, EngineConfig, GraphMode, LogBacking, Lsn, OpBody, PageId,
    PartitionId, PartitionSpec, Tracking,
};
use lob_pagestore::IoEvent;

/// Parameters of one instant-restore drill session.
#[derive(Debug, Clone)]
pub struct InstantDrillConfig {
    /// Workload RNG seed.
    pub seed: u64,
    /// Partitions (= restore segments).
    pub partitions: u32,
    /// Pages per partition.
    pub pages_per_partition: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Logged operations between the backup and the media failure — the
    /// suffix instant restore replays from the archive.
    pub tail_ops: u32,
    /// Foreground operations issued while the restore epoch runs.
    pub foreground_ops: u32,
    /// Writes issued after the epoch completes.
    pub post_ops: u32,
}

impl InstantDrillConfig {
    /// A small, debug-build-friendly configuration.
    pub fn small(seed: u64) -> InstantDrillConfig {
        InstantDrillConfig {
            seed,
            partitions: 4,
            pages_per_partition: 16,
            page_size: 32,
            tail_ops: 32,
            foreground_ops: 24,
            post_ops: 8,
        }
    }
}

/// How one drill case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstantPath {
    /// The epoch drained without a kill.
    Completed,
    /// An injected crash killed the process model at least once; the case
    /// re-entered restore via `recover_instant` (or plain crash recovery
    /// when the kill landed after the epoch) and still verified.
    Killed,
}

/// What one drill case observed.
#[derive(Debug, Clone)]
pub struct InstantCaseResult {
    /// Whether the armed fault fired.
    pub fired: bool,
    /// `(event index, event kind)` the fault fired at.
    pub fired_event: Option<(u64, IoEvent)>,
    /// Total I/O events the session consulted.
    pub events_seen: u64,
    /// Access events the lock-set witness recorded during the case.
    pub witness_events: u64,
    /// How the case ended.
    pub path: InstantPath,
    /// Reboot re-entries (`recover_instant` calls that started an epoch).
    pub reboots: u64,
    /// Segments restored on demand by foreground traffic.
    pub on_demand: u64,
    /// Segments restored by the background sweep.
    pub swept: u64,
    /// Foreground reads served (and byte-verified) during restore epochs.
    pub foreground_reads: u64,
    /// Foreground writes executed during restore epochs.
    pub foreground_writes: u64,
}

/// Aggregated outcome of an instant-restore drill sweep.
#[derive(Debug, Clone, Default)]
pub struct InstantDrillReport {
    /// I/O events in the fault-free probe session.
    pub events_total: u64,
    /// Event indices armed.
    pub crash_points: Vec<u64>,
    /// Cases executed.
    pub cases: usize,
    /// Cases whose armed fault fired.
    pub faults_fired: usize,
    /// Cases that took the kill-and-reboot path.
    pub kills: usize,
    /// Cases whose epoch drained without a kill.
    pub completions: usize,
    /// Oracle divergences and unexpected failures — must stay empty.
    pub divergences: Vec<String>,
}

/// Runs restore-under-load sessions under a [`FaultPlan`] and verifies
/// the served traffic and the final database against the shadow oracle.
pub struct InstantDrillRunner {
    cfg: InstantDrillConfig,
}

impl InstantDrillRunner {
    /// A runner for the given configuration.
    pub fn new(cfg: InstantDrillConfig) -> InstantDrillRunner {
        InstantDrillRunner { cfg }
    }

    /// The configuration under test.
    pub fn config(&self) -> &InstantDrillConfig {
        &self.cfg
    }

    /// Build the prefilled engine the drill loses the media under.
    fn build(&self) -> Result<(Engine, ShadowOracle, WorkloadGen), String> {
        let cfg = &self.cfg;
        let mut engine = Engine::new(EngineConfig {
            page_size: cfg.page_size,
            partitions: (0..cfg.partitions)
                .map(|_| PartitionSpec {
                    pages: cfg.pages_per_partition,
                })
                .collect(),
            discipline: Discipline::General,
            graph_mode: GraphMode::Refined,
            // Sequential tracking admits cross-partition operations — the
            // interesting case for degraded-mode gating, where one write
            // blocks on *several* segments' restores.
            tracking: Tracking::Sequential((0..cfg.partitions).map(PartitionId).collect()),
            cache_capacity: None,
            policy: BackupPolicy::Protocol,
            log: LogBacking::Memory,
            recovery: lob_recovery::RecoveryConfig::sequential(),
            ..EngineConfig::small()
        })
        .map_err(|e| e.to_string())?;
        let mut oracle = ShadowOracle::new(cfg.page_size);
        let mut gen = WorkloadGen::new(cfg.seed, cfg.page_size);
        for p in 0..cfg.partitions {
            for i in 0..cfg.pages_per_partition {
                oracle.execute(&mut engine, gen.physical(PageId::new(p, i)))?;
            }
        }
        engine.flush_all().map_err(|e| e.to_string())?;
        Ok((engine, oracle, gen))
    }

    /// One foreground operation body: a single-partition physiological
    /// write, or a cross-partition read/write mix (which gates the
    /// operation on *several* segments' restores at once).
    fn foreground_body(&self, gen: &mut WorkloadGen) -> OpBody {
        let cfg = &self.cfg;
        let p = gen.below(cfg.partitions as usize) as u32;
        if cfg.partitions >= 2 && gen.chance(0.4) {
            let q = (p + 1 + gen.below(cfg.partitions as usize - 1) as u32) % cfg.partitions;
            // Page 0 plus a random non-zero page per partition: distinct by
            // construction (`mix` rejects duplicate write-set pages).
            let a = 1 + gen.below(cfg.pages_per_partition as usize - 1) as u32;
            let b = 1 + gen.below(cfg.pages_per_partition as usize - 1) as u32;
            let pages = vec![
                PageId::new(p, 0),
                PageId::new(p, a),
                PageId::new(q, 0),
                PageId::new(q, b),
            ];
            gen.mix(&pages, 2, 2)
        } else {
            let i = gen.below(cfg.pages_per_partition as usize) as u32;
            gen.physio(PageId::new(p, i))
        }
    }

    /// Kill the process model and re-enter restore from the surviving
    /// media. The oracle forgets the unforced tail first: those LSNs are
    /// re-issued to post-recovery operations.
    fn kill_and_reboot(engine: &mut Engine, oracle: &mut ShadowOracle) -> Result<(), String> {
        engine.crash();
        oracle.truncate_to(engine.log().durable_lsn());
        engine
            .recover_instant()
            .map_err(|e| format!("recover_instant after kill failed: {e}"))?;
        Ok(())
    }

    /// Run one case with `kind` armed. See the module docs for the phases.
    ///
    /// Both witnesses ([`lob_pagestore::witness`]) are armed for the
    /// duration: an emptied candidate lock-set or a segment install
    /// observed before its archive fetch fails the case outright.
    pub fn run_case(&self, kind: FaultKind) -> Result<InstantCaseResult, String> {
        lob_pagestore::witness::arm();
        let res = self.run_case_inner(kind);
        let events = lob_pagestore::witness::events();
        let violations = lob_pagestore::witness::take_violations();
        let order_violations = lob_pagestore::witness::take_order_violations();
        lob_pagestore::witness::disarm();
        let tail = match &res {
            Err(e) => format!(" (case also failed: {e})"),
            Ok(_) => String::new(),
        };
        if !violations.is_empty() {
            return Err(format!(
                "lock witness flagged {} site(s): {}{tail}",
                violations.len(),
                violations.join("; ")
            ));
        }
        if !order_violations.is_empty() {
            return Err(format!(
                "ordering witness flagged {} event(s): {}{tail}",
                order_violations.len(),
                order_violations.join("; ")
            ));
        }
        res.map(|mut case| {
            case.witness_events = events;
            case
        })
    }

    fn run_case_inner(&self, kind: FaultKind) -> Result<InstantCaseResult, String> {
        let cfg = &self.cfg;
        let (mut engine, mut oracle, mut gen) = self.build()?;

        // Phase 1: the generation instant restore rebuilds from — a full
        // backup registered in the catalog with a page-indexed archive.
        let base = engine.offline_backup().map_err(|e| e.to_string())?;
        let backup_id = base.backup_id;
        engine
            .register_backup_generation(base)
            .map_err(|e| e.to_string())?;
        engine
            .extend_backup_archive(backup_id)
            .map_err(|e| e.to_string())?;

        // Phase 2: the log suffix past the backup.
        for _ in 0..cfg.tail_ops {
            let body = self.foreground_body(&mut gen);
            oracle.execute(&mut engine, body)?;
        }
        engine.flush_all().map_err(|e| e.to_string())?;

        // Phase 3: total media loss under an armed plan, then enter the
        // epoch. `begin_instant_restore` itself touches the archive (the
        // catch-up scan), so the armed event can land inside it.
        let plan = FaultPlan::new(kind);
        engine.install_fault_hook(Some(plan.hook()));
        for p in 0..cfg.partitions {
            engine
                .store()
                .fail_partition(PartitionId(p))
                .map_err(|e| e.to_string())?;
        }
        let mut killed = false;
        if let Err(e) = engine.begin_instant_restore() {
            if e.is_injected_crash() {
                Self::kill_and_reboot(&mut engine, &mut oracle)?;
                killed = true;
            } else {
                return Err(format!("begin_instant_restore failed: {e}"));
            }
        }

        // Phase 4/5: foreground traffic interleaved with sweep steps.
        // An injected crash anywhere in here kills and reboots the epoch.
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut issued = 0u32;
        while engine.instant_restore_active() || issued < cfg.foreground_ops {
            if issued < cfg.foreground_ops {
                issued += 1;
                if gen.chance(0.4) {
                    let id = PageId::new(
                        gen.below(cfg.partitions as usize) as u32,
                        gen.below(cfg.pages_per_partition as usize) as u32,
                    );
                    match engine.read_page(id) {
                        Ok(page) => {
                            let want = oracle.expect_page(id, Lsn::MAX);
                            if *page.data() != want {
                                return Err(format!(
                                    "foreground read of {id} diverged during restore"
                                ));
                            }
                            reads += 1;
                        }
                        Err(e) if e.is_injected_crash() => {
                            Self::kill_and_reboot(&mut engine, &mut oracle)?;
                            killed = true;
                        }
                        Err(e) => return Err(format!("foreground read of {id} failed: {e}")),
                    }
                } else {
                    let body = self.foreground_body(&mut gen);
                    match engine.execute(body.clone()) {
                        Ok(lsn) => {
                            oracle
                                .apply(lsn, &body)
                                .map_err(|e| format!("oracle apply failed: {e}"))?;
                            writes += 1;
                        }
                        Err(e) if e.is_injected_crash() => {
                            Self::kill_and_reboot(&mut engine, &mut oracle)?;
                            killed = true;
                        }
                        Err(e) => return Err(format!("foreground write failed: {e}")),
                    }
                }
            }
            if engine.instant_restore_active() {
                match engine.instant_restore_step() {
                    Ok(_) => {}
                    Err(e) if e.is_injected_crash() => {
                        Self::kill_and_reboot(&mut engine, &mut oracle)?;
                        killed = true;
                    }
                    Err(e) => return Err(format!("sweep step failed: {e}")),
                }
            }
        }

        // Phase 6: the epoch is over — prove normal service resumed. A
        // late-armed crash can still land here; it recovers the ordinary
        // way (no media is failed any more).
        for _ in 0..cfg.post_ops {
            let body = self.foreground_body(&mut gen);
            match engine.execute(body.clone()) {
                Ok(lsn) => oracle
                    .apply(lsn, &body)
                    .map_err(|e| format!("oracle apply failed: {e}"))?,
                Err(e) if e.is_injected_crash() => {
                    engine.crash();
                    oracle.truncate_to(engine.log().durable_lsn());
                    engine
                        .recover()
                        .map_err(|e| format!("crash recovery after epoch failed: {e}"))?;
                    killed = true;
                }
                Err(e) => return Err(format!("post-restore write failed: {e}")),
            }
        }

        engine.install_fault_hook(None);
        engine.flush_all().map_err(|e| e.to_string())?;
        oracle
            .verify_store(&engine, Lsn::MAX)
            .map_err(|e| format!("final verify diverged: {e}"))?;

        let stats = engine.stats();
        Ok(InstantCaseResult {
            fired: plan.fired(),
            fired_event: plan.fired_event(),
            events_seen: plan.events_seen(),
            witness_events: 0,
            path: if killed {
                InstantPath::Killed
            } else {
                InstantPath::Completed
            },
            reboots: stats.instant_reboots,
            on_demand: stats.instant_on_demand,
            swept: stats.instant_swept,
            foreground_reads: reads,
            foreground_writes: writes,
        })
    }

    /// The drill: probe a fault-free session for its event count, then arm
    /// crashes and transient-read storms round-robin across sampled
    /// indices, plus two targeted kills at the commit-point-adjacent
    /// events (a segment install, an archive fetch). Divergences are
    /// collected, not fatal.
    pub fn drill(&self, max_points: usize) -> Result<InstantDrillReport, String> {
        let probe = self.run_case(FaultKind::CountOnly)?;
        if probe.path != InstantPath::Completed || probe.fired {
            return Err("fault-free probe did not complete cleanly".into());
        }
        let total = probe.events_seen;
        let points = sample_indices(total, max_points);
        let mut kinds: Vec<FaultKind> = points
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                if i % 2 == 0 {
                    FaultKind::CrashAt(k)
                } else {
                    FaultKind::TransientReadAt(k)
                }
            })
            .collect();
        kinds.push(FaultKind::CrashAtEvent(IoEvent::SegmentInstall, 1));
        kinds.push(FaultKind::CrashAtEvent(IoEvent::ArchiveRead, 2));
        let mut report = InstantDrillReport {
            events_total: total,
            crash_points: points,
            ..InstantDrillReport::default()
        };
        for kind in kinds {
            report.cases += 1;
            match self.run_case(kind) {
                Ok(case) => {
                    if case.fired {
                        report.faults_fired += 1;
                    }
                    match case.path {
                        InstantPath::Completed => report.completions += 1,
                        InstantPath::Killed => report.kills += 1,
                    }
                }
                Err(d) => report.divergences.push(format!("{kind:?}: {d}")),
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_case_serves_traffic_and_completes() {
        let runner = InstantDrillRunner::new(InstantDrillConfig::small(42));
        let case = runner.run_case(FaultKind::CountOnly).unwrap();
        assert_eq!(case.path, InstantPath::Completed);
        assert!(!case.fired);
        assert_eq!(case.reboots, 0);
        assert!(case.foreground_reads > 0, "no reads served during restore");
        assert!(
            case.foreground_writes > 0,
            "no writes served during restore"
        );
        assert!(
            case.on_demand + case.swept >= runner.config().partitions as u64,
            "restored {} + {} segments of {}",
            case.on_demand,
            case.swept,
            runner.config().partitions
        );
        assert!(case.events_seen > 50, "got {}", case.events_seen);
    }

    #[test]
    fn kill_at_a_segment_install_reboots_and_verifies() {
        let runner = InstantDrillRunner::new(InstantDrillConfig::small(7));
        let case = runner
            .run_case(FaultKind::CrashAtEvent(IoEvent::SegmentInstall, 1))
            .unwrap();
        assert!(case.fired);
        assert_eq!(case.path, InstantPath::Killed);
        assert!(case.reboots > 0, "kill mid-install must re-enter restore");
    }

    #[test]
    fn kill_at_an_archive_fetch_reboots_and_verifies() {
        let runner = InstantDrillRunner::new(InstantDrillConfig::small(11));
        let case = runner
            .run_case(FaultKind::CrashAtEvent(IoEvent::ArchiveRead, 0))
            .unwrap();
        assert!(case.fired);
        assert_eq!(case.path, InstantPath::Killed);
    }

    #[test]
    fn transient_read_storm_is_ridden_out() {
        let runner = InstantDrillRunner::new(InstantDrillConfig::small(13));
        let case = runner.run_case(FaultKind::TransientReadAt(10)).unwrap();
        assert_eq!(case.path, InstantPath::Completed);
    }

    #[test]
    fn small_drill_has_no_divergences() {
        let runner = InstantDrillRunner::new(InstantDrillConfig::small(23));
        let report = runner.drill(4).unwrap();
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.cases, 6);
        assert!(report.faults_fired > 0);
        assert!(report.kills > 0, "no case exercised the reboot path");
    }
}
