//! Multi-session concurrency drills over the [`EngineService`] front-end.
//!
//! Two drivers, one per kind of evidence:
//!
//! * [`VirtualScheduler`] — a **seeded single-threaded interleaver**.
//!   Scripts for `N` virtual sessions are interleaved one step at a time
//!   in a seeded random order, so a surprising interleaving found by the
//!   threaded drill (or dreamed up by a reviewer) can be replayed
//!   *exactly*, forever, from its seed. With the group-commit window
//!   disabled (`group_commit_delay_micros: 0`, `group_commit_count: 1`)
//!   every step is synchronous and the whole run — LSN assignment, flush
//!   decisions, Iw/oF records — is a pure function of the seed.
//! * [`SessionDrillRunner`] — a **threaded race drill**. Real OS threads
//!   drive partition-confined sessions against one shared service while an
//!   optional backup sweep runs rounds of the paper's on-line protocol
//!   over domain 0 and (optionally) a crash is injected *inside the
//!   group-commit force* via the fault hook. Both dynamic witnesses
//!   ([`lob_pagestore::witness`]) are armed for the duration, and the
//!   surviving database is byte-verified against a [`ShadowOracle`] built
//!   from the per-session operation logs merged in LSN order — operations
//!   in different domains touch disjoint pages (the service's confinement
//!   rule), and same-domain operations are LSN-ordered by the domain lock,
//!   so the merged log is a faithful serial history.

use crate::fault::{FaultKind, FaultPlan};
use crate::shadow::ShadowOracle;
use crate::workload::WorkloadGen;
use lob_core::{
    DomainId, EngineConfig, EngineService, FlushPolicy, Lsn, OpBody, PageId, PartitionId, Tracking,
};
use lob_pagestore::{IoEvent, PartitionSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One scripted step of a virtual session.
#[derive(Debug, Clone)]
pub enum SessionStep {
    /// Execute a logged operation.
    Op(OpBody),
    /// Durably force everything logged so far (a group commit).
    Commit,
    /// Flush one page in write-graph order.
    FlushPage(PageId),
}

/// The seeded virtual scheduler: deterministic interleaving of session
/// scripts on one thread.
///
/// ```
/// use lob_harness::sessions::{SessionStep, VirtualScheduler};
/// use lob_core::{EngineConfig, EngineService, OpBody, PageId};
/// use bytes::Bytes;
/// use std::sync::Arc;
///
/// let svc = Arc::new(EngineService::new(EngineConfig::small()).unwrap());
/// let script = |v: u8| vec![
///     SessionStep::Op(OpBody::PhysicalWrite {
///         target: PageId::new(0, v as u32),
///         value: Bytes::from(vec![v; 256]),
///     }),
///     SessionStep::Commit,
/// ];
/// let mut sched = VirtualScheduler::new(42);
/// let log = sched.run(&svc, vec![script(1), script(2)]).unwrap();
/// assert_eq!(log.len(), 2);
/// ```
pub struct VirtualScheduler {
    rng: SmallRng,
}

impl VirtualScheduler {
    /// A scheduler replaying the interleaving determined by `seed`.
    pub fn new(seed: u64) -> VirtualScheduler {
        VirtualScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Interleave `scripts` over sessions of `svc`, one step per tick, the
    /// session picked uniformly among those with steps remaining. Returns
    /// the executed operations as `(lsn, body)` in execution (= LSN)
    /// order — ready to feed a [`ShadowOracle`].
    pub fn run(
        &mut self,
        svc: &Arc<EngineService>,
        scripts: Vec<Vec<SessionStep>>,
    ) -> Result<Vec<(Lsn, OpBody)>, String> {
        let sessions: Vec<_> = scripts.iter().map(|_| svc.session()).collect();
        let mut queues: Vec<VecDeque<SessionStep>> =
            scripts.into_iter().map(VecDeque::from).collect();
        let mut logged: Vec<(Lsn, OpBody)> = Vec::new();
        loop {
            let live = queues.iter().filter(|q| !q.is_empty()).count();
            if live == 0 {
                return Ok(logged);
            }
            // The k-th live queue in session order — same selection (and
            // rng consumption) as indexing a collected live-index list,
            // so existing seeds replay identically.
            let k = self.rng.gen_range(0..live);
            let Some((pick, queue)) = queues
                .iter_mut()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .nth(k)
            else {
                return Ok(logged);
            };
            let Some(step) = queue.pop_front() else {
                continue;
            };
            let Some(session) = sessions.get(pick) else {
                return Err(format!("virtual session {pick} has no handle"));
            };
            match step {
                SessionStep::Op(body) => {
                    let lsn = session
                        .execute(body.clone())
                        .map_err(|e| format!("virtual session {pick} execute: {e}"))?;
                    logged.push((lsn, body));
                }
                SessionStep::Commit => session
                    .commit()
                    .map_err(|e| format!("virtual session {pick} commit: {e}"))?,
                SessionStep::FlushPage(p) => session
                    .flush_page(p)
                    .map_err(|e| format!("virtual session {pick} flush {p}: {e}"))?,
            }
        }
    }
}

/// Configuration of one threaded session drill.
#[derive(Debug, Clone)]
pub struct SessionDrillConfig {
    /// Session threads; session `t` confines itself to partition
    /// `t % partitions` (= its backup domain under per-partition
    /// tracking).
    pub sessions: usize,
    /// Partitions, one backup domain each when `> 1`.
    pub partitions: u32,
    /// Pages per partition.
    pub pages_per_partition: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Operations each session executes.
    pub ops_per_session: usize,
    /// A session commits (group commit) after every this many operations.
    pub commit_every: usize,
    /// A session flushes its last-written page after every this many
    /// operations (0 = never) — the write-graph / Iw/oF path under load.
    pub flush_every: usize,
    /// WAL force policy for the run.
    pub flush_policy: FlushPolicy,
    /// Group-commit gather window (microseconds; 0 disables).
    pub group_commit_delay_micros: u64,
    /// Group-commit target group size (`<= 1` disables).
    pub group_commit_count: u32,
    /// Workload seed.
    pub seed: u64,
    /// On-line backup sweeps of domain 0 run concurrently with the load.
    pub sweep_rounds: u32,
    /// Steps per sweep round.
    pub sweep_steps: u32,
    /// Arm a process crash at the `k`-th log force — i.e. *inside* a group
    /// commit, after the leader gathered a group. The run then stops,
    /// recovers, and verifies at the surviving durable prefix.
    pub crash_at_force: Option<u64>,
}

impl SessionDrillConfig {
    /// A small grid cell: `sessions` threads over `partitions` domains,
    /// group committing with the default window.
    pub fn quick(sessions: usize, partitions: u32, seed: u64) -> SessionDrillConfig {
        SessionDrillConfig {
            sessions,
            partitions,
            pages_per_partition: 16,
            page_size: 128,
            ops_per_session: 64,
            commit_every: 4,
            flush_every: 16,
            flush_policy: FlushPolicy::Exact,
            group_commit_delay_micros: 50,
            group_commit_count: 4,
            seed,
            sweep_rounds: 2,
            sweep_steps: 4,
            crash_at_force: None,
        }
    }
}

/// What one drill run observed.
#[derive(Debug, Clone)]
pub struct SessionDrillReport {
    /// Operations the service executed (excluding Iw/oF identity writes).
    pub ops_executed: u64,
    /// Non-empty log forces the durable store served.
    pub forces: u64,
    /// Frames persisted per force (group-commit batching factor).
    pub batching_factor: f64,
    /// Whether the armed crash fired.
    pub injected_crash: bool,
    /// The log prefix the stable database was byte-verified at
    /// (`Lsn::MAX` for crash-free runs).
    pub verified_prefix: Lsn,
    /// Backup sweeps completed concurrently with the load.
    pub backups_completed: u32,
    /// Pages those sweeps copied.
    pub backup_pages: u64,
    /// Dynamic-witness events observed while armed.
    pub witness_events: u64,
}

/// Runs threaded multi-session races against one [`EngineService`], with
/// both dynamic witnesses armed and every run byte-verified against the
/// shadow oracle. See the module docs.
pub struct SessionDrillRunner {
    cfg: SessionDrillConfig,
}

impl SessionDrillRunner {
    /// A runner for `cfg`.
    pub fn new(cfg: SessionDrillConfig) -> SessionDrillRunner {
        SessionDrillRunner { cfg }
    }

    fn build(&self) -> Result<Arc<EngineService>, String> {
        let cfg = &self.cfg;
        EngineService::new(EngineConfig {
            page_size: cfg.page_size,
            partitions: (0..cfg.partitions)
                .map(|_| PartitionSpec {
                    pages: cfg.pages_per_partition,
                })
                .collect(),
            tracking: if cfg.partitions > 1 {
                Tracking::PerPartition
            } else {
                Tracking::Sequential(vec![PartitionId(0)])
            },
            commit: lob_core::CommitConfig {
                flush_policy: cfg.flush_policy,
                group_commit_delay_micros: cfg.group_commit_delay_micros,
                group_commit_count: cfg.group_commit_count,
                sync_file_log: false,
            },
            ..EngineConfig::small()
        })
        .map(Arc::new)
        .map_err(|e| format!("service config: {e}"))
    }

    /// One session thread's work: partition-confined operations with
    /// periodic group commits and flushes. Returns the `(lsn, body)` log,
    /// cut short (without error) if the injected crash fires.
    fn session_work(
        cfg: &SessionDrillConfig,
        svc: &Arc<EngineService>,
        t: usize,
        stop: &AtomicBool, // lint: atomic(seqcst)
    ) -> Result<Vec<(Lsn, OpBody)>, String> {
        let session = svc.session();
        let mut gen = WorkloadGen::new(
            cfg.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            cfg.page_size,
        );
        let partition = (t as u32) % cfg.partitions;
        let pages: Vec<PageId> = (0..cfg.pages_per_partition)
            .map(|i| PageId::new(partition, i))
            .collect();
        let mut logged: Vec<(Lsn, OpBody)> = Vec::new();
        for i in 0..cfg.ops_per_session {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let body = if pages.len() >= 3 && gen.chance(0.15) {
                gen.mix(&pages, 1, 2)
            } else {
                let target = gen.pick(&pages);
                if gen.chance(0.3) {
                    gen.physical(target)
                } else {
                    gen.physio(target)
                }
            };
            match session.execute(body.clone()) {
                Ok(lsn) => logged.push((lsn, body)),
                Err(e) if e.is_injected_crash() => {
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
                Err(e) => return Err(format!("session {t} execute: {e}")),
            }
            if cfg.commit_every > 0 && (i + 1) % cfg.commit_every == 0 {
                match session.commit() {
                    Ok(()) => {}
                    Err(e) if e.is_injected_crash() => {
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    Err(e) => return Err(format!("session {t} commit: {e}")),
                }
            }
            if cfg.flush_every > 0 && (i + 1) % cfg.flush_every == 0 {
                let last_written = logged
                    .last()
                    .and_then(|(_, b)| b.writeset().first().copied());
                if let Some(p) = last_written {
                    match session.flush_page(p) {
                        Ok(()) => {}
                        Err(e) if e.is_injected_crash() => {
                            stop.store(true, Ordering::SeqCst);
                            break;
                        }
                        Err(e) => return Err(format!("session {t} flush {p}: {e}")),
                    }
                }
            }
        }
        Ok(logged)
    }

    /// The sweep thread's work: rounds of the on-line backup protocol over
    /// domain 0, racing the writers. Returns `(completed, pages_copied)`.
    fn sweep_work(
        cfg: &SessionDrillConfig,
        svc: &Arc<EngineService>,
        stop: &AtomicBool, // lint: atomic(seqcst)
    ) -> Result<(u32, u64), String> {
        let mut completed = 0u32;
        let mut pages = 0u64;
        for _ in 0..cfg.sweep_rounds {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let mut run = match svc.begin_backup_of(DomainId(0), cfg.sweep_steps) {
                Ok(r) => r,
                Err(e) if e.is_injected_crash() => {
                    stop.store(true, Ordering::SeqCst);
                    break;
                }
                Err(e) => return Err(format!("sweep begin: {e}")),
            };
            let image = loop {
                match svc.backup_step_batch(&mut run, 4) {
                    Ok(false) => {}
                    Ok(true) => match svc.complete_backup(run) {
                        Ok(img) => break Some(img),
                        Err(e) if e.is_injected_crash() => {
                            stop.store(true, Ordering::SeqCst);
                            break None;
                        }
                        Err(e) => return Err(format!("sweep complete: {e}")),
                    },
                    Err(e) if e.is_injected_crash() => {
                        stop.store(true, Ordering::SeqCst);
                        svc.abort_backup(run);
                        break None;
                    }
                    Err(e) => return Err(format!("sweep step: {e}")),
                }
            };
            let Some(image) = image else { break };
            completed += 1;
            pages += image.page_count() as u64;
            svc.release_backup(image.backup_id);
        }
        Ok((completed, pages))
    }

    fn run_inner(&self) -> Result<SessionDrillReport, String> {
        let cfg = &self.cfg;
        let svc = self.build()?;
        let plan = cfg
            .crash_at_force
            .map(|k| FaultPlan::new(FaultKind::CrashAtEvent(IoEvent::LogForce, k)));
        if let Some(p) = &plan {
            svc.install_fault_hook(Some(p.hook()));
        }

        let stop = AtomicBool::new(false);
        let mut logs: Vec<Vec<(Lsn, OpBody)>> = Vec::new();
        let mut sweep_outcome: (u32, u64) = (0, 0);
        std::thread::scope(|scope| -> Result<(), String> {
            let mut handles = Vec::new();
            for t in 0..cfg.sessions {
                let svc = &svc;
                let stop = &stop;
                handles.push(scope.spawn(move || Self::session_work(cfg, svc, t, stop)));
            }
            let sweeper = if cfg.sweep_rounds > 0 {
                let svc = &svc;
                let stop = &stop;
                Some(scope.spawn(move || Self::sweep_work(cfg, svc, stop)))
            } else {
                None
            };
            for (t, h) in handles.into_iter().enumerate() {
                let log = h
                    .join()
                    .map_err(|_| format!("session thread {t} panicked"))??;
                logs.push(log);
            }
            if let Some(h) = sweeper {
                sweep_outcome = h
                    .join()
                    .map_err(|_| "sweep thread panicked".to_string())??;
            }
            Ok(())
        })?;

        // Crash/recover if the armed fault fired; otherwise drain.
        let injected = plan.as_ref().is_some_and(|p| p.fired());
        if plan.is_some() {
            svc.install_fault_hook(None);
        }
        let prefix = if injected {
            svc.crash();
            svc.recover().map_err(|e| format!("recover: {e}"))?;
            svc.log().durable_lsn()
        } else {
            svc.flush_all().map_err(|e| format!("flush_all: {e}"))?;
            Lsn::MAX
        };

        // Ground truth: the per-session logs merged in LSN order.
        let mut merged: Vec<(Lsn, OpBody)> = logs.into_iter().flatten().collect();
        merged.sort_by_key(|(l, _)| *l);
        let mut oracle = ShadowOracle::new(cfg.page_size);
        for (lsn, body) in &merged {
            oracle
                .apply(*lsn, body)
                .map_err(|e| format!("oracle apply at {lsn}: {e}"))?;
        }
        for (id, want) in oracle.state_at(prefix) {
            let got = svc
                .store()
                .read_page(id)
                .map_err(|e| format!("verifying {id}: {e}"))?;
            if got.data() != &want {
                let got_head: Vec<u8> = got.data().iter().take(8).copied().collect();
                let want_head: Vec<u8> = want.iter().take(8).copied().collect();
                return Err(format!(
                    "page {id} mismatch at prefix {prefix}: \
                     S has {got_head:02x?}…, oracle expects {want_head:02x?}…"
                ));
            }
        }

        let stats = svc.log_stats();
        Ok(SessionDrillReport {
            ops_executed: svc.stats().ops_executed,
            forces: stats.forces,
            batching_factor: stats.forced_frames as f64 / stats.forces.max(1) as f64,
            injected_crash: injected,
            verified_prefix: prefix,
            backups_completed: sweep_outcome.0,
            backup_pages: sweep_outcome.1,
            witness_events: 0,
        })
    }

    /// Run the drill with both dynamic witnesses armed: an emptied
    /// candidate lock-set or a misordered durability event fails the run
    /// outright, even if the data verification would have passed.
    pub fn run(&self) -> Result<SessionDrillReport, String> {
        lob_pagestore::witness::arm();
        let res = self.run_inner();
        let events = lob_pagestore::witness::events();
        let violations = lob_pagestore::witness::take_violations();
        let order_violations = lob_pagestore::witness::take_order_violations();
        lob_pagestore::witness::disarm();
        let tail = match &res {
            Err(e) => format!(" (drill also failed: {e})"),
            Ok(_) => String::new(),
        };
        if !violations.is_empty() {
            return Err(format!(
                "lock witness flagged {} site(s): {}{tail}",
                violations.len(),
                violations.join("; ")
            ));
        }
        if !order_violations.is_empty() {
            return Err(format!(
                "ordering witness flagged {} event(s): {}{tail}",
                order_violations.len(),
                order_violations.join("; ")
            ));
        }
        res.map(|mut report| {
            report.witness_events = events;
            report
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn virtual_scheduler_is_deterministic() {
        // LSNs are dense regardless of interleaving; the per-step payload
        // byte (unique per script step) records *which* session ran at
        // each LSN.
        let run = |seed: u64| -> Vec<u8> {
            let svc = Arc::new(EngineService::new(EngineConfig::small()).unwrap());
            let scripts: Vec<Vec<SessionStep>> = (0..3u8)
                .map(|s| {
                    (0..8u8)
                        .flat_map(|i| {
                            vec![
                                SessionStep::Op(OpBody::PhysicalWrite {
                                    target: PageId::new(0, (s * 8 + i) as u32 % 16),
                                    value: Bytes::from(vec![s * 16 + i; 256]),
                                }),
                                SessionStep::Commit,
                            ]
                        })
                        .collect()
                })
                .collect();
            let mut sched = VirtualScheduler::new(seed);
            sched
                .run(&svc, scripts)
                .unwrap()
                .into_iter()
                .map(|(_, b)| match b {
                    OpBody::PhysicalWrite { value, .. } => value[0],
                    _ => unreachable!("scripts only write physically"),
                })
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7),
            run(8),
            "different seeds should interleave differently"
        );
    }

    #[test]
    fn threaded_drill_verifies_against_oracle() {
        let report = SessionDrillRunner::new(SessionDrillConfig::quick(3, 3, 0xD1))
            .run()
            .unwrap();
        assert_eq!(report.ops_executed, 3 * 64);
        assert!(!report.injected_crash);
        assert!(report.witness_events > 0, "witness should observe events");
    }

    #[test]
    fn crash_during_group_commit_recovers_to_durable_prefix() {
        let mut cfg = SessionDrillConfig::quick(2, 2, 0xC4);
        cfg.crash_at_force = Some(3);
        let report = SessionDrillRunner::new(cfg).run().unwrap();
        assert!(report.injected_crash);
        assert!(report.verified_prefix < Lsn::MAX);
    }
}
