//! Seeded random workload generation.

use bytes::Bytes;
use lob_core::{OpBody, PageId};
use lob_ops::{LogicalOp, PhysioOp};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A deterministic (seeded) generator of workload operations.
///
/// Everything an experiment does is reproducible from its seed; the
/// generators never consult global randomness.
pub struct WorkloadGen {
    rng: SmallRng,
    page_size: usize,
    salt: u64,
}

impl WorkloadGen {
    /// A generator for `page_size`-byte pages.
    pub fn new(seed: u64, page_size: usize) -> WorkloadGen {
        WorkloadGen {
            rng: SmallRng::seed_from_u64(seed),
            page_size,
            salt: seed.wrapping_mul(0x9e37_79b9),
        }
    }

    /// Access the underlying RNG (for workload-specific choices).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    fn next_salt(&mut self) -> u64 {
        self.salt = self.salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.salt
    }

    /// Pick a random element.
    pub fn pick(&mut self, pages: &[PageId]) -> PageId {
        // lint:allow(panic) caller contract: workloads draw from non-empty page sets
        *pages.choose(&mut self.rng).expect("non-empty page set")
    }

    /// A random full-page physical write of `target`.
    pub fn physical(&mut self, target: PageId) -> OpBody {
        let salt = self.next_salt();
        let bytes: Vec<u8> = (0..self.page_size)
            .map(|i| (salt as usize ^ i.wrapping_mul(131)) as u8)
            .collect();
        OpBody::PhysicalWrite {
            target,
            value: Bytes::from(bytes),
        }
    }

    /// A random physiological overlay on `target`.
    pub fn physio(&mut self, target: PageId) -> OpBody {
        let len = self.rng.gen_range(1..=8.min(self.page_size));
        let offset = self.rng.gen_range(0..=(self.page_size - len)) as u32;
        let bytes: Vec<u8> = (0..len).map(|_| self.rng.gen()).collect();
        OpBody::Physio(PhysioOp::SetBytes {
            target,
            offset,
            bytes: Bytes::from(bytes),
        })
    }

    /// A general logical operation reading `reads` random pages and writing
    /// `writes` random pages (all distinct).
    pub fn mix(&mut self, pages: &[PageId], reads: usize, writes: usize) -> OpBody {
        assert!(reads + writes <= pages.len(), "not enough distinct pages");
        let mut chosen: Vec<PageId> = pages
            .choose_multiple(&mut self.rng, reads + writes)
            .copied()
            .collect();
        let write_set = chosen.split_off(reads);
        OpBody::Logical(LogicalOp::Mix {
            reads: chosen,
            writes: write_set,
            salt: self.next_salt(),
        })
    }

    /// A logical copy of a random `used` page into a specific fresh page.
    pub fn copy_to_fresh(&mut self, used: &[PageId], fresh: PageId) -> OpBody {
        OpBody::Logical(LogicalOp::Copy {
            src: self.pick(used),
            dst: fresh,
        })
    }

    /// A uniformly shuffled copy of `items`.
    pub fn shuffled<T: Copy>(&mut self, items: &[T]) -> Vec<T> {
        let mut v = items.to_vec();
        v.shuffle(&mut self.rng);
        v
    }

    /// A random probability draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// A random value in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pages(n: u32) -> Vec<PageId> {
        (0..n).map(|i| PageId::new(0, i)).collect()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let ps = pages(16);
        let mut a = WorkloadGen::new(7, 64);
        let mut b = WorkloadGen::new(7, 64);
        for _ in 0..10 {
            assert_eq!(a.mix(&ps, 2, 2), b.mix(&ps, 2, 2));
            assert_eq!(a.physio(ps[0]), b.physio(ps[0]));
        }
        let mut c = WorkloadGen::new(8, 64);
        assert_ne!(a.physical(ps[0]), c.physical(ps[0]));
    }

    #[test]
    fn mix_sets_are_disjoint_and_sized() {
        let ps = pages(32);
        let mut g = WorkloadGen::new(1, 64);
        for _ in 0..50 {
            let op = g.mix(&ps, 3, 2);
            let (r, w) = (op.readset(), op.writeset());
            assert_eq!(r.len(), 3);
            assert_eq!(w.len(), 2);
            assert!(r.iter().all(|x| !w.contains(x)));
        }
    }

    #[test]
    fn physical_is_page_sized() {
        let mut g = WorkloadGen::new(1, 128);
        if let OpBody::PhysicalWrite { value, .. } = g.physical(PageId::new(0, 0)) {
            assert_eq!(value.len(), 128);
        } else {
            panic!("wrong op kind");
        }
    }

    #[test]
    fn physio_stays_in_bounds() {
        let mut g = WorkloadGen::new(3, 16);
        for _ in 0..100 {
            if let OpBody::Physio(PhysioOp::SetBytes { offset, bytes, .. }) =
                g.physio(PageId::new(0, 0))
            {
                assert!(offset as usize + bytes.len() <= 16);
            } else {
                panic!("wrong op kind");
            }
        }
    }
}
