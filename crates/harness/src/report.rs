//! Plain-text table formatting for experiment binaries.

use std::fmt;

/// A simple aligned-column table.
///
/// The experiment binaries print their results as tables whose rows mirror
/// the series of the paper's figures, so EXPERIMENTS.md can quote them
/// directly.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 4 decimal places (the precision the figures use).
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a byte count with a thousands separator.
pub fn bytes(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["N", "general", "tree"]);
        t.row(vec!["1", "1.0000", "0.5000"]);
        t.row(vec!["64", "0.5078", "0.1745"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("general"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].trim_start().starts_with('1'));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only"]);
        assert!(t.to_string().contains("only"));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f4(0.5), "0.5000");
        assert_eq!(bytes(1234567), "1,234,567");
        assert_eq!(bytes(17), "17");
        assert_eq!(bytes(1000), "1,000");
    }
}
