//! The crash-point torture harness.
//!
//! SQLite-style crash testing for the engine: run a seeded workload once
//! with a counting [`FaultPlan`] to number every I/O event, then re-run the
//! *identical* workload once per chosen event index with a fault armed —
//! a process crash, a torn page write, a silent corruption, or a media
//! failure — recover, and require byte-equality with the shadow oracle.
//!
//! The event stream is a pure function of the workload seed (nothing in the
//! engine consults wall clocks or global randomness), so "crash at the k-th
//! I/O" is a perfectly reproducible scenario: any divergence found by a
//! sweep is pinned by `(seed, workload, fault kind, k)` alone.

use crate::fault::{sample_indices, FaultKind, FaultPlan};
use crate::shadow::ShadowOracle;
use crate::workload::WorkloadGen;
use lob_core::{
    BackupImage, BackupPolicy, Discipline, Engine, EngineConfig, EngineError, Lsn, PageId,
    PartitionId,
};
use lob_pagestore::{IoEvent, StableStore, StoreConfig};
use lob_recovery::{redo_scan, RecoveryConfig, StoreRedoTarget};

/// Which workload shape a torture run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TortureWorkload {
    /// General logical operations (multi-page read/write mixes) with
    /// physiological and physical writes; no concurrent backup.
    General,
    /// Tree-style operations: fresh-page copies (node splits) plus
    /// physiological / physical updates; no concurrent backup.
    Tree,
    /// General operations with an on-line backup sweeping concurrently —
    /// crash points land inside begin/step/complete and the sweep's own
    /// page copies.
    BackupConcurrent,
}

/// Parameters of a torture run. Everything is a pure function of `seed`.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Workload RNG seed.
    pub seed: u64,
    /// Workload shape.
    pub workload: TortureWorkload,
    /// Database pages (one partition).
    pub pages: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Operations per session.
    pub ops: u32,
    /// Probability of flushing a random dirty page after each operation.
    pub flush_prob: f64,
    /// Probability of forcing the log after each operation (creates force /
    /// append events independent of flushes, so lost-tail crash points are
    /// well represented).
    pub force_prob: f64,
    /// Steps for the concurrent backup ([`TortureWorkload::BackupConcurrent`]).
    pub backup_steps: u32,
    /// Operations before the backup begins.
    pub backup_start_after: u32,
    /// Operations between backup steps.
    pub ops_per_backup_step: u32,
    /// Cache capacity (clean pages evict LRU past this). `None` = unbounded.
    /// Read drills bound the cache so sessions actually re-read from `S` —
    /// an unbounded cache never misses and read faults would never draw.
    pub cache_capacity: Option<usize>,
    /// Register the pre-session off-line backup as a repair generation, so
    /// the engine heals detected bad reads online instead of surfacing them.
    pub self_heal: bool,
    /// Route every recovery through the parallel scheduler with these
    /// workers/batch knobs, and settle each one against the differential
    /// replay oracle: the same log (and image, for restores) replayed
    /// sequentially on a scratch store must land byte-identically.
    /// `None` = the legacy sequential recovery paths.
    pub parallel_recovery: Option<RecoveryConfig>,
}

impl TortureConfig {
    /// A small, debug-build-friendly configuration: sessions finish in
    /// milliseconds so a sweep can afford hundreds of re-runs.
    pub fn small(seed: u64, workload: TortureWorkload) -> TortureConfig {
        TortureConfig {
            seed,
            workload,
            pages: 64,
            page_size: 32,
            ops: 60,
            flush_prob: 0.45,
            force_prob: 0.2,
            backup_steps: 4,
            backup_start_after: 8,
            ops_per_backup_step: 7,
            cache_capacity: None,
            self_heal: false,
            parallel_recovery: None,
        }
    }

    /// [`TortureConfig::small`] with every recovery fanned through the
    /// parallel scheduler (`recovery` workers / group-install batch), each
    /// case byte-checked against the sequential differential oracle.
    pub fn parallel(
        seed: u64,
        workload: TortureWorkload,
        recovery: RecoveryConfig,
    ) -> TortureConfig {
        TortureConfig {
            parallel_recovery: Some(recovery),
            ..TortureConfig::small(seed, workload)
        }
    }

    /// [`TortureConfig::small`] configured for the self-healing read-fault
    /// drill: a bounded cache (so reads miss to `S`) and online repair
    /// engaged from the pre-session off-line backup.
    pub fn self_healing(seed: u64, workload: TortureWorkload) -> TortureConfig {
        TortureConfig {
            cache_capacity: Some(8),
            self_heal: true,
            ..TortureConfig::small(seed, workload)
        }
    }
}

/// How a torture case got the store back to a verified state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPath {
    /// The session completed and the store verified without repair.
    Clean,
    /// Crash recovery (redo from the last checkpointable prefix).
    CrashRecovery,
    /// Media recovery (restore from a backup image + roll-forward).
    MediaRecovery,
}

/// What one torture case observed.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Whether the armed fault fired.
    pub fired: bool,
    /// `(event index, event kind)` the fault fired at.
    pub fired_event: Option<(u64, IoEvent)>,
    /// How the case recovered.
    pub path: RecoveryPath,
    /// Whether the post-fault scrub flagged at least one corrupt page.
    pub corruption_detected: bool,
    /// Pages repaired online during the session.
    pub repairs: u64,
    /// Transient read attempts retried under the deterministic backoff.
    pub transient_retries: u64,
    /// Pages still quarantined when the case ended — zero unless a page was
    /// genuinely unrepairable.
    pub quarantined_after: usize,
}

/// Aggregated outcome of a sweep.
#[derive(Debug, Clone, Default)]
pub struct TortureReport {
    /// Total I/O events in the fault-free run.
    pub events_total: u64,
    /// The distinct event indices the sweep armed.
    pub crash_points: Vec<u64>,
    /// Cases executed.
    pub cases: usize,
    /// Cases whose armed fault actually fired.
    pub faults_fired: usize,
    /// The `(index, kind)` pairs that fired (for coverage assertions).
    pub fired_events: Vec<(u64, IoEvent)>,
    /// Cases recovered by crash recovery.
    pub crash_recoveries: usize,
    /// Cases recovered by media recovery.
    pub media_recoveries: usize,
    /// Cases that completed and verified without repair.
    pub clean_completions: usize,
    /// Cases where the scrub detected injected corruption.
    pub corruption_detections: usize,
    /// Pages repaired online across all cases (repair telemetry).
    pub repairs: u64,
    /// Transient read retries across all cases (repair telemetry).
    pub transient_retries: u64,
    /// Oracle divergences and unexpected failures — must stay empty.
    pub divergences: Vec<String>,
}

impl TortureReport {
    /// The distinct event kinds that faults fired at.
    pub fn fired_kinds(&self) -> Vec<IoEvent> {
        let mut kinds: Vec<IoEvent> = self.fired_events.iter().map(|&(_, k)| k).collect();
        kinds.sort_by_key(|k| format!("{k}"));
        kinds.dedup();
        kinds
    }
}

/// Everything a driven session leaves behind.
struct DriveOutcome {
    engine: Engine,
    oracle: ShadowOracle,
    base: BackupImage,
    completed: Option<BackupImage>,
    inflight: Option<u64>,
    error: Option<EngineError>,
}

fn is_media_failure(e: &EngineError) -> bool {
    // `StoreError::MediaFailure` stringifies to "media failure reading …"
    // through every wrapping layer (cache, backup, op evaluation, redo).
    e.to_string().contains("media failure")
}

/// Runs seeded workloads under a [`FaultPlan`] and verifies recovery
/// against the shadow oracle.
pub struct TortureRunner {
    cfg: TortureConfig,
}

impl TortureRunner {
    /// A runner for the given configuration.
    pub fn new(cfg: TortureConfig) -> TortureRunner {
        TortureRunner { cfg }
    }

    /// The configuration under test.
    pub fn config(&self) -> &TortureConfig {
        &self.cfg
    }

    /// A fresh store with the engine's geometry — the differential replay
    /// oracle's sequential shadow target.
    fn scratch_store(engine: &Engine) -> StableStore {
        StableStore::new(
            StoreConfig {
                page_size: engine.config().page_size,
            },
            &engine.config().partitions,
        )
    }

    /// Byte-compare every page (payload and page LSN) of the engine's
    /// store against the sequential shadow store.
    fn diff_stores(engine: &Engine, scratch: &StableStore, when: &str) -> Result<(), String> {
        let live = engine
            .store()
            .snapshot()
            .map_err(|e| format!("{when}: live snapshot failed: {e}"))?;
        let shadow = scratch
            .snapshot()
            .map_err(|e| format!("{when}: shadow snapshot failed: {e}"))?;
        if live.len() != shadow.len() {
            return Err(format!(
                "{when}: page counts diverge (parallel {}, sequential {})",
                live.len(),
                shadow.len()
            ));
        }
        for ((id, page), (sid, spage)) in live.iter().zip(shadow.iter()) {
            if id != sid {
                return Err(format!("{when}: page id order diverges ({id} vs {sid})"));
            }
            if page.lsn() != spage.lsn() || page.data() != spage.data() {
                return Err(format!(
                    "{when}: parallel and sequential replay diverge at {id} \
                     (lsn {} vs {})",
                    page.lsn(),
                    spage.lsn()
                ));
            }
        }
        Ok(())
    }

    /// Crash recovery through the configured path. With a parallel arm,
    /// the surviving log suffix is first replayed *sequentially* on a
    /// scratch copy of `S`; the parallel scheduler must then land on the
    /// same bytes and the same [`lob_recovery::RedoOutcome`].
    fn crash_recover_checked(&self, engine: &mut Engine) -> Result<(), String> {
        let Some(rc) = self.cfg.parallel_recovery else {
            engine
                .recover()
                .map_err(|e| format!("crash recovery failed: {e}"))?;
            return Ok(());
        };
        let records = engine
            .log()
            .scan_from(engine.log().truncation())
            .map_err(|e| format!("oracle log scan failed: {e}"))?;
        let scratch = Self::scratch_store(engine);
        let before = engine
            .store()
            .snapshot()
            .map_err(|e| format!("pre-recovery snapshot failed: {e}"))?;
        scratch
            .apply_image(&before)
            .map_err(|e| format!("oracle seed failed: {e}"))?;
        let mut target = StoreRedoTarget::new(&scratch);
        let expected = redo_scan(&records, &mut target)
            .map_err(|e| format!("sequential shadow replay failed: {e}"))?;
        let got = engine
            .parallel_recover_with(rc)
            .map_err(|e| format!("parallel crash recovery failed: {e}"))?;
        if got != expected {
            return Err(format!(
                "parallel redo outcome {got:?} != sequential {expected:?}"
            ));
        }
        Self::diff_stores(engine, &scratch, "post-crash differential")
    }

    /// Media recovery through the configured path (sequential
    /// [`Engine::media_recover`] or the parallel restore), surfacing the
    /// raw engine error so callers can classify injected crashes.
    fn media_recover_raw(
        &self,
        engine: &mut Engine,
        image: &BackupImage,
    ) -> Result<(), EngineError> {
        match self.cfg.parallel_recovery {
            Some(rc) => engine.parallel_restore_with(image, rc).map(|_| ()),
            None => engine.media_recover(image).map(|_| ()),
        }
    }

    /// [`TortureRunner::media_recover_raw`] plus, under a parallel arm,
    /// the differential check: restoring the same image and sequentially
    /// replaying the same log suffix on a scratch store must produce the
    /// same bytes. (Media recovery forces but never truncates the log, so
    /// scanning after the fact sees exactly what the parallel path saw.)
    fn media_recover_checked(
        &self,
        engine: &mut Engine,
        image: &BackupImage,
    ) -> Result<(), String> {
        self.media_recover_raw(engine, image)
            .map_err(|e| e.to_string())?;
        if self.cfg.parallel_recovery.is_none() {
            return Ok(());
        }
        let scratch = Self::scratch_store(engine);
        image
            .restore_to(&scratch)
            .map_err(|e| format!("shadow restore failed: {e}"))?;
        let records = engine
            .log()
            .scan_from(image.start_lsn)
            .map_err(|e| format!("shadow log scan failed: {e}"))?;
        let mut target = StoreRedoTarget::new(&scratch);
        redo_scan(&records, &mut target)
            .map_err(|e| format!("sequential shadow replay failed: {e}"))?;
        Self::diff_stores(engine, &scratch, "post-restore differential")
    }

    /// Drive one session. The op sequence, flush choices, and backup
    /// schedule are identical for every call with the same config; only the
    /// armed fault differs. Stops at the first engine error (the injected
    /// fault surfacing) and hands everything to the caller for recovery.
    fn drive(&self, plan: Option<&FaultPlan>) -> Result<DriveOutcome, String> {
        let cfg = &self.cfg;
        let discipline = match cfg.workload {
            TortureWorkload::Tree => Discipline::Tree,
            _ => Discipline::General,
        };
        let mut engine = Engine::new(EngineConfig {
            discipline,
            policy: BackupPolicy::Protocol,
            cache_capacity: cfg.cache_capacity,
            ..EngineConfig::single(cfg.pages, cfg.page_size)
        })
        .map_err(|e| e.to_string())?;
        let mut oracle = ShadowOracle::new(cfg.page_size);
        let mut gen = WorkloadGen::new(cfg.seed, cfg.page_size);

        let all: Vec<PageId> = (0..cfg.pages).map(|i| PageId::new(0, i)).collect();
        let shuffled = gen.shuffled(&all);
        let prefill = (cfg.pages as usize / 4).max(8).min(shuffled.len() / 2);
        let mut used: Vec<PageId> = shuffled[..prefill].to_vec();
        let mut fresh: Vec<PageId> = shuffled[prefill..].to_vec();
        for &p in &used.clone() {
            oracle.execute(&mut engine, gen.physical(p))?;
        }
        // The pre-session off-line backup pins the media barrier (the whole
        // session's log suffix stays restorable) and is the image media
        // recovery falls back to when no on-line backup completed.
        let base = engine.offline_backup().map_err(|e| e.to_string())?;
        if cfg.self_heal {
            engine
                .register_backup_generation(base.clone())
                .map_err(|e| e.to_string())?;
        }

        // Faults arm only now: prefill and base image are part of the fixed
        // initial condition, not the torture window.
        if let Some(plan) = plan {
            engine.install_fault_hook(Some(plan.hook()));
        }

        let mut run: Option<(lob_core::BackupRun, u32)> = None;
        let mut inflight = None;
        let mut completed = None;
        let mut error = None;

        'session: for opno in 0..cfg.ops {
            let body = match cfg.workload {
                TortureWorkload::Tree => {
                    if gen.chance(0.4) && !fresh.is_empty() {
                        let x = fresh.swap_remove(gen.below(fresh.len()));
                        let op = gen.copy_to_fresh(&used, x);
                        used.push(x);
                        op
                    } else {
                        let p = used[gen.below(used.len())];
                        if gen.chance(0.5) {
                            gen.physio(p)
                        } else {
                            gen.physical(p)
                        }
                    }
                }
                TortureWorkload::General | TortureWorkload::BackupConcurrent => {
                    if gen.chance(0.5) && used.len() >= 4 {
                        gen.mix(&used, 2, 2)
                    } else {
                        let p = used[gen.below(used.len())];
                        if gen.chance(0.5) {
                            gen.physio(p)
                        } else {
                            gen.physical(p)
                        }
                    }
                }
            };
            match engine.execute(body.clone()) {
                Ok(lsn) => oracle
                    .apply(lsn, &body)
                    .map_err(|e| format!("oracle apply failed: {e}"))?,
                Err(e) => {
                    error = Some(e);
                    break 'session;
                }
            }

            if gen.chance(cfg.flush_prob) {
                let dirty = engine.cache().dirty_pages();
                if !dirty.is_empty() {
                    let victim = dirty[gen.below(dirty.len())];
                    if let Err(e) = engine.flush_page(victim) {
                        error = Some(e);
                        break 'session;
                    }
                }
            }
            if gen.chance(cfg.force_prob) {
                if let Err(e) = engine.force_log() {
                    error = Some(e);
                    break 'session;
                }
            }

            if cfg.workload == TortureWorkload::BackupConcurrent {
                if opno == cfg.backup_start_after {
                    match engine.begin_backup(cfg.backup_steps) {
                        Ok(r) => {
                            inflight = Some(r.backup_id());
                            run = Some((r, 0));
                        }
                        Err(e) => {
                            error = Some(e);
                            break 'session;
                        }
                    }
                }
                if let Some((r, since)) = run.as_mut() {
                    *since += 1;
                    if *since >= cfg.ops_per_backup_step {
                        *since = 0;
                        match engine.backup_step(r) {
                            Ok(true) => {
                                // lint:allow(panic) `run` is Some: we are inside its `as_mut` arm
                                let (r, _) = run.take().unwrap();
                                match engine.complete_backup(r) {
                                    Ok(img) => {
                                        completed = Some(img);
                                        inflight = None;
                                    }
                                    Err(e) => {
                                        error = Some(e);
                                        break 'session;
                                    }
                                }
                            }
                            Ok(false) => {}
                            Err(e) => {
                                error = Some(e);
                                break 'session;
                            }
                        }
                    }
                }
            }
        }

        // Finish an unfinished backup (only when the session survived).
        if error.is_none() {
            if let Some((mut r, _)) = run.take() {
                let step_err = loop {
                    match engine.backup_step(&mut r) {
                        Ok(true) => break None,
                        Ok(false) => {}
                        Err(e) => break Some(e),
                    }
                };
                match step_err {
                    None => match engine.complete_backup(r) {
                        Ok(img) => {
                            completed = Some(img);
                            inflight = None;
                        }
                        Err(e) => error = Some(e),
                    },
                    Some(e) => error = Some(e),
                }
            }
        }

        Ok(DriveOutcome {
            engine,
            oracle,
            base,
            completed,
            inflight,
            error,
        })
    }

    /// Pass 1 of a sweep: run fault-free, count the I/O events, and sanity-
    /// check the session itself against the oracle.
    pub fn count_events(&self) -> Result<u64, String> {
        let plan = FaultPlan::new(FaultKind::CountOnly);
        let mut out = self.drive(Some(&plan))?;
        if let Some(e) = out.error {
            return Err(format!("fault-free run failed: {e}"));
        }
        out.engine.install_fault_hook(None);
        let total = plan.events_seen();
        out.engine.flush_all().map_err(|e| e.to_string())?;
        out.oracle
            .verify_store(&out.engine, Lsn::MAX)
            .map_err(|e| format!("fault-free run diverged: {e}"))?;
        Ok(total)
    }

    /// Run one case with `kind` armed: drive, classify the outcome, scrub,
    /// recover, and verify byte-equality with the oracle at the surviving
    /// log prefix.
    ///
    /// The ordering witness ([`lob_pagestore::witness::ORDER_CONTRACTS`])
    /// is armed for the duration of the case: any instrumented install,
    /// flush, backup copy, or cursor advance observed before its required
    /// generator event fails the case even if it byte-verified. The
    /// single-threaded torture runner does not assert on the lock-set
    /// half — that is the parallel drill's job — so lock-set violations
    /// are left in the registry, not drained here.
    pub fn run_case(&self, kind: FaultKind) -> Result<CaseResult, String> {
        lob_pagestore::witness::arm();
        let res = self.run_case_inner(kind);
        let order_violations = lob_pagestore::witness::take_order_violations();
        lob_pagestore::witness::disarm();
        if !order_violations.is_empty() {
            let tail = match &res {
                Err(e) => format!(" (case also failed: {e})"),
                Ok(_) => String::new(),
            };
            return Err(format!(
                "ordering witness flagged {} event(s): {}{tail}",
                order_violations.len(),
                order_violations.join("; ")
            ));
        }
        res
    }

    fn run_case_inner(&self, kind: FaultKind) -> Result<CaseResult, String> {
        let plan = FaultPlan::new(kind);
        let DriveOutcome {
            mut engine,
            oracle,
            base,
            completed,
            inflight,
            error,
        } = self.drive(Some(&plan))?;
        engine.install_fault_hook(None);
        // Prefer the on-line (fuzzy) image when one completed — restoring
        // from it exercises the paper's protocol; otherwise the off-line
        // base image restores the whole session.
        let image = completed.unwrap_or(base);

        match error {
            None => {
                // The session completed, but a sticky fault may have left a
                // latent wound: a silently corrupted page or a failed range
                // nothing happened to read. Scrub, repair, verify.
                let bad = engine.store().verify_pages();
                let corruption_detected = !bad.is_empty();
                for p in bad.pages() {
                    engine
                        .store()
                        .fail_range(p.partition, p.index, p.index + 1)
                        .map_err(|e| e.to_string())?;
                }
                let any_failed = (0..engine.store().partition_count())
                    .any(|p| engine.store().has_failures(PartitionId(p)).unwrap_or(false));
                let path = if any_failed {
                    self.media_recover_checked(&mut engine, &image)
                        .map_err(|e| format!("media recovery failed: {e}"))?;
                    RecoveryPath::MediaRecovery
                } else {
                    engine.flush_all().map_err(|e| e.to_string())?;
                    RecoveryPath::Clean
                };
                oracle
                    .verify_store(&engine, Lsn::MAX)
                    .map_err(|e| format!("post-session verify diverged: {e}"))?;
                Ok(CaseResult {
                    fired: plan.fired(),
                    fired_event: plan.fired_event(),
                    path,
                    corruption_detected,
                    repairs: engine.stats().repairs,
                    transient_retries: engine.stats().transient_retries,
                    quarantined_after: engine.quarantined_pages().len(),
                })
            }
            Some(e) if e.is_injected_crash() => {
                // The process model died at the armed event. Volatile state
                // is gone; the unforced log tail is gone; a torn page may be
                // sitting in `S`.
                engine.crash();
                if let Some(id) = inflight {
                    engine.release_backup(id);
                }
                let durable = engine.log().durable_lsn();
                let bad = engine.store().verify_pages();
                let corruption_detected = !bad.is_empty();
                for p in bad.pages() {
                    engine
                        .store()
                        .fail_range(p.partition, p.index, p.index + 1)
                        .map_err(|e| e.to_string())?;
                }
                let any_failed = (0..engine.store().partition_count())
                    .any(|p| engine.store().has_failures(PartitionId(p)).unwrap_or(false));
                let path = if any_failed {
                    // Torn / corrupt pages masquerade as tiny media
                    // failures: restore from the backup and roll forward.
                    self.media_recover_checked(&mut engine, &image)
                        .map_err(|e| format!("media recovery after crash failed: {e}"))?;
                    RecoveryPath::MediaRecovery
                } else {
                    self.crash_recover_checked(&mut engine)?;
                    RecoveryPath::CrashRecovery
                };
                oracle
                    .verify_store(&engine, durable)
                    .map_err(|e| format!("post-crash verify diverged: {e}"))?;
                Ok(CaseResult {
                    fired: true,
                    fired_event: plan.fired_event(),
                    path,
                    corruption_detected,
                    repairs: engine.stats().repairs,
                    transient_retries: engine.stats().transient_retries,
                    quarantined_after: engine.quarantined_pages().len(),
                })
            }
            Some(e) if is_media_failure(&e) => {
                // A read hit the failed medium while the process stayed up:
                // abandon any in-flight sweep, install the replacement
                // medium, restore, roll forward to the *full* history (the
                // log never lost anything — media recovery forces the tail).
                engine.coordinator().reset_volatile();
                if let Some(id) = inflight {
                    engine.release_backup(id);
                }
                self.media_recover_checked(&mut engine, &image)
                    .map_err(|e| format!("media recovery failed: {e}"))?;
                oracle
                    .verify_store(&engine, Lsn::MAX)
                    .map_err(|e| format!("post-media-failure verify diverged: {e}"))?;
                Ok(CaseResult {
                    fired: true,
                    fired_event: plan.fired_event(),
                    path: RecoveryPath::MediaRecovery,
                    corruption_detected: false,
                    repairs: engine.stats().repairs,
                    transient_retries: engine.stats().transient_retries,
                    quarantined_after: engine.quarantined_pages().len(),
                })
            }
            Some(e) => Err(format!("unexpected failure under {kind:?}: {e}")),
        }
    }

    /// A sweep: count events, sample at most `max_points` indices, and run
    /// one case per index with `arm(index)` armed. Divergences are
    /// collected, not fatal, so one report shows every broken crash point.
    pub fn sweep<F: Fn(u64) -> FaultKind>(
        &self,
        arm: F,
        max_points: usize,
    ) -> Result<TortureReport, String> {
        let total = self.count_events()?;
        let points = sample_indices(total, max_points);
        let mut report = TortureReport {
            events_total: total,
            crash_points: points.clone(),
            ..TortureReport::default()
        };
        for &k in &points {
            report.cases += 1;
            match self.run_case(arm(k)) {
                Ok(case) => {
                    if case.fired {
                        report.faults_fired += 1;
                    }
                    if let Some(ev) = case.fired_event {
                        report.fired_events.push(ev);
                    }
                    if case.corruption_detected {
                        report.corruption_detections += 1;
                    }
                    report.repairs += case.repairs;
                    report.transient_retries += case.transient_retries;
                    match case.path {
                        RecoveryPath::Clean => report.clean_completions += 1,
                        RecoveryPath::CrashRecovery => report.crash_recoveries += 1,
                        RecoveryPath::MediaRecovery => report.media_recoveries += 1,
                    }
                }
                Err(d) => report.divergences.push(format!("event {k}: {d}")),
            }
        }
        Ok(report)
    }

    /// Sweep process crashes across the event stream.
    pub fn crash_sweep(&self, max_points: usize) -> Result<TortureReport, String> {
        self.sweep(FaultKind::CrashAt, max_points)
    }

    /// Sweep torn page writes (each also crashes the process).
    pub fn torn_write_sweep(&self, max_points: usize) -> Result<TortureReport, String> {
        self.sweep(FaultKind::TornWriteAt, max_points)
    }

    /// Sweep silent page corruptions (the session keeps running; the scrub
    /// or the final verification must catch every one).
    pub fn corrupt_write_sweep(&self, max_points: usize) -> Result<TortureReport, String> {
        self.sweep(FaultKind::CorruptWriteAt, max_points)
    }

    /// Sweep media failures (during flushes and backup copies alike).
    pub fn media_fail_sweep(&self, max_points: usize) -> Result<TortureReport, String> {
        self.sweep(FaultKind::MediaFailAt, max_points)
    }

    /// Sweep stored-byte corruptions under page reads. Requires
    /// [`TortureConfig::self_heal`]: without a registered repair generation
    /// a detected bad read is a session-fatal error by design.
    pub fn corrupt_read_sweep(&self, max_points: usize) -> Result<TortureReport, String> {
        self.require_self_heal("corrupt_read_sweep")?;
        self.sweep(FaultKind::CorruptReadAt, max_points)
    }

    /// Sweep torn page reads (front half kept, back half zeroed in `S`).
    /// Requires [`TortureConfig::self_heal`].
    pub fn torn_read_sweep(&self, max_points: usize) -> Result<TortureReport, String> {
        self.require_self_heal("torn_read_sweep")?;
        self.sweep(FaultKind::TornReadAt, max_points)
    }

    /// Sweep transient read errors (two consecutive misses, then the device
    /// answers). Requires [`TortureConfig::self_heal`].
    pub fn transient_read_sweep(&self, max_points: usize) -> Result<TortureReport, String> {
        self.require_self_heal("transient_read_sweep")?;
        self.sweep(FaultKind::TransientReadAt, max_points)
    }

    fn require_self_heal(&self, what: &str) -> Result<(), String> {
        if self.cfg.self_heal {
            Ok(())
        } else {
            Err(format!(
                "{what} requires TortureConfig::self_heal (use TortureConfig::self_healing)"
            ))
        }
    }

    /// The online self-healing drill (DESIGN.md §5.8): arm corrupt, torn,
    /// and transient read faults round-robin across the sampled event
    /// indices. On top of [`TortureRunner::sweep`]'s oracle byte-verify,
    /// every case must end with the *clean* recovery path — a repairable
    /// read fault never aborts the session, never forces crash or media
    /// recovery, and leaves zero pages quarantined.
    pub fn read_fault_drill(&self, max_points: usize) -> Result<TortureReport, String> {
        self.require_self_heal("read_fault_drill")?;
        let total = self.count_events()?;
        let points = sample_indices(total, max_points);
        let mut report = TortureReport {
            events_total: total,
            crash_points: points.clone(),
            ..TortureReport::default()
        };
        for (i, &k) in points.iter().enumerate() {
            let kind = match i % 3 {
                0 => FaultKind::CorruptReadAt(k),
                1 => FaultKind::TornReadAt(k),
                _ => FaultKind::TransientReadAt(k),
            };
            report.cases += 1;
            match self.run_case(kind) {
                Ok(case) => {
                    if case.path != RecoveryPath::Clean {
                        report.divergences.push(format!(
                            "event {k}: {kind:?} forced {:?}; a repairable read fault \
                             must heal online",
                            case.path
                        ));
                    }
                    if case.quarantined_after != 0 {
                        report.divergences.push(format!(
                            "event {k}: {kind:?} left {} page(s) quarantined",
                            case.quarantined_after
                        ));
                    }
                    if case.fired {
                        report.faults_fired += 1;
                    }
                    if let Some(ev) = case.fired_event {
                        report.fired_events.push(ev);
                    }
                    if case.corruption_detected {
                        report.corruption_detections += 1;
                    }
                    report.repairs += case.repairs;
                    report.transient_retries += case.transient_retries;
                    match case.path {
                        RecoveryPath::Clean => report.clean_completions += 1,
                        RecoveryPath::CrashRecovery => report.crash_recoveries += 1,
                        RecoveryPath::MediaRecovery => report.media_recoveries += 1,
                    }
                }
                Err(d) => report.divergences.push(format!("event {k}: {kind:?}: {d}")),
            }
        }
        Ok(report)
    }

    /// Crash-during-restore drill: complete a clean session, fail the
    /// medium, then crash media recovery at every sampled I/O event of the
    /// restore + roll-forward itself and show that simply *re-running*
    /// media recovery converges to the oracle — restores are restartable.
    ///
    /// Under [`TortureConfig::parallel_recovery`] every restore in the
    /// drill (the counting run, the killed attempt, and the restart) goes
    /// through the parallel path, so the kill lands *inside* a parallel
    /// restore and the restarted one must still converge — and is
    /// additionally settled against the sequential differential oracle.
    pub fn restore_crash_drill(&self, max_points: usize) -> Result<TortureReport, String> {
        let DriveOutcome {
            mut engine,
            oracle,
            base,
            completed,
            inflight: _,
            error,
        } = self.drive(None)?;
        if let Some(e) = error {
            return Err(format!("clean session failed: {e}"));
        }
        let image = completed.unwrap_or(base);

        // Count the restore's own I/O events.
        let counter = FaultPlan::new(FaultKind::CountOnly);
        engine
            .store()
            .fail_partition(PartitionId(0))
            .map_err(|e| e.to_string())?;
        engine.install_fault_hook(Some(counter.hook()));
        self.media_recover_raw(&mut engine, &image)
            .map_err(|e| format!("fault-free restore failed: {e}"))?;
        engine.install_fault_hook(None);
        let total = counter.events_seen();
        oracle
            .verify_store(&engine, Lsn::MAX)
            .map_err(|e| format!("fault-free restore diverged: {e}"))?;

        let points = sample_indices(total, max_points);
        let mut report = TortureReport {
            events_total: total,
            crash_points: points.clone(),
            ..TortureReport::default()
        };
        for &k in &points {
            report.cases += 1;
            let plan = FaultPlan::new(FaultKind::CrashAt(k));
            if let Err(e) = engine.store().fail_partition(PartitionId(0)) {
                report.divergences.push(format!("event {k}: {e}"));
                continue;
            }
            engine.install_fault_hook(Some(plan.hook()));
            let first = self.media_recover_raw(&mut engine, &image);
            engine.install_fault_hook(None);
            match first {
                Err(e) if e.is_injected_crash() => {
                    report.faults_fired += 1;
                    if let Some(ev) = plan.fired_event() {
                        report.fired_events.push(ev);
                    }
                    // The process died mid-restore. Model the reboot, then
                    // just run media recovery again from the same image.
                    engine.crash();
                    if let Err(e) = self.media_recover_checked(&mut engine, &image) {
                        report
                            .divergences
                            .push(format!("event {k}: restarted restore failed: {e}"));
                        continue;
                    }
                    match oracle.verify_store(&engine, Lsn::MAX) {
                        Ok(()) => report.media_recoveries += 1,
                        Err(e) => report
                            .divergences
                            .push(format!("event {k}: restarted restore diverged: {e}")),
                    }
                }
                Err(e) => report
                    .divergences
                    .push(format!("event {k}: unexpected failure: {e}")),
                Ok(_) => {
                    // The armed index was past the restore's last event —
                    // the restore completed untouched.
                    match oracle.verify_store(&engine, Lsn::MAX) {
                        Ok(()) => report.clean_completions += 1,
                        Err(e) => report.divergences.push(format!("event {k}: {e}")),
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_counting_is_deterministic() {
        let runner = TortureRunner::new(TortureConfig::small(42, TortureWorkload::General));
        let a = runner.count_events().unwrap();
        let b = runner.count_events().unwrap();
        assert_eq!(a, b);
        assert!(a > 20, "a session this size must do real I/O (got {a})");
    }

    #[test]
    fn single_crash_case_recovers_and_verifies() {
        let runner = TortureRunner::new(TortureConfig::small(7, TortureWorkload::BackupConcurrent));
        let case = runner.run_case(FaultKind::CrashAt(10)).unwrap();
        assert!(case.fired);
        assert_ne!(case.path, RecoveryPath::Clean);
    }

    #[test]
    fn read_sweeps_refuse_to_run_without_self_healing() {
        let runner = TortureRunner::new(TortureConfig::small(3, TortureWorkload::General));
        assert!(runner.corrupt_read_sweep(2).is_err());
        assert!(runner.read_fault_drill(2).is_err());
    }

    #[test]
    fn single_corrupt_read_case_heals_online() {
        let runner = TortureRunner::new(TortureConfig::self_healing(11, TortureWorkload::General));
        let case = runner.run_case(FaultKind::CorruptReadAt(5)).unwrap();
        assert!(case.fired);
        assert_eq!(case.path, RecoveryPath::Clean);
        assert!(case.repairs >= 1, "the damaged read must repair online");
        assert_eq!(case.quarantined_after, 0);
    }

    #[test]
    fn parallel_crash_case_settles_against_the_sequential_oracle() {
        let runner = TortureRunner::new(TortureConfig::parallel(
            7,
            TortureWorkload::BackupConcurrent,
            RecoveryConfig::new(4, 8),
        ));
        let case = runner.run_case(FaultKind::CrashAt(10)).unwrap();
        assert!(case.fired);
        assert_ne!(case.path, RecoveryPath::Clean);
    }

    #[test]
    fn parallel_media_failure_case_settles_against_the_sequential_oracle() {
        let runner = TortureRunner::new(TortureConfig::parallel(
            13,
            TortureWorkload::General,
            RecoveryConfig::new(2, 64),
        ));
        let case = runner.run_case(FaultKind::MediaFailAt(30)).unwrap();
        assert!(case.fired);
    }

    #[test]
    fn small_read_fault_drill_is_all_clean() {
        let runner = TortureRunner::new(TortureConfig::self_healing(
            23,
            TortureWorkload::BackupConcurrent,
        ));
        let report = runner.read_fault_drill(6).unwrap();
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);
        assert_eq!(report.clean_completions, report.cases);
        assert!(report.faults_fired > 0);
    }
}
