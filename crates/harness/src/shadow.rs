//! The shadow oracle: ground truth for recovery correctness.

use bytes::Bytes;
use lob_core::{Engine, Lsn, OpBody, PageId};
use lob_ops::OpError;
use std::collections::BTreeMap;

/// A deterministic replica of the logged operation history.
///
/// The oracle applies every operation the workload executes to its own
/// in-memory page state (operations are deterministic functions of their
/// read sets, so the oracle and the engine always agree). It remembers the
/// per-LSN write sets, so it can reconstruct the expected database state at
/// any log prefix — which is exactly what a recovered stable database must
/// match:
///
/// * after a **crash**, the prefix is the log's durable LSN (unforced
///   operations are legitimately lost);
/// * after **media recovery**, the prefix is the full history (roll-forward
///   reaches the current end of the log).
/// ```
/// use lob_harness::ShadowOracle;
/// use lob_core::{Engine, EngineConfig, Lsn, OpBody, PageId};
/// use bytes::Bytes;
///
/// let mut engine = Engine::new(EngineConfig::small()).unwrap();
/// let mut oracle = ShadowOracle::new(256);
/// oracle.execute(&mut engine, OpBody::PhysicalWrite {
///     target: PageId::new(0, 0),
///     value: Bytes::from(vec![7u8; 256]),
/// }).unwrap();
/// engine.flush_all().unwrap();
/// // The stable database now matches the oracle's expectation.
/// oracle.verify_store(&engine, Lsn::MAX).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct ShadowOracle {
    page_size: usize,
    current: BTreeMap<PageId, Bytes>,
    history: Vec<(Lsn, Vec<(PageId, Bytes)>)>,
}

impl ShadowOracle {
    /// An oracle for a database of `page_size`-byte pages (all initially
    /// zero).
    pub fn new(page_size: usize) -> ShadowOracle {
        ShadowOracle {
            page_size,
            current: BTreeMap::new(),
            history: Vec::new(),
        }
    }

    fn value_of(&self, id: PageId) -> Bytes {
        self.current
            .get(&id)
            .cloned()
            .unwrap_or_else(|| Bytes::from(vec![0u8; self.page_size]))
    }

    /// Apply an operation the engine just executed (at `lsn`).
    pub fn apply(&mut self, lsn: Lsn, body: &OpBody) -> Result<(), OpError> {
        let snapshot: BTreeMap<PageId, Bytes> = body
            .readset()
            .into_iter()
            .map(|id| (id, self.value_of(id)))
            .collect();
        let page_size = self.page_size;
        let mut reader = |id: PageId| -> Result<Bytes, OpError> {
            Ok(snapshot
                .get(&id)
                .cloned()
                .unwrap_or_else(|| Bytes::from(vec![0u8; page_size])))
        };
        let outputs = body.apply(&mut reader)?;
        for (id, bytes) in &outputs {
            self.current.insert(*id, bytes.clone());
        }
        self.history.push((lsn, outputs));
        Ok(())
    }

    /// Convenience: execute on the engine *and* mirror into the oracle.
    pub fn execute(&mut self, engine: &mut Engine, body: OpBody) -> Result<Lsn, String> {
        let lsn = engine
            .execute(body.clone())
            .map_err(|e| format!("engine execute failed: {e}"))?;
        self.apply(lsn, &body)
            .map_err(|e| format!("oracle apply failed: {e}"))?;
        Ok(lsn)
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// LSN of the last recorded operation.
    pub fn last_lsn(&self) -> Lsn {
        self.history.last().map(|(l, _)| *l).unwrap_or(Lsn::NULL)
    }

    /// Forget every operation above `upto` — the unforced tail a simulated
    /// crash legitimately loses. Post-recovery operations re-use those LSNs,
    /// so the lost suffix must leave the history before new entries arrive.
    pub fn truncate_to(&mut self, upto: Lsn) {
        self.history.retain(|(l, _)| *l <= upto);
        self.current = self.state_at(upto);
    }

    /// Expected page values considering only operations with `lsn <= upto`.
    pub fn state_at(&self, upto: Lsn) -> BTreeMap<PageId, Bytes> {
        let mut state = BTreeMap::new();
        for (lsn, writes) in &self.history {
            if *lsn > upto {
                break;
            }
            for (id, bytes) in writes {
                state.insert(*id, bytes.clone());
            }
        }
        state
    }

    /// Expected value of one page at a log prefix (zeroes if never written).
    pub fn expect_page(&self, id: PageId, upto: Lsn) -> Bytes {
        let mut out = None;
        for (lsn, writes) in &self.history {
            if *lsn > upto {
                break;
            }
            for (wid, bytes) in writes {
                if *wid == id {
                    out = Some(bytes.clone());
                }
            }
        }
        out.unwrap_or_else(|| Bytes::from(vec![0u8; self.page_size]))
    }

    /// Verify that the engine's stable database matches the oracle at the
    /// given log prefix, for every page the oracle ever saw written.
    /// Returns a description of the first mismatch.
    pub fn verify_store(&self, engine: &Engine, upto: Lsn) -> Result<(), String> {
        let expect = self.state_at(upto);
        for (id, want) in &expect {
            let got = engine
                .store()
                .read_page(*id)
                .map_err(|e| format!("reading {id} from S: {e}"))?;
            if got.data() != want {
                return Err(format!(
                    "page {id} mismatch at prefix {upto}: S has {:02x?}…, oracle expects {:02x?}…",
                    &got.data()[..8.min(got.data().len())],
                    &want[..8.min(want.len())]
                ));
            }
        }
        Ok(())
    }

    /// Pages the oracle has seen written.
    pub fn touched_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .history
            .iter()
            .flat_map(|(_, ws)| ws.iter().map(|(id, _)| *id))
            .collect();
        pages.sort();
        pages.dedup();
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lob_core::{EngineConfig, LogicalOp};

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    #[test]
    fn oracle_mirrors_engine_exactly() {
        let mut e = Engine::new(EngineConfig::small()).unwrap();
        let mut o = ShadowOracle::new(256);
        o.execute(
            &mut e,
            OpBody::PhysicalWrite {
                target: pid(0),
                value: Bytes::from(vec![7u8; 256]),
            },
        )
        .unwrap();
        o.execute(
            &mut e,
            OpBody::Logical(LogicalOp::Copy {
                src: pid(0),
                dst: pid(1),
            }),
        )
        .unwrap();
        let engine_p1 = e.read_page(pid(1)).unwrap();
        assert_eq!(engine_p1.data(), &o.expect_page(pid(1), Lsn(2)));
        assert_eq!(o.len(), 2);
        assert_eq!(o.last_lsn(), Lsn(2));
        assert_eq!(o.touched_pages(), vec![pid(0), pid(1)]);
    }

    #[test]
    fn state_at_respects_prefix() {
        let mut e = Engine::new(EngineConfig::small()).unwrap();
        let mut o = ShadowOracle::new(256);
        for (i, fill) in [(0u32, 1u8), (0, 2), (0, 3)] {
            o.execute(
                &mut e,
                OpBody::PhysicalWrite {
                    target: pid(i),
                    value: Bytes::from(vec![fill; 256]),
                },
            )
            .unwrap();
        }
        assert_eq!(o.expect_page(pid(0), Lsn(1))[0], 1);
        assert_eq!(o.expect_page(pid(0), Lsn(2))[0], 2);
        assert_eq!(o.expect_page(pid(0), Lsn::MAX)[0], 3);
        assert_eq!(o.expect_page(pid(0), Lsn::NULL)[0], 0, "before everything");
    }

    #[test]
    fn verify_store_detects_mismatch_and_match() {
        let mut e = Engine::new(EngineConfig::small()).unwrap();
        let mut o = ShadowOracle::new(256);
        o.execute(
            &mut e,
            OpBody::PhysicalWrite {
                target: pid(0),
                value: Bytes::from(vec![9u8; 256]),
            },
        )
        .unwrap();
        // Not flushed yet: S still zeroed → mismatch at full prefix.
        assert!(o.verify_store(&e, Lsn::MAX).is_err());
        e.flush_all().unwrap();
        assert!(o.verify_store(&e, Lsn::MAX).is_ok());
    }
}
