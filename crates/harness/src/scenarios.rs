//! End-to-end scenarios: the Figure 1 counterexample and randomized
//! sessions.

use crate::shadow::ShadowOracle;
use crate::workload::WorkloadGen;
use bytes::Bytes;
use lob_core::{
    BackupPolicy, Discipline, Engine, EngineConfig, Lsn, OpBody, PageId, PartitionId, RecPage,
};
use lob_ops::{LogicalOp, PhysioOp};

/// Outcome of the Figure 1 split scenario.
#[derive(Debug, Clone)]
pub struct Fig1Outcome {
    /// Whether every record survived media recovery from the backup.
    pub data_intact: bool,
    /// Identity-write records the protocol logged (0 for the naive dump).
    pub iwof_records: u64,
    /// Records expected / found after recovery.
    pub records_expected: usize,
    /// See [`Fig1Outcome::records_expected`].
    pub records_found: usize,
}

/// The paper's Figure 1, executed: a B-tree-style logical split races an
/// on-line backup such that the backup captures `new` *before* the split
/// and `old` *after* it.
///
/// * With [`BackupPolicy::NaiveFuzzy`] (the conventional fuzzy dump), the
///   moved records exist nowhere in the backup **or** the log — media
///   recovery silently loses them.
/// * With [`BackupPolicy::Protocol`], flushing `new` while `Done` triggers
///   an identity write, and recovery is exact.
pub fn fig1_split_scenario(policy: BackupPolicy) -> Result<Fig1Outcome, String> {
    let page_size = 256usize;
    let mut engine = Engine::new(EngineConfig {
        discipline: Discipline::Tree,
        policy,
        ..EngineConfig::single(64, page_size)
    })
    .map_err(|e| e.to_string())?;

    // `new` low in the backup order, `old` high — the Figure 1 geometry.
    let new = PageId::new(0, 8);
    let old = PageId::new(0, 40);

    // Prefill `old` with records and quiesce.
    let mut expected: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for i in 0..6u8 {
        let key = vec![b'a' + i];
        let val = vec![0x10 + i; 8];
        expected.push((key.clone(), val.clone()));
        engine
            .execute(OpBody::Physio(PhysioOp::InsertRec {
                target: old,
                key: Bytes::from(key),
                val: Bytes::from(val),
            }))
            .map_err(|e| e.to_string())?;
    }
    engine.flush_all().map_err(|e| e.to_string())?;

    // Two-step backup: step 1 copies the low half (including `new`,
    // still empty).
    let mut run = engine.begin_backup(2).map_err(|e| e.to_string())?;
    engine.backup_step(&mut run).map_err(|e| e.to_string())?;

    // The logical split: MovRec(old, "c", new) then RmvRec(old, "c").
    let sep = Bytes::from_static(b"c");
    engine
        .execute(OpBody::Logical(LogicalOp::MovRec {
            old,
            sep: sep.clone(),
            new,
        }))
        .map_err(|e| e.to_string())?;
    engine
        .execute(OpBody::Physio(PhysioOp::RmvRec { target: old, sep }))
        .map_err(|e| e.to_string())?;

    // Flush both (write-graph order: new before old). `new` is Done —
    // the protocol logs it; the naive dump does not.
    engine.flush_page(old).map_err(|e| e.to_string())?;

    // Step 2 copies the high half (including the truncated `old`).
    while !engine.backup_step(&mut run).map_err(|e| e.to_string())? {}
    let image = engine.complete_backup(run).map_err(|e| e.to_string())?;
    let iwof_records = engine.stats().iwof_records;

    // Media failure and recovery from the backup.
    engine
        .store()
        .fail_partition(PartitionId(0))
        .map_err(|e| e.to_string())?;
    engine.media_recover(&image).map_err(|e| e.to_string())?;

    // Collect the records from both nodes.
    let mut found: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    for pid in [old, new] {
        let page = engine.read_page(pid).map_err(|e| e.to_string())?;
        let rp = RecPage::decode(pid, page.data()).map_err(|e| e.to_string())?;
        found.extend(rp.into_entries());
    }
    found.sort();
    let mut want = expected.clone();
    want.sort();
    Ok(Fig1Outcome {
        data_intact: found == want,
        iwof_records,
        records_expected: want.len(),
        records_found: found.len(),
    })
}

/// Configuration of a randomized end-to-end session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// RNG seed — everything else being equal, the session is a pure
    /// function of it.
    pub seed: u64,
    /// Database pages (one partition).
    pub pages: u32,
    /// Page size in bytes.
    pub page_size: usize,
    /// Operation discipline (drives the generated mix).
    pub discipline: Discipline,
    /// Backup policy under test.
    pub policy: BackupPolicy,
    /// Operations to execute.
    pub ops: u32,
    /// Probability of flushing a random dirty page after each operation.
    pub flush_prob: f64,
    /// Steps for the interleaved backup.
    pub backup_steps: u32,
    /// Operations before the backup begins.
    pub backup_start_after: u32,
    /// Operations between backup steps.
    pub ops_per_backup_step: u32,
    /// Crash (and verify recovery) after this many operations, if set.
    /// The session ends at the crash.
    pub crash_after: Option<u32>,
    /// End with a media failure + restore from the session's backup +
    /// roll-forward, verified against the oracle.
    pub media_drill: bool,
}

impl SessionConfig {
    /// A medium-sized protocol session for the given seed and discipline.
    pub fn protocol(seed: u64, discipline: Discipline) -> SessionConfig {
        SessionConfig {
            seed,
            pages: 256,
            page_size: 64,
            discipline,
            policy: BackupPolicy::Protocol,
            ops: 400,
            flush_prob: 0.4,
            backup_steps: 4,
            backup_start_after: 80,
            ops_per_backup_step: 60,
            crash_after: None,
            media_drill: true,
        }
    }
}

/// What a session observed.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Identity-write records logged.
    pub iwof_records: u64,
    /// Coordinator decisions while a backup was active.
    pub decisions_active: u64,
    /// Pages the backup captured.
    pub backup_pages: u64,
    /// Whether every requested verification matched the oracle.
    pub verified: bool,
    /// Description of the first verification failure.
    pub failure: Option<String>,
}

/// Run a randomized session: a seeded workload with interleaved flushes, an
/// on-line backup, and optional crash / media-failure drills verified
/// against the shadow oracle.
pub fn random_session(cfg: &SessionConfig) -> Result<SessionReport, String> {
    let mut engine = Engine::new(EngineConfig {
        discipline: cfg.discipline,
        policy: cfg.policy,
        ..EngineConfig::single(cfg.pages, cfg.page_size)
    })
    .map_err(|e| e.to_string())?;
    let mut oracle = ShadowOracle::new(cfg.page_size);
    let mut gen = WorkloadGen::new(cfg.seed, cfg.page_size);

    // Page pools. For the tree discipline, fresh pages come from a
    // shuffled pool so write-new targets stay uniformly positioned.
    let all: Vec<PageId> = (0..cfg.pages).map(|i| PageId::new(0, i)).collect();
    let shuffled = gen.shuffled(&all);
    let prefill = (cfg.pages as usize / 3).max(8).min(shuffled.len() / 2);
    let mut used: Vec<PageId> = shuffled[..prefill].to_vec();
    let mut fresh: Vec<PageId> = shuffled[prefill..].to_vec();
    for &p in &used.clone() {
        oracle.execute(&mut engine, gen.physical(p))?;
    }
    engine.flush_all().map_err(|e| e.to_string())?;

    let mut run = None;
    let mut image = None;
    let mut backup_pages = 0u64;
    let mut since_step = 0u32;
    let mut crashed = false;
    let mut failure: Option<String> = None;

    for opno in 0..cfg.ops {
        // Generate one operation fitting the discipline.
        let body = match cfg.discipline {
            Discipline::PageOriented => {
                let p = gen_pick(&mut gen, &used);
                if gen.chance(0.5) {
                    gen.physio(p)
                } else {
                    gen.physical(p)
                }
            }
            Discipline::Tree => {
                if gen.chance(0.4) && !fresh.is_empty() {
                    let x = fresh.swap_remove(gen.below(fresh.len()));
                    let op = gen.copy_to_fresh(&used, x);
                    used.push(x);
                    op
                } else {
                    let p = gen_pick(&mut gen, &used);
                    if gen.chance(0.5) {
                        gen.physio(p)
                    } else {
                        gen.physical(p)
                    }
                }
            }
            Discipline::General => {
                if gen.chance(0.5) && used.len() >= 4 {
                    gen.mix(&used, 2, 2)
                } else {
                    let p = gen_pick(&mut gen, &used);
                    if gen.chance(0.5) {
                        gen.physio(p)
                    } else {
                        gen.physical(p)
                    }
                }
            }
        };
        oracle.execute(&mut engine, body)?;

        // Random flush pressure.
        if gen.chance(cfg.flush_prob) {
            let dirty = engine.cache().dirty_pages();
            if !dirty.is_empty() {
                let victim = dirty[gen.below(dirty.len())];
                engine.flush_page(victim).map_err(|e| e.to_string())?;
            }
        }

        // Backup lifecycle.
        if opno == cfg.backup_start_after {
            run = Some(
                engine
                    .begin_backup(cfg.backup_steps)
                    .map_err(|e| e.to_string())?,
            );
        }
        if let Some(r) = run.as_mut() {
            since_step += 1;
            if since_step >= cfg.ops_per_backup_step {
                since_step = 0;
                if engine.backup_step(r).map_err(|e| e.to_string())? {
                    if let Some(r) = run.take() {
                        backup_pages = r.pages_copied();
                        image = Some(engine.complete_backup(r).map_err(|e| e.to_string())?);
                    }
                }
            }
        }

        // Crash drill.
        if cfg.crash_after == Some(opno) {
            let durable = engine.log().durable_lsn();
            if let Some(r) = run.take() {
                let id = r.backup_id();
                r.abort(engine.coordinator());
                engine.release_backup(id);
            }
            engine.crash();
            engine.recover().map_err(|e| e.to_string())?;
            if let Err(e) = oracle.verify_store(&engine, durable) {
                failure = Some(format!("crash recovery mismatch: {e}"));
            }
            crashed = true;
            break;
        }
    }

    // Finish an unfinished backup.
    if let Some(mut r) = run.take() {
        while !engine.backup_step(&mut r).map_err(|e| e.to_string())? {}
        backup_pages = r.pages_copied();
        image = Some(engine.complete_backup(r).map_err(|e| e.to_string())?);
    }

    let (decisions_active, _, _, _, _, _) = engine.coordinator().stats().snapshot();
    let iwof_records = engine.stats().iwof_records;

    // Media drill: lose the medium, restore, roll forward, compare.
    if cfg.media_drill && !crashed && failure.is_none() {
        let image = image.ok_or("media drill requires a completed backup")?;
        engine
            .store()
            .fail_partition(PartitionId(0))
            .map_err(|e| e.to_string())?;
        engine.media_recover(&image).map_err(|e| e.to_string())?;
        if let Err(e) = oracle.verify_store(&engine, Lsn::MAX) {
            failure = Some(format!("media recovery mismatch: {e}"));
        }
    }

    Ok(SessionReport {
        iwof_records,
        decisions_active,
        backup_pages,
        verified: failure.is_none(),
        failure,
    })
}

fn gen_pick(gen: &mut WorkloadGen, pages: &[PageId]) -> PageId {
    pages[gen.below(pages.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_naive_fuzzy_dump_loses_the_split() {
        let out = fig1_split_scenario(BackupPolicy::NaiveFuzzy).unwrap();
        assert!(!out.data_intact, "the counterexample must bite");
        assert_eq!(out.iwof_records, 0);
        assert!(out.records_found < out.records_expected);
    }

    #[test]
    fn fig1_protocol_preserves_the_split() {
        let out = fig1_split_scenario(BackupPolicy::Protocol).unwrap();
        assert!(out.data_intact);
        assert!(out.iwof_records >= 1, "Done-region flush logged identity");
        assert_eq!(out.records_found, out.records_expected);
    }

    #[test]
    fn protocol_sessions_verify_across_disciplines() {
        for discipline in [
            Discipline::PageOriented,
            Discipline::Tree,
            Discipline::General,
        ] {
            for seed in [1u64, 2, 3] {
                let cfg = SessionConfig::protocol(seed, discipline);
                let rep = random_session(&cfg).unwrap();
                assert!(
                    rep.verified,
                    "{discipline:?} seed {seed}: {:?}",
                    rep.failure
                );
                assert!(rep.backup_pages > 0);
            }
        }
    }

    #[test]
    fn crash_sessions_verify() {
        for seed in [11u64, 12] {
            let mut cfg = SessionConfig::protocol(seed, Discipline::General);
            cfg.crash_after = Some(200);
            cfg.media_drill = false;
            let rep = random_session(&cfg).unwrap();
            assert!(rep.verified, "seed {seed}: {:?}", rep.failure);
        }
    }

    #[test]
    fn page_oriented_sessions_never_need_iwof() {
        let cfg = SessionConfig::protocol(5, Discipline::PageOriented);
        let rep = random_session(&cfg).unwrap();
        assert!(rep.verified);
        assert_eq!(
            rep.iwof_records, 0,
            "conventional fuzzy dump: no extra logging for page-oriented ops"
        );
    }
}
