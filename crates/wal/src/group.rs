//! # Group-commit scheduler
//!
//! [`GroupCommitLog`] wraps a [`LogManager`] behind internal locks so many
//! sessions can append and force concurrently, batching their forces into
//! group commits: the first session needing durability becomes the
//! **leader**, waits up to `delay` for up to `count` co-committers to
//! arrive, then runs **one** [`LogManager::force`] covering the whole
//! appended tail. Followers park on a condvar and read their outcome from
//! the published durable watermark.
//!
//! The fault surface is unchanged by construction: the leader's single
//! `LogManager::force` call is the only path to the store, so each group
//! pays exactly one `LogForce` consult and one `LogAppend` consult per
//! frame, identical to a single-threaded force of the same tail. A crash
//! verdict mid-group fans the typed error out to every waiter whose goal
//! the round failed to cover.
//!
//! Lock order (must stay acyclic with the engine's): `state` before
//! `manager`. Appends take only `manager`; commit bookkeeping takes only
//! `state`; the leader takes `state`, then `manager` (via
//! [`GroupCommitLog::lead_force`]). Nothing ever takes `manager` first.

use crate::{LogError, LogManager, LogRecord, RecordBody};
use lob_pagestore::Lsn;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A force round's failure, kept cloneable so one leader error can fan out
/// to every waiter of the round ([`LogError`] is not `Clone`).
#[derive(Debug, Clone)]
enum GroupFailure {
    /// The fault hook injected a crash (possibly after a durable prefix).
    InjectedCrash,
    /// A real store-level I/O failure, stringified.
    Io(String),
}

impl GroupFailure {
    fn of(e: &LogError) -> GroupFailure {
        match e {
            LogError::InjectedCrash => GroupFailure::InjectedCrash,
            other => GroupFailure::Io(other.to_string()),
        }
    }

    fn to_error(&self) -> LogError {
        match self {
            GroupFailure::InjectedCrash => LogError::InjectedCrash,
            GroupFailure::Io(msg) => LogError::Io(std::io::Error::other(msg.clone())),
        }
    }
}

/// Group-commit bookkeeping, all under the `state` lock.
#[derive(Debug, Default)]
struct GroupState {
    /// A leader is currently gathering or forcing.
    leading: bool,
    /// Followers parked on `completions` (leader excluded).
    waiters: u32,
    /// Completed force rounds (monotone; followers detect "my round ran").
    rounds: u64,
    /// Outcome of the most recent round, `None` on success.
    failure: Option<GroupFailure>,
    /// LSN ranges `(lo, hi]` wiped by [`GroupCommitLog::crash`]:
    /// appended-but-unforced records lost before any round covered them.
    /// LSNs are never reused and `durable` is monotone, so the ranges are
    /// disjoint, ascending, and permanent — a commit whose record falls in
    /// a hole can never become durable, even though the published durable
    /// watermark later passes the hole via post-crash records.
    holes: Vec<(u64, u64)>,
}

/// Wiped-record test: `lsn` falls in a crash hole (see
/// [`GroupState::holes`]).
fn in_hole(holes: &[(u64, u64)], lsn: u64) -> bool {
    holes.iter().any(|&(lo, hi)| lo < lsn && lsn <= hi)
}

/// A [`LogManager`] shared by concurrent sessions with group-committed
/// forces. See the module docs for the protocol and lock order.
pub struct GroupCommitLog {
    /// The wrapped single-writer log. Held briefly for appends; held by
    /// the leader for the duration of one group force.
    manager: Mutex<LogManager>,
    /// Leader election and round bookkeeping.
    state: Mutex<GroupState>,
    // lint: guarded-by(state) waiters park here; waking re-acquires `state`
    arrivals: Condvar,
    // lint: guarded-by(state) round completions; waking re-acquires `state`
    completions: Condvar,
    // lint: guarded-by(immutable) gather window, fixed at construction
    delay: Duration,
    // lint: guarded-by(immutable) early-dispatch group size, fixed at construction
    count: u32,
    /// Published durable watermark (raw LSN), so sessions read commit
    /// outcomes without any lock. Stored only under the `manager` lock,
    /// so it is monotone.
    durable: AtomicU64, // lint: atomic(acq-rel)
    /// Last appended LSN (raw), mirrored under the `manager` lock.
    appended: AtomicU64, // lint: atomic(acq-rel)
    /// Smallest LSN that could sit in a crash hole (`u64::MAX` while no
    /// crash has wiped anything): lets the lock-free force fast path
    /// trust `durable` alone below this point.
    hole_floor: AtomicU64, // lint: atomic(acq-rel)
}

impl GroupCommitLog {
    /// Wrap `manager`. A force leader waits up to `delay` for up to
    /// `count` total committers before dispatching the group; `delay = 0`
    /// or `count <= 1` disables gathering (each force dispatches
    /// immediately, still batching whatever is already appended) — that is
    /// also what keeps seeded virtual-scheduler drills deterministic.
    pub fn new(manager: LogManager, delay: Duration, count: u32) -> GroupCommitLog {
        let durable = manager.durable_lsn().raw();
        let appended = manager.next_lsn().raw().saturating_sub(1);
        GroupCommitLog {
            manager: Mutex::new(manager),
            state: Mutex::new(GroupState::default()),
            arrivals: Condvar::new(),
            completions: Condvar::new(),
            delay,
            count,
            durable: AtomicU64::new(durable),
            appended: AtomicU64::new(appended),
            hole_floor: AtomicU64::new(u64::MAX),
        }
    }

    fn manager_guard(&self) -> MutexGuard<'_, LogManager> {
        let g = self.manager.lock();
        let _held = lob_pagestore::witness::hold("wal/group.manager");
        lob_pagestore::witness::access("GroupCommitLog.manager");
        g
    }

    fn state_guard(&self) -> MutexGuard<'_, GroupState> {
        let g = self.state.lock();
        let _held = lob_pagestore::witness::hold("wal/group.state");
        lob_pagestore::witness::access("GroupCommitLog.state");
        g
    }

    /// Append a record; returns its LSN. Volatile until a force covers it.
    pub fn append_record(&self, body: RecordBody) -> Lsn {
        let mut m = self.manager_guard();
        let lsn = m.append(body);
        self.appended.store(lsn.raw(), Ordering::Release);
        lsn
    }

    /// Group-committed force: durably persist at least every appended
    /// record with `lsn <= upto`. Equivalent to [`LogManager::force`] of
    /// the whole appended tail, shared with whichever sessions commit in
    /// the same window.
    pub fn force(&self, upto: Lsn) -> Result<(), LogError> {
        let goal = upto.raw().min(self.appended.load(Ordering::Acquire));
        if self.durable.load(Ordering::Acquire) >= goal
            && upto.raw() < self.hole_floor.load(Ordering::Acquire)
        {
            // Already durable, and `upto` is below every crash hole (so
            // the watermark cannot be lying about it). The caller's
            // durability point exists all the same — mirror
            // `LogManager::force`'s empty-tail witness.
            lob_pagestore::witness::io_order("LogForce");
            return Ok(());
        }
        let mut st = self.state_guard();
        loop {
            // Checked before the watermark: a concurrent `crash()` wipes
            // the unforced tail, and post-crash commits can push
            // `durable` past the wiped range — `durable >= goal` alone
            // would falsely signal durability for a record that no
            // longer exists.
            if in_hole(&st.holes, upto.raw()) {
                return Err(LogError::InjectedCrash);
            }
            if self.durable.load(Ordering::Acquire) >= goal {
                return Ok(());
            }
            if !st.leading {
                st.leading = true;
                st = self.gather(st);
                drop(st);
                let outcome = self.lead_force();
                let lost =
                    self.publish_round(outcome.as_ref().err().map(GroupFailure::of), upto.raw());
                if lost {
                    // The tail was wiped by a crash while this leader
                    // was gathering or forcing: the goal record is gone.
                    return Err(LogError::InjectedCrash);
                }
                if self.durable.load(Ordering::Acquire) >= goal {
                    return Ok(());
                }
                // The round did not reach our goal: only a gated/failed
                // suffix explains that (the leader forces the whole
                // tail, and a tail wiped by a concurrent crash is a
                // hole, caught above).
                return outcome;
            }
            // Follow: register, wake a gathering leader, park until the
            // in-flight round publishes.
            st.waiters += 1;
            // lint:allow(guarded-by) `st` from state_guard() is held here
            self.arrivals.notify_one();
            let entry_round = st.rounds;
            while st.rounds == entry_round && self.durable.load(Ordering::Acquire) < goal {
                // lint:allow(guarded-by) waiting yields the held `st` guard
                st = self.completions.wait(st);
            }
            st.waiters -= 1;
            if in_hole(&st.holes, upto.raw()) {
                return Err(LogError::InjectedCrash);
            }
            if self.durable.load(Ordering::Acquire) >= goal {
                return Ok(());
            }
            if let Some(f) = &st.failure {
                return Err(f.to_error());
            }
            // Round succeeded but our goal is newer (we re-registered
            // after a completed round): loop — we may now lead.
        }
    }

    /// Publish a completed round: step down as leader, bump the round
    /// counter, record the outcome, wake every parked follower. Returns
    /// whether `upto` now sits in a crash hole (the leader's record was
    /// wiped mid-round).
    fn publish_round(&self, failure: Option<GroupFailure>, upto: u64) -> bool {
        let mut st = self.state_guard();
        st.leading = false;
        st.rounds = st.rounds.wrapping_add(1);
        st.failure = failure;
        // lint:allow(guarded-by) `st` from state_guard() is held here
        self.completions.notify_all();
        in_hole(&st.holes, upto)
    }

    /// Leader's gather window: wait up to `delay` for the group to fill.
    fn gather<'a>(&self, mut st: MutexGuard<'a, GroupState>) -> MutexGuard<'a, GroupState> {
        if self.count <= 1 || self.delay.is_zero() {
            return st;
        }
        let deadline = Instant::now() + self.delay;
        while st.waiters + 1 < self.count {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // lint:allow(guarded-by) waiting yields the held `st` guard
            let (g, timed_out) = self.arrivals.wait_timeout(st, deadline - now);
            st = g;
            if timed_out {
                break;
            }
        }
        st
    }

    /// The leader's single dispatch: one [`LogManager::force`] over the
    /// whole tail — one `LogForce` consult per group, per-frame
    /// `LogAppend` gating unchanged. Publishes the durable watermark
    /// (even after a partial, fault-gated force).
    fn lead_force(&self) -> Result<(), LogError> {
        let mut m = self.manager_guard();
        let r = m.force(Lsn::MAX);
        self.durable.store(m.durable_lsn().raw(), Ordering::Release);
        r
    }

    /// Force everything appended so far.
    pub fn force_all(&self) -> Result<(), LogError> {
        self.force(Lsn::MAX)
    }

    /// LSN of the last durable record (lock-free).
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable.load(Ordering::Acquire))
    }

    /// LSN the next appended record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.manager_guard().next_lsn()
    }

    /// Simulate a crash: the unforced tail is lost; any recorded round
    /// failure is cleared (its consequence *is* the crash being taken).
    /// The wiped LSN range is remembered as a hole so a concurrent or
    /// later [`GroupCommitLog::force`] of a wiped record reports the loss
    /// instead of trivially succeeding on the emptied tail.
    pub fn crash(&self) {
        // Lock order: `state` before `manager`, same as a force leader.
        let mut st = self.state_guard();
        {
            let mut m = self.manager_guard();
            let durable = self.durable.load(Ordering::Acquire);
            let appended = self.appended.load(Ordering::Acquire);
            if appended > durable {
                st.holes.push((durable, appended));
                self.hole_floor.fetch_min(durable + 1, Ordering::AcqRel);
            }
            m.crash();
            self.appended.store(durable, Ordering::Release);
        }
        st.failure = None;
        // lint:allow(guarded-by) `st` from state_guard() is held here
        self.completions.notify_all();
    }

    /// All records with `lsn >= from`, decoded. See
    /// [`LogManager::scan_from`].
    pub fn scan_from(&self, from: Lsn) -> Result<Vec<LogRecord>, LogError> {
        self.manager_guard().scan_from(from)
    }

    /// Advance the truncation point (bounded by the media barrier).
    pub fn truncate(&self, before: Lsn) -> Result<Lsn, LogError> {
        self.manager_guard().truncate(before)
    }

    /// Current truncation point.
    pub fn truncation(&self) -> Lsn {
        self.manager_guard().truncation()
    }

    /// Pin (or release) the media barrier.
    pub fn set_media_barrier(&self, barrier: Option<Lsn>) {
        self.manager_guard().set_media_barrier(barrier)
    }

    /// Number of appended-but-unforced records.
    pub fn unforced(&self) -> usize {
        self.manager_guard().unforced()
    }

    /// Install (or clear) the fault hook on the wrapped manager.
    pub fn set_fault_hook(&self, hook: Option<lob_pagestore::FaultHook>) {
        self.manager_guard().set_fault_hook(hook)
    }

    /// Run `f` with the wrapped manager locked — the escape hatch for
    /// stats and other read-mostly passthroughs.
    pub fn with_manager<R>(&self, f: impl FnOnce(&mut LogManager) -> R) -> R {
        let mut m = self.manager_guard();
        f(&mut m)
    }
}

impl std::fmt::Debug for GroupCommitLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GroupCommitLog(durable {}, appended {})",
            self.durable.load(Ordering::Acquire),
            self.appended.load(Ordering::Acquire)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lob_pagestore::{FaultVerdict, IoEvent};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn op_body(i: u8) -> RecordBody {
        RecordBody::Op(lob_ops::OpBody::PhysicalWrite {
            target: lob_pagestore::PageId::new(0, i as u32),
            value: bytes::Bytes::from(vec![i; 8]),
        })
    }

    #[test]
    fn append_and_force_single_session() {
        let log = GroupCommitLog::new(LogManager::in_memory(), Duration::ZERO, 4);
        let l1 = log.append_record(op_body(1));
        let l2 = log.append_record(op_body(2));
        assert_eq!(log.durable_lsn(), Lsn::NULL);
        log.force(l1).unwrap();
        assert_eq!(log.durable_lsn(), l2, "group force covers the whole tail");
        assert_eq!(log.unforced(), 0);
    }

    #[test]
    fn force_of_durable_prefix_is_noop() {
        let log = GroupCommitLog::new(LogManager::in_memory(), Duration::ZERO, 4);
        let l1 = log.append_record(op_body(1));
        log.force_all().unwrap();
        log.force(l1).unwrap();
        assert_eq!(log.durable_lsn(), l1);
    }

    #[test]
    fn concurrent_commits_share_forces() {
        let log = Arc::new(GroupCommitLog::new(
            LogManager::in_memory(),
            Duration::from_millis(2),
            4,
        ));
        let forces = Arc::new(AtomicUsize::new(0));
        {
            let forces = forces.clone();
            log.set_fault_hook(Some(Arc::new(move |ev, _| {
                if matches!(ev, IoEvent::LogForce) {
                    forces.fetch_add(1, Ordering::Relaxed);
                }
                FaultVerdict::Proceed
            })));
        }
        let per_thread = 32usize;
        let threads = 4usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let lsn = log.append_record(op_body((t * per_thread + i) as u8));
                        log.force(lsn).unwrap();
                    }
                });
            }
        });
        assert_eq!(log.unforced(), 0);
        assert_eq!(
            log.durable_lsn(),
            Lsn((threads * per_thread) as u64),
            "every commit durable"
        );
        let n = forces.load(Ordering::Relaxed);
        assert!(
            n < threads * per_thread,
            "group commit must amortize: {n} forces for {} commits",
            threads * per_thread
        );
    }

    #[test]
    fn crash_during_group_commit_fans_typed_error_to_waiters() {
        let log = Arc::new(GroupCommitLog::new(
            LogManager::in_memory(),
            Duration::from_millis(5),
            3,
        ));
        // Crash the very first force at its LogForce consult.
        log.set_fault_hook(Some(Arc::new(|ev, _| {
            if matches!(ev, IoEvent::LogForce) {
                FaultVerdict::Crash
            } else {
                FaultVerdict::Proceed
            }
        })));
        let errors = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for t in 0..3 {
                let log = log.clone();
                let errors = errors.clone();
                s.spawn(move || {
                    let lsn = log.append_record(op_body(t));
                    match log.force(lsn) {
                        Err(LogError::InjectedCrash) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("expected InjectedCrash, got {other:?}"),
                    }
                });
            }
        });
        assert_eq!(
            errors.load(Ordering::Relaxed),
            3,
            "every member of the crashed group sees the typed error"
        );
        assert_eq!(log.durable_lsn(), Lsn::NULL, "nothing became durable");
        // Complete the crash: the tail is lost, later commits work again.
        log.set_fault_hook(None);
        log.crash();
        let lsn = log.append_record(op_body(9));
        log.force(lsn).unwrap();
        assert_eq!(log.durable_lsn(), lsn);
    }

    #[test]
    fn force_of_wiped_record_fails_even_after_watermark_passes_it() {
        let log = GroupCommitLog::new(LogManager::in_memory(), Duration::ZERO, 1);
        let l1 = log.append_record(op_body(1));
        log.crash();
        assert!(
            matches!(log.force(l1), Err(LogError::InjectedCrash)),
            "the record is in the lost tail; force must not report durability"
        );
        // Post-crash commits (fresh, higher LSNs) push the durable
        // watermark past the hole — the wiped record must stay failed.
        let l2 = log.append_record(op_body(2));
        assert!(l2 > l1);
        log.force(l2).unwrap();
        assert_eq!(log.durable_lsn(), l2);
        assert!(matches!(log.force(l1), Err(LogError::InjectedCrash)));
        // Forcing everything currently appended is still fine.
        log.force_all().unwrap();
    }

    #[test]
    fn crash_during_gather_does_not_fake_durability() {
        let log = Arc::new(GroupCommitLog::new(
            LogManager::in_memory(),
            Duration::from_millis(50),
            8,
        ));
        let lsn = log.append_record(op_body(1));
        std::thread::scope(|s| {
            let forcer = {
                let log = log.clone();
                s.spawn(move || log.force(lsn))
            };
            std::thread::sleep(Duration::from_millis(10));
            log.crash();
            // Whatever the interleaving (crash before, during, or after
            // the leader's round), Ok must imply the record is durable.
            match forcer.join().unwrap() {
                Ok(()) => assert!(log.durable_lsn() >= lsn, "Ok but record not durable"),
                Err(e) => assert!(matches!(e, LogError::InjectedCrash), "unexpected: {e:?}"),
            }
        });
    }

    #[test]
    fn partial_gate_bounds_durable_prefix() {
        let log = GroupCommitLog::new(LogManager::in_memory(), Duration::ZERO, 1);
        // Gate the third frame of the force: LSNs 1..=2 become durable.
        let seen = AtomicUsize::new(0);
        log.set_fault_hook(Some(Arc::new(move |ev, _| {
            if matches!(ev, IoEvent::LogAppend) && seen.fetch_add(1, Ordering::Relaxed) == 2 {
                FaultVerdict::Crash
            } else {
                FaultVerdict::Proceed
            }
        })));
        for i in 1..=4u8 {
            log.append_record(op_body(i));
        }
        assert!(matches!(log.force_all(), Err(LogError::InjectedCrash)));
        assert_eq!(log.durable_lsn(), Lsn(2));
    }
}
