//! Binary codec for log records.
//!
//! Layout of an encoded record (little-endian):
//!
//! ```text
//! [u64 lsn][u8 tag][tag-specific payload]
//! ```
//!
//! `PageId` encodes as `[u32 partition][u32 index]`; byte strings as
//! `[u32 len][bytes]`; page-id lists as `[u32 count][ids]`.
//!
//! The point of a hand-rolled codec is that **encoded size is the measured
//! quantity** in the logging-economy experiments: a logical `MovRec` record
//! is `9 + 8 + 8 + (4 + |sep|) + 8 ≈ 40` bytes regardless of how many
//! records the split moves, while the page-oriented alternative must carry
//! the moved records' values.

use crate::record::{LogRecord, RecordBody};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lob_ops::{LogicalOp, OpBody, PhysioOp};
use lob_pagestore::{Lsn, PageId};
use std::fmt;

/// Errors from decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Record ended before its payload was complete.
    Truncated,
    /// Unknown record tag.
    BadTag(u8),
    /// A length field exceeded sanity bounds.
    BadLength(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated record"),
            CodecError::BadTag(t) => write!(f, "unknown record tag {t}"),
            CodecError::BadLength(n) => write!(f, "implausible length {n}"),
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_PHYSICAL: u8 = 1;
const TAG_IDENTITY: u8 = 2;
const TAG_SET_BYTES: u8 = 3;
const TAG_INSERT_REC: u8 = 4;
const TAG_DELETE_REC: u8 = 5;
const TAG_RMV_REC: u8 = 6;
const TAG_APP_EXEC: u8 = 7;
const TAG_COPY: u8 = 8;
const TAG_MOV_REC: u8 = 9;
const TAG_APP_READ: u8 = 10;
const TAG_APP_WRITE: u8 = 11;
const TAG_SORT_EXTENT: u8 = 12;
const TAG_MIX: u8 = 13;
const TAG_MERGE_REC: u8 = 14;
const TAG_BACKUP_BEGIN: u8 = 21;
const TAG_BACKUP_END: u8 = 22;

/// Maximum plausible byte-string or list length (64 MiB); guards decoding of
/// corrupt frames.
const MAX_LEN: u64 = 64 << 20;

fn put_page_id(buf: &mut BytesMut, id: PageId) {
    buf.put_u32_le(id.partition.0);
    buf.put_u32_le(id.index);
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn put_ids(buf: &mut BytesMut, ids: &[PageId]) {
    buf.put_u32_le(ids.len() as u32);
    for &id in ids {
        put_page_id(buf, id);
    }
}

/// Encode a record to bytes.
pub fn encode_record(rec: &LogRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(32);
    buf.put_u64_le(rec.lsn.raw());
    match &rec.body {
        RecordBody::Op(op) => encode_op(&mut buf, op),
        RecordBody::BackupBegin {
            backup_id,
            start_lsn,
        } => {
            buf.put_u8(TAG_BACKUP_BEGIN);
            buf.put_u64_le(*backup_id);
            buf.put_u64_le(start_lsn.raw());
        }
        RecordBody::BackupEnd { backup_id } => {
            buf.put_u8(TAG_BACKUP_END);
            buf.put_u64_le(*backup_id);
        }
    }
    buf.freeze()
}

fn encode_op(buf: &mut BytesMut, op: &OpBody) {
    match op {
        OpBody::PhysicalWrite { target, value } => {
            buf.put_u8(TAG_PHYSICAL);
            put_page_id(buf, *target);
            put_bytes(buf, value);
        }
        OpBody::IdentityWrite { target, value } => {
            buf.put_u8(TAG_IDENTITY);
            put_page_id(buf, *target);
            put_bytes(buf, value);
        }
        OpBody::Physio(p) => match p {
            PhysioOp::SetBytes {
                target,
                offset,
                bytes,
            } => {
                buf.put_u8(TAG_SET_BYTES);
                put_page_id(buf, *target);
                buf.put_u32_le(*offset);
                put_bytes(buf, bytes);
            }
            PhysioOp::InsertRec { target, key, val } => {
                buf.put_u8(TAG_INSERT_REC);
                put_page_id(buf, *target);
                put_bytes(buf, key);
                put_bytes(buf, val);
            }
            PhysioOp::DeleteRec { target, key } => {
                buf.put_u8(TAG_DELETE_REC);
                put_page_id(buf, *target);
                put_bytes(buf, key);
            }
            PhysioOp::RmvRec { target, sep } => {
                buf.put_u8(TAG_RMV_REC);
                put_page_id(buf, *target);
                put_bytes(buf, sep);
            }
            PhysioOp::AppExec { app, salt } => {
                buf.put_u8(TAG_APP_EXEC);
                put_page_id(buf, *app);
                buf.put_u64_le(*salt);
            }
        },
        OpBody::Logical(l) => match l {
            LogicalOp::Copy { src, dst } => {
                buf.put_u8(TAG_COPY);
                put_page_id(buf, *src);
                put_page_id(buf, *dst);
            }
            LogicalOp::MovRec { old, sep, new } => {
                buf.put_u8(TAG_MOV_REC);
                put_page_id(buf, *old);
                put_bytes(buf, sep);
                put_page_id(buf, *new);
            }
            LogicalOp::AppRead { src, app } => {
                buf.put_u8(TAG_APP_READ);
                put_page_id(buf, *src);
                put_page_id(buf, *app);
            }
            LogicalOp::AppWrite { app, dst } => {
                buf.put_u8(TAG_APP_WRITE);
                put_page_id(buf, *app);
                put_page_id(buf, *dst);
            }
            LogicalOp::MergeRec { src, dst } => {
                buf.put_u8(TAG_MERGE_REC);
                put_page_id(buf, *src);
                put_page_id(buf, *dst);
            }
            LogicalOp::SortExtent { src, dst } => {
                buf.put_u8(TAG_SORT_EXTENT);
                put_ids(buf, src);
                put_ids(buf, dst);
            }
            LogicalOp::Mix {
                reads,
                writes,
                salt,
            } => {
                buf.put_u8(TAG_MIX);
                put_ids(buf, reads);
                put_ids(buf, writes);
                buf.put_u64_le(*salt);
            }
        },
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    /// When decoding a shared frame, the owning [`Bytes`] — byte-string
    /// payloads become refcounted views into it instead of fresh copies.
    owner: Option<&'a Bytes>,
}

impl<'a> Cursor<'a> {
    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.buf.remaining() < n {
            Err(CodecError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn page_id(&mut self) -> Result<PageId, CodecError> {
        let partition = self.u32()?;
        let index = self.u32()?;
        Ok(PageId::new(partition, index))
    }

    fn bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.u32()? as u64;
        if len > MAX_LEN {
            return Err(CodecError::BadLength(len));
        }
        let len = len as usize;
        let Some(head) = self.buf.get(..len) else {
            return Err(CodecError::Truncated);
        };
        let out = match self.owner {
            Some(frame) => frame.slice_ref(head),
            None => Bytes::copy_from_slice(head),
        };
        self.buf.advance(len);
        Ok(out)
    }

    fn ids(&mut self) -> Result<Vec<PageId>, CodecError> {
        let n = self.u32()? as u64;
        if n > MAX_LEN / 8 {
            return Err(CodecError::BadLength(n));
        }
        (0..n).map(|_| self.page_id()).collect()
    }
}

/// Decode a record from bytes produced by [`encode_record`].
pub fn decode_record(data: &[u8]) -> Result<LogRecord, CodecError> {
    decode(Cursor {
        buf: data,
        owner: None,
    })
}

/// Decode a record from a shared frame, zero-copy: byte-string payloads
/// (physical and identity page values, physiological keys) are refcounted
/// views into `frame` rather than fresh allocations. This is what keeps a
/// full log scan cheap — recovery decodes tens of thousands of frames in
/// one pass, and the payload bytes already live in the frame buffer.
pub fn decode_record_shared(frame: &Bytes) -> Result<LogRecord, CodecError> {
    decode(Cursor {
        buf: frame.as_ref(),
        owner: Some(frame),
    })
}

fn decode(mut c: Cursor<'_>) -> Result<LogRecord, CodecError> {
    let lsn = Lsn(c.u64()?);
    let tag = c.u8()?;
    let body = match tag {
        TAG_PHYSICAL => RecordBody::Op(OpBody::PhysicalWrite {
            target: c.page_id()?,
            value: c.bytes()?,
        }),
        TAG_IDENTITY => RecordBody::Op(OpBody::IdentityWrite {
            target: c.page_id()?,
            value: c.bytes()?,
        }),
        TAG_SET_BYTES => RecordBody::Op(OpBody::Physio(PhysioOp::SetBytes {
            target: c.page_id()?,
            offset: c.u32()?,
            bytes: c.bytes()?,
        })),
        TAG_INSERT_REC => RecordBody::Op(OpBody::Physio(PhysioOp::InsertRec {
            target: c.page_id()?,
            key: c.bytes()?,
            val: c.bytes()?,
        })),
        TAG_DELETE_REC => RecordBody::Op(OpBody::Physio(PhysioOp::DeleteRec {
            target: c.page_id()?,
            key: c.bytes()?,
        })),
        TAG_RMV_REC => RecordBody::Op(OpBody::Physio(PhysioOp::RmvRec {
            target: c.page_id()?,
            sep: c.bytes()?,
        })),
        TAG_APP_EXEC => RecordBody::Op(OpBody::Physio(PhysioOp::AppExec {
            app: c.page_id()?,
            salt: c.u64()?,
        })),
        TAG_COPY => RecordBody::Op(OpBody::Logical(LogicalOp::Copy {
            src: c.page_id()?,
            dst: c.page_id()?,
        })),
        TAG_MOV_REC => RecordBody::Op(OpBody::Logical(LogicalOp::MovRec {
            old: c.page_id()?,
            sep: c.bytes()?,
            new: c.page_id()?,
        })),
        TAG_APP_READ => RecordBody::Op(OpBody::Logical(LogicalOp::AppRead {
            src: c.page_id()?,
            app: c.page_id()?,
        })),
        TAG_APP_WRITE => RecordBody::Op(OpBody::Logical(LogicalOp::AppWrite {
            app: c.page_id()?,
            dst: c.page_id()?,
        })),
        TAG_MERGE_REC => RecordBody::Op(OpBody::Logical(LogicalOp::MergeRec {
            src: c.page_id()?,
            dst: c.page_id()?,
        })),
        TAG_SORT_EXTENT => RecordBody::Op(OpBody::Logical(LogicalOp::SortExtent {
            src: c.ids()?,
            dst: c.ids()?,
        })),
        TAG_MIX => RecordBody::Op(OpBody::Logical(LogicalOp::Mix {
            reads: c.ids()?,
            writes: c.ids()?,
            salt: c.u64()?,
        })),
        TAG_BACKUP_BEGIN => RecordBody::BackupBegin {
            backup_id: c.u64()?,
            start_lsn: Lsn(c.u64()?),
        },
        TAG_BACKUP_END => RecordBody::BackupEnd {
            backup_id: c.u64()?,
        },
        other => return Err(CodecError::BadTag(other)),
    };
    Ok(LogRecord { lsn, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(p: u32, i: u32) -> PageId {
        PageId::new(p, i)
    }

    fn round_trip(rec: LogRecord) {
        let enc = encode_record(&rec);
        let dec = decode_record(&enc).unwrap();
        assert_eq!(dec, rec);
    }

    #[test]
    fn round_trip_every_variant() {
        let cases = vec![
            RecordBody::Op(OpBody::PhysicalWrite {
                target: pid(1, 2),
                value: Bytes::from_static(b"value"),
            }),
            RecordBody::Op(OpBody::IdentityWrite {
                target: pid(0, 0),
                value: Bytes::new(),
            }),
            RecordBody::Op(OpBody::Physio(PhysioOp::SetBytes {
                target: pid(3, 4),
                offset: 17,
                bytes: Bytes::from_static(b"xy"),
            })),
            RecordBody::Op(OpBody::Physio(PhysioOp::InsertRec {
                target: pid(0, 9),
                key: Bytes::from_static(b"k"),
                val: Bytes::from_static(b"v"),
            })),
            RecordBody::Op(OpBody::Physio(PhysioOp::DeleteRec {
                target: pid(0, 9),
                key: Bytes::from_static(b"k"),
            })),
            RecordBody::Op(OpBody::Physio(PhysioOp::RmvRec {
                target: pid(0, 9),
                sep: Bytes::from_static(b"m"),
            })),
            RecordBody::Op(OpBody::Physio(PhysioOp::AppExec {
                app: pid(7, 7),
                salt: u64::MAX,
            })),
            RecordBody::Op(OpBody::Logical(LogicalOp::Copy {
                src: pid(0, 1),
                dst: pid(0, 2),
            })),
            RecordBody::Op(OpBody::Logical(LogicalOp::MovRec {
                old: pid(0, 1),
                sep: Bytes::from_static(b"split"),
                new: pid(0, 2),
            })),
            RecordBody::Op(OpBody::Logical(LogicalOp::AppRead {
                src: pid(0, 1),
                app: pid(1, 0),
            })),
            RecordBody::Op(OpBody::Logical(LogicalOp::AppWrite {
                app: pid(1, 0),
                dst: pid(0, 3),
            })),
            RecordBody::Op(OpBody::Logical(LogicalOp::MergeRec {
                src: pid(0, 2),
                dst: pid(0, 1),
            })),
            RecordBody::Op(OpBody::Logical(LogicalOp::SortExtent {
                src: vec![pid(0, 1), pid(0, 2)],
                dst: vec![pid(0, 3)],
            })),
            RecordBody::Op(OpBody::Logical(LogicalOp::Mix {
                reads: vec![pid(0, 1)],
                writes: vec![pid(0, 2), pid(0, 3)],
                salt: 42,
            })),
            RecordBody::BackupBegin {
                backup_id: 3,
                start_lsn: Lsn(100),
            },
            RecordBody::BackupEnd { backup_id: 3 },
        ];
        for (i, body) in cases.into_iter().enumerate() {
            round_trip(LogRecord::new(Lsn(i as u64 + 1), body));
        }
    }

    #[test]
    fn logical_records_are_small() {
        // The heart of the paper's economy argument: a MovRec record is a
        // few dozen bytes no matter how much data the split moves.
        let rec = LogRecord::new(
            Lsn(1),
            RecordBody::Op(OpBody::Logical(LogicalOp::MovRec {
                old: pid(0, 1),
                sep: Bytes::from_static(b"separator-key"),
                new: pid(0, 2),
            })),
        );
        assert!(encode_record(&rec).len() < 64);

        let phys = LogRecord::new(
            Lsn(2),
            RecordBody::Op(OpBody::PhysicalWrite {
                target: pid(0, 2),
                value: Bytes::from(vec![0u8; 4096]),
            }),
        );
        assert!(encode_record(&phys).len() > 4096);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let rec = LogRecord::new(
            Lsn(1),
            RecordBody::Op(OpBody::Logical(LogicalOp::Copy {
                src: pid(0, 1),
                dst: pid(0, 2),
            })),
        );
        let enc = encode_record(&rec);
        for cut in 0..enc.len() {
            assert!(
                decode_record(&enc[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut enc = encode_record(&LogRecord::new(
            Lsn(1),
            RecordBody::BackupEnd { backup_id: 0 },
        ))
        .to_vec();
        enc[8] = 0xEE;
        assert_eq!(decode_record(&enc), Err(CodecError::BadTag(0xEE)));
    }

    #[test]
    fn implausible_length_is_rejected() {
        // PhysicalWrite with a length field of u32::MAX.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u8(TAG_PHYSICAL);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(u32::MAX);
        assert!(matches!(decode_record(&buf), Err(CodecError::BadLength(_))));
    }
}
