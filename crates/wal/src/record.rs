//! Log records.

use lob_ops::OpBody;
use lob_pagestore::Lsn;

/// The body of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordBody {
    /// A logged operation (the normal case).
    Op(OpBody),
    /// A backup has begun. Recovery never replays this; it documents in the
    /// log where a backup's media-recovery scan starts and lets tools audit
    /// the protocol. `start_lsn` is the media redo scan start point chosen
    /// when the backup began (paper §1.2: "The media recovery log scan start
    /// point can be the crash recovery log scan start point at the time
    /// backup begins").
    BackupBegin {
        /// Identifier of the backup run.
        backup_id: u64,
        /// Media redo scan start point for this backup.
        start_lsn: Lsn,
    },
    /// The backup completed successfully.
    BackupEnd {
        /// Identifier of the backup run.
        backup_id: u64,
    },
}

impl RecordBody {
    /// Short label for statistics (operation label, or the control kind).
    pub fn label(&self) -> &'static str {
        match self {
            RecordBody::Op(op) => op.label(),
            RecordBody::BackupBegin { .. } => "BkBegin",
            RecordBody::BackupEnd { .. } => "BkEnd",
        }
    }

    /// The operation, if this is an operation record.
    pub fn as_op(&self) -> Option<&OpBody> {
        match self {
            RecordBody::Op(op) => Some(op),
            _ => None,
        }
    }
}

/// One log record: an LSN and a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The record's payload.
    pub body: RecordBody,
}

impl LogRecord {
    /// Construct a record.
    pub fn new(lsn: Lsn, body: RecordBody) -> LogRecord {
        LogRecord { lsn, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lob_pagestore::PageId;

    #[test]
    fn labels() {
        let r = LogRecord::new(
            Lsn(1),
            RecordBody::Op(OpBody::PhysicalWrite {
                target: PageId::new(0, 0),
                value: Bytes::new(),
            }),
        );
        assert_eq!(r.body.label(), "W_P");
        assert!(r.body.as_op().is_some());
        let b = RecordBody::BackupBegin {
            backup_id: 1,
            start_lsn: Lsn(5),
        };
        assert_eq!(b.label(), "BkBegin");
        assert!(b.as_op().is_none());
    }
}
