//! Logging statistics.

use std::collections::BTreeMap;

/// Per-label record/byte counters for everything appended to a log.
///
/// The logging-economy experiments (`tab_logging_economy`) compare, e.g.,
/// the bytes attributed to `MovRec` records against the bytes the
/// page-oriented alternative spends on `W_P` records; the Figure-5
/// experiments count `W_IP` (identity write) records, which are exactly the
/// "extra logging" the paper's analysis quantifies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Total records appended.
    pub records: u64,
    /// Total encoded bytes appended.
    pub bytes: u64,
    /// Forces that reached the durable store (had frames to persist).
    pub forces: u64,
    /// Frames persisted across those forces. `forced_frames / forces` is
    /// the group-commit batching factor: 1.0 means every record paid a
    /// full force round-trip, higher means forces were amortized.
    pub forced_frames: u64,
    /// Per-label `(records, bytes)`.
    pub by_label: BTreeMap<&'static str, (u64, u64)>,
}

impl LogStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> LogStats {
        LogStats::default()
    }

    /// Account one appended record.
    pub fn record(&mut self, label: &'static str, bytes: usize) {
        self.records += 1;
        self.bytes += bytes as u64;
        let e = self.by_label.entry(label).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes as u64;
    }

    /// Account one non-empty force persisting `frames` frames.
    pub fn record_force(&mut self, frames: u64) {
        self.forces += 1;
        self.forced_frames += frames;
    }

    /// `(records, bytes)` appended under `label`.
    pub fn label(&self, label: &str) -> (u64, u64) {
        self.by_label.get(label).copied().unwrap_or((0, 0))
    }

    /// Identity-write (`W_IP`) records — the paper's "extra logging".
    pub fn identity_records(&self) -> u64 {
        self.label("W_IP").0
    }

    /// Identity-write (`W_IP`) bytes.
    pub fn identity_bytes(&self) -> u64 {
        self.label("W_IP").1
    }

    /// Difference `self - earlier` per counter (for measuring a phase).
    pub fn since(&self, earlier: &LogStats) -> LogStats {
        let mut by_label = BTreeMap::new();
        for (&label, &(r, b)) in &self.by_label {
            let (er, eb) = earlier.label(label);
            let dr = r.saturating_sub(er);
            let db = b.saturating_sub(eb);
            if dr > 0 || db > 0 {
                by_label.insert(label, (dr, db));
            }
        }
        LogStats {
            records: self.records.saturating_sub(earlier.records),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            forces: self.forces.saturating_sub(earlier.forces),
            forced_frames: self.forced_frames.saturating_sub(earlier.forced_frames),
            by_label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_label() {
        let mut s = LogStats::new();
        s.record("W_P", 100);
        s.record("W_P", 50);
        s.record("MovRec", 30);
        assert_eq!(s.records, 3);
        assert_eq!(s.bytes, 180);
        assert_eq!(s.label("W_P"), (2, 150));
        assert_eq!(s.label("MovRec"), (1, 30));
        assert_eq!(s.label("nothing"), (0, 0));
    }

    #[test]
    fn identity_accessors() {
        let mut s = LogStats::new();
        s.record("W_IP", 64);
        s.record("W_IP", 64);
        assert_eq!(s.identity_records(), 2);
        assert_eq!(s.identity_bytes(), 128);
    }

    #[test]
    fn since_subtracts() {
        let mut a = LogStats::new();
        a.record("W_P", 10);
        let snap = a.clone();
        a.record("W_P", 10);
        a.record("Mix", 5);
        let d = a.since(&snap);
        assert_eq!(d.records, 2);
        assert_eq!(d.bytes, 15);
        assert_eq!(d.label("W_P"), (1, 10));
        assert_eq!(d.label("Mix"), (1, 5));
    }

    #[test]
    fn force_counters_accumulate_and_subtract() {
        let mut a = LogStats::new();
        a.record_force(1);
        let snap = a.clone();
        a.record_force(7);
        a.record_force(3);
        assert_eq!(a.forces, 3);
        assert_eq!(a.forced_frames, 11);
        let d = a.since(&snap);
        assert_eq!(d.forces, 2);
        assert_eq!(d.forced_frames, 10);
    }
}
