//! Durable frame stores backing the log manager.

use bytes::Bytes;
use lob_pagestore::Lsn;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// A durable, append-only store of encoded log frames.
///
/// The [`crate::LogManager`] buffers appended records in a volatile tail and
/// moves them here on `force`; everything in the store survives a crash.
pub trait LogStore: Send {
    /// Durably append one encoded frame with its LSN.
    fn append(&mut self, lsn: Lsn, frame: Bytes) -> std::io::Result<()>;

    /// Durably append a batch of encoded frames in LSN order — the group
    /// commit primitive behind [`crate::LogManager::force`]. Implementors
    /// that can amortize the per-append cost (one write + one flush for
    /// the whole batch, as [`FileLogStore`] does) should override the
    /// default one-at-a-time loop.
    ///
    /// Never panics or early-errors the whole batch away: the result
    /// reports how many frames of the prefix became durable, so the
    /// caller's durable-LSN accounting stays exact under partial failure.
    fn append_batch(&mut self, frames: &[(Lsn, Bytes)]) -> BatchAppend {
        for (i, (lsn, frame)) in frames.iter().enumerate() {
            if let Err(e) = self.append(*lsn, frame.clone()) {
                return BatchAppend {
                    appended: i,
                    error: Some(e),
                };
            }
        }
        BatchAppend {
            appended: frames.len(),
            error: None,
        }
    }

    /// All durable frames with `lsn >= from`, in LSN order.
    fn frames_from(&self, from: Lsn) -> std::io::Result<Vec<(Lsn, Bytes)>>;

    /// Discard frames with `lsn < before` (log truncation).
    fn truncate(&mut self, before: Lsn) -> std::io::Result<()>;

    /// Total bytes of durable frames currently held.
    fn durable_bytes(&self) -> u64;
}

/// Outcome of a [`LogStore::append_batch`]: the durable prefix length and
/// the error (if any) that stopped the batch short.
#[derive(Debug)]
pub struct BatchAppend {
    /// Number of leading frames that became durable.
    pub appended: usize,
    /// The I/O error that ended the batch, if it did not complete.
    pub error: Option<std::io::Error>,
}

/// In-memory log store used by simulations; "durable" means it survives the
/// simulated crash (which only discards the manager's volatile tail).
///
/// Like [`FileLogStore`], every frame carries a checksum recorded at append
/// time, and a scan stops at the first frame whose stored bytes no longer
/// match — the log is only trusted up to its last good prefix, never
/// skipped over (see [`MemLogStore::corrupt_frame`]).
#[derive(Debug, Default)]
pub struct MemLogStore {
    frames: Vec<(Lsn, Bytes)>,
    /// Checksum of each frame as appended (fault injection may corrupt the
    /// stored bytes afterwards without updating this).
    sums: Vec<u64>,
    bytes: u64,
    /// Frames below this index already passed verification on an earlier
    /// scan. Frames are immutable once appended, so re-verifying them per
    /// scan would make every log scan O(whole log) — recovery replays
    /// dozens of scans over a mostly-unchanging prefix. [`Self::corrupt_frame`]
    /// rewinds the watermark so injected damage is still caught.
    verified: std::sync::atomic::AtomicUsize, // lint: atomic(relaxed-counter)
}

impl MemLogStore {
    /// An empty store.
    pub fn new() -> MemLogStore {
        MemLogStore::default()
    }

    /// Number of durable frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the store holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Corrupt the stored bytes of the `nth` frame (0-based, in store
    /// order) by flipping one payload bit, leaving its recorded checksum
    /// untouched. Returns the LSN of the damaged frame, or `None` if the
    /// store has fewer frames. Scans will stop just before it.
    pub fn corrupt_frame(&mut self, nth: usize) -> Option<Lsn> {
        let (lsn, frame) = self.frames.get_mut(nth)?;
        let mut buf = frame.to_vec();
        match buf.get_mut(frame.len() / 2) {
            Some(b) => *b ^= 0x01,
            None => buf.push(0xFF), // even an empty frame can rot
        }
        *frame = Bytes::from(buf);
        // The damaged frame (and everything after it) must re-verify.
        let watermark = self.verified.get_mut();
        *watermark = (*watermark).min(nth);
        Some(*lsn)
    }
}

impl LogStore for MemLogStore {
    fn append(&mut self, lsn: Lsn, frame: Bytes) -> std::io::Result<()> {
        debug_assert!(self.frames.last().map_or(true, |(l, _)| *l < lsn));
        self.bytes += frame.len() as u64;
        self.sums.push(frame_checksum(lsn, &frame));
        self.frames.push((lsn, frame));
        Ok(())
    }

    fn frames_from(&self, from: Lsn) -> std::io::Result<Vec<(Lsn, Bytes)>> {
        use std::sync::atomic::Ordering;
        // Verify from the front: a corrupt interior frame ends the trusted
        // prefix — later frames are unreachable even if intact themselves.
        // Already-verified frames are immutable and skip re-verification.
        let mut good = self.verified.load(Ordering::Relaxed).min(self.frames.len());
        for ((lsn, frame), sum) in self.frames.iter().zip(&self.sums).skip(good) {
            if frame_checksum(*lsn, frame) != *sum {
                break;
            }
            good += 1;
        }
        self.verified.store(good, Ordering::Relaxed);
        let trusted = self.frames.get(..good).unwrap_or_default();
        let start = trusted.partition_point(|(l, _)| *l < from);
        Ok(trusted.get(start..).unwrap_or_default().to_vec())
    }

    fn truncate(&mut self, before: Lsn) -> std::io::Result<()> {
        let cut = self.frames.partition_point(|(l, _)| *l < before);
        for (_, f) in self.frames.drain(..cut) {
            self.bytes -= f.len() as u64;
        }
        self.sums.drain(..cut);
        let watermark = self.verified.get_mut();
        *watermark = watermark.saturating_sub(cut);
        Ok(())
    }

    fn durable_bytes(&self) -> u64 {
        self.bytes
    }
}

/// Checked little-endian `u32` at `off`; `None` past the end.
fn le_u32(buf: &[u8], off: usize) -> Option<u32> {
    match buf.get(off..off.checked_add(4)?) {
        Some(&[a, b, c, d]) => Some(u32::from_le_bytes([a, b, c, d])),
        _ => None,
    }
}

/// Checked little-endian `u64` at `off`; `None` past the end.
fn le_u64(buf: &[u8], off: usize) -> Option<u64> {
    match buf.get(off..off.checked_add(8)?) {
        Some(&[a, b, c, d, e, f, g, h]) => Some(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
        _ => None,
    }
}

/// FNV-1a checksum used by the file framing.
fn frame_checksum(lsn: Lsn, frame: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for b in lsn.raw().to_le_bytes() {
        feed(b);
    }
    for &b in frame {
        feed(b);
    }
    h
}

/// File-backed log store: frames appended to a single file as
/// `[u32 len][u64 checksum][u64 lsn][frame]`. A torn or corrupt tail frame
/// is detected by checksum and dropped on scan.
///
/// Truncation is logical (a low-water LSN filtered on scan); real systems
/// recycle log files, which adds nothing to the protocol being studied.
pub struct FileLogStore {
    file: File,
    low_water: Lsn,
    bytes: u64,
    /// When set, every append/batch ends with `fsync` (`File::sync_data`),
    /// so "durable" means *on the platter*, not merely in the OS page
    /// cache. Off by default: the simulation's drills model durability
    /// through the fault hook, and tests should not pay real fsync
    /// latency. Benches measuring group-commit amortization turn this on —
    /// the per-force fsync is exactly the cost a commit group shares.
    sync_on_flush: bool,
}

impl FileLogStore {
    /// Create (truncating any existing file) at `path`.
    pub fn create(path: &Path) -> std::io::Result<FileLogStore> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        Ok(FileLogStore {
            file,
            low_water: Lsn::NULL,
            bytes: 0,
            sync_on_flush: false,
        })
    }

    /// Open an existing log file for scanning and further appends.
    pub fn open(path: &Path) -> std::io::Result<FileLogStore> {
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(FileLogStore {
            file,
            low_water: Lsn::NULL,
            bytes: buf.len() as u64,
            sync_on_flush: false,
        })
    }

    /// Enable or disable fsync-on-append (see [`FileLogStore`] field docs).
    pub fn set_sync(&mut self, on: bool) {
        self.sync_on_flush = on;
    }

    fn maybe_sync(&self) -> std::io::Result<()> {
        if self.sync_on_flush {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

impl LogStore for FileLogStore {
    fn append(&mut self, lsn: Lsn, frame: Bytes) -> std::io::Result<()> {
        let mut hdr = Vec::with_capacity(20);
        hdr.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        hdr.extend_from_slice(&frame_checksum(lsn, &frame).to_le_bytes());
        hdr.extend_from_slice(&lsn.raw().to_le_bytes());
        self.file.write_all(&hdr)?;
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.maybe_sync()?;
        self.bytes += (hdr.len() + frame.len()) as u64;
        Ok(())
    }

    fn append_batch(&mut self, frames: &[(Lsn, Bytes)]) -> BatchAppend {
        // The group commit: every frame of the force is framed into one
        // arena and hits the file with a single write + flush, instead of
        // a write/write/flush round per frame.
        let total: usize = frames.iter().map(|(_, f)| f.len() + 20).sum();
        let mut arena = Vec::with_capacity(total);
        for (lsn, frame) in frames {
            arena.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            arena.extend_from_slice(&frame_checksum(*lsn, frame).to_le_bytes());
            arena.extend_from_slice(&lsn.raw().to_le_bytes());
            arena.extend_from_slice(frame);
        }
        if let Err(e) = self
            .file
            .write_all(&arena)
            .and_then(|()| self.file.flush())
            .and_then(|()| self.maybe_sync())
        {
            // The batch failed as a unit: no frame of it is trusted
            // durable. A torn arena tail on disk is dropped by the scan's
            // per-frame checksum, exactly like a torn single append.
            return BatchAppend {
                appended: 0,
                error: Some(e),
            };
        }
        self.bytes += arena.len() as u64;
        BatchAppend {
            appended: frames.len(),
            error: None,
        }
    }

    fn frames_from(&self, from: Lsn) -> std::io::Result<Vec<(Lsn, Bytes)>> {
        use std::io::Seek;
        let mut file = self.file.try_clone()?;
        file.seek(std::io::SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut out = Vec::new();
        let mut off = 0usize;
        // A torn header at the tail ends the scan.
        while let (Some(len), Some(ck), Some(raw)) = (
            le_u32(&buf, off),
            le_u64(&buf, off + 4),
            le_u64(&buf, off + 12),
        ) {
            let lsn = Lsn(raw);
            let body_start = off + 20;
            let Some(frame) = buf.get(body_start..body_start + len as usize) else {
                break; // torn tail
            };
            if frame_checksum(lsn, frame) != ck {
                break; // corrupt tail
            }
            if lsn >= from && lsn >= self.low_water {
                out.push((lsn, Bytes::copy_from_slice(frame)));
            }
            off = body_start + len as usize;
        }
        Ok(out)
    }

    fn truncate(&mut self, before: Lsn) -> std::io::Result<()> {
        self.low_water = self.low_water.max(before);
        Ok(())
    }

    fn durable_bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_append_scan_truncate() {
        let mut s = MemLogStore::new();
        for i in 1..=5u64 {
            s.append(Lsn(i), Bytes::from(vec![i as u8; 4])).unwrap();
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.durable_bytes(), 20);
        let from3 = s.frames_from(Lsn(3)).unwrap();
        assert_eq!(from3.len(), 3);
        assert_eq!(from3[0].0, Lsn(3));
        s.truncate(Lsn(4)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.durable_bytes(), 8);
        assert_eq!(s.frames_from(Lsn::NULL).unwrap()[0].0, Lsn(4));
    }

    #[test]
    fn file_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("lob-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log1.wal");
        {
            let mut s = FileLogStore::create(&path).unwrap();
            s.append(Lsn(1), Bytes::from_static(b"one")).unwrap();
            s.append(Lsn(2), Bytes::from_static(b"two")).unwrap();
            let all = s.frames_from(Lsn::NULL).unwrap();
            assert_eq!(all.len(), 2);
            assert_eq!(&all[1].1[..], b"two");
        }
        // Reopen (simulating a restart) and scan again.
        let s = FileLogStore::open(&path).unwrap();
        let all = s.frames_from(Lsn(2)).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, Lsn(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_detects_torn_tail() {
        let dir = std::env::temp_dir().join(format!("lob-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log2.wal");
        {
            let mut s = FileLogStore::create(&path).unwrap();
            s.append(Lsn(1), Bytes::from_static(b"good")).unwrap();
            s.append(Lsn(2), Bytes::from_static(b"willtear")).unwrap();
        }
        // Tear the last frame by chopping two bytes off the file.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        let s = FileLogStore::open(&path).unwrap();
        let all = s.frames_from(Lsn::NULL).unwrap();
        assert_eq!(all.len(), 1, "torn tail frame dropped");
        assert_eq!(all[0].0, Lsn(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_detects_corrupt_tail() {
        let dir = std::env::temp_dir().join(format!("lob-wal-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log3.wal");
        {
            let mut s = FileLogStore::create(&path).unwrap();
            s.append(Lsn(1), Bytes::from_static(b"good")).unwrap();
            s.append(Lsn(2), Bytes::from_static(b"flip")).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF; // flip a payload byte of the last frame
        std::fs::write(&path, &data).unwrap();
        let s = FileLogStore::open(&path).unwrap();
        assert_eq!(s.frames_from(Lsn::NULL).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_corrupt_frame_stops_scan_at_prefix() {
        let mut s = MemLogStore::new();
        for i in 1..=5u64 {
            s.append(Lsn(i), Bytes::from(vec![i as u8; 4])).unwrap();
        }
        // Corrupt frame 3 (LSN 3) mid-stream; frames 4 and 5 stay intact.
        assert_eq!(s.corrupt_frame(2), Some(Lsn(3)));
        let all = s.frames_from(Lsn::NULL).unwrap();
        // The scan must stop at the last good prefix — returning frames
        // 4 and 5 while silently skipping 3 would let recovery replay a
        // history with a hole in it.
        assert_eq!(all.len(), 2);
        assert_eq!(all.last().unwrap().0, Lsn(2));
        // The stop applies regardless of the scan start.
        assert!(s.frames_from(Lsn(4)).unwrap().is_empty());
    }

    #[test]
    fn file_store_interior_corruption_stops_scan_at_prefix() {
        // Pins the mid-stream (NOT tail) corruption behavior: a checksum-bad
        // interior frame ends the trusted log prefix even though frames
        // after it are individually valid. Recovery must replay `1..=2`,
        // never `1, 2, 4, 5`.
        let dir = std::env::temp_dir().join(format!("lob-wal-midcorrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log5.wal");
        let mut offsets = Vec::new(); // byte offset of each frame's payload
        {
            let mut s = FileLogStore::create(&path).unwrap();
            let mut off = 0u64;
            for i in 1..=5u64 {
                offsets.push(off + 20); // past [len][ck][lsn] header
                s.append(Lsn(i), Bytes::from(vec![i as u8; 8])).unwrap();
                off += 20 + 8;
            }
        }
        let mut data = std::fs::read(&path).unwrap();
        data[offsets[2] as usize] ^= 0x01; // flip a payload bit of frame 3
        std::fs::write(&path, &data).unwrap();
        let s = FileLogStore::open(&path).unwrap();
        let all = s.frames_from(Lsn::NULL).unwrap();
        assert_eq!(all.len(), 2, "scan stops before the corrupt frame");
        assert_eq!(all.last().unwrap().0, Lsn(2));
        assert!(s.frames_from(Lsn(4)).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_store_append_batch_matches_loop() {
        let mut s = MemLogStore::new();
        s.append(Lsn(1), Bytes::from_static(b"one")).unwrap();
        let batch: Vec<(Lsn, Bytes)> = (2..=4u64)
            .map(|i| (Lsn(i), Bytes::from(vec![i as u8; 4])))
            .collect();
        let r = s.append_batch(&batch);
        assert_eq!(r.appended, 3);
        assert!(r.error.is_none());
        let all = s.frames_from(Lsn::NULL).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all.last().unwrap().0, Lsn(4));
        assert_eq!(s.durable_bytes(), 3 + 12);
    }

    #[test]
    fn file_store_append_batch_interops_with_single_appends() {
        let dir = std::env::temp_dir().join(format!("lob-wal-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log6.wal");
        {
            let mut s = FileLogStore::create(&path).unwrap();
            s.append(Lsn(1), Bytes::from_static(b"solo")).unwrap();
            let batch = vec![
                (Lsn(2), Bytes::from_static(b"grouped")),
                (Lsn(3), Bytes::from_static(b"together")),
            ];
            let r = s.append_batch(&batch);
            assert_eq!(r.appended, 2);
            assert!(r.error.is_none());
            s.append(Lsn(4), Bytes::from_static(b"after")).unwrap();
        }
        // A restart scan sees one seamless frame sequence: the arena
        // framing is byte-identical to per-frame appends.
        let s = FileLogStore::open(&path).unwrap();
        let all = s.frames_from(Lsn::NULL).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(&all[1].1[..], b"grouped");
        assert_eq!(&all[3].1[..], b"after");
        // An empty batch is a no-op.
        let mut s = FileLogStore::open(&path).unwrap();
        let before = s.durable_bytes();
        let r = s.append_batch(&[]);
        assert_eq!(r.appended, 0);
        assert!(r.error.is_none());
        assert_eq!(s.durable_bytes(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_logical_truncation() {
        let dir = std::env::temp_dir().join(format!("lob-wal-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log4.wal");
        let mut s = FileLogStore::create(&path).unwrap();
        for i in 1..=4u64 {
            s.append(Lsn(i), Bytes::from_static(b"x")).unwrap();
        }
        s.truncate(Lsn(3)).unwrap();
        let all = s.frames_from(Lsn::NULL).unwrap();
        assert_eq!(all.first().unwrap().0, Lsn(3));
        std::fs::remove_dir_all(&dir).ok();
    }
}
