//! # lob-wal — the write-ahead / media recovery log
//!
//! The log is the second half of media recovery (paper §1): the backup `B`
//! captures a fuzzy state of the stable database, and the **media recovery
//! log** rolls `B` forward to the current state. This crate provides:
//!
//! * [`LogRecord`] / [`RecordBody`] — one record per logged operation, plus
//!   backup begin/end control records;
//! * [`codec`] — a compact hand-rolled binary encoding. Log *volume* is the
//!   paper's central economy argument ("logging an identifier ... is a great
//!   saving", §1.1), so the encoding is byte-exact and measured, not
//!   serde-generic;
//! * [`LogManager`] — append/force/scan/truncate with the semantics the
//!   protocol needs:
//!   * appended records are **volatile** until [`LogManager::force`] — a
//!     crash ([`LogManager::crash`]) discards the unforced tail, which is
//!     how tests verify the engine obeys the WAL protocol;
//!   * a **media barrier** pins records an active or completed backup still
//!     needs: truncation never discards past the barrier (the media
//!     recovery log "must include all operations needed to bring objects
//!     up-to-date", §1.2);
//! * [`LogStats`] — per-operation-label record and byte counts, the raw data
//!   behind the `tab_logging_economy` and `tab_steps_sweep` experiments.
//!
//! The crate is storage-agnostic: [`MemLogStore`] keeps frames in memory
//! (used by simulations), [`FileLogStore`] appends frames to a real file
//! with checksummed framing and torn-tail detection.

pub mod codec;
pub mod group;
pub mod manager;
pub mod record;
pub mod stats;
pub mod store;

pub use codec::{decode_record, decode_record_shared, encode_record, CodecError};
pub use group::GroupCommitLog;
pub use manager::{LogError, LogManager};
pub use record::{LogRecord, RecordBody};
pub use stats::LogStats;
pub use store::{BatchAppend, FileLogStore, LogStore, MemLogStore};
