//! The log manager: append / force / scan / truncate.

use crate::codec::{decode_record_shared, encode_record, CodecError};
use crate::record::{LogRecord, RecordBody};
use crate::stats::LogStats;
use crate::store::{LogStore, MemLogStore};
use bytes::Bytes;
use lob_pagestore::fault::{is_injected_crash_io_error, FaultHook, FaultVerdict, IoEvent};
use lob_pagestore::Lsn;
use std::fmt;

/// Errors from log operations.
#[derive(Debug)]
pub enum LogError {
    /// Underlying store I/O failure.
    Io(std::io::Error),
    /// A durable frame failed to decode (corruption past the tail — should
    /// never happen; torn tails are handled by the store).
    Codec(CodecError),
    /// Attempted to scan from an LSN that has been truncated away.
    Truncated {
        /// Requested scan start.
        requested: Lsn,
        /// Current truncation point.
        truncation: Lsn,
    },
    /// A transient I/O error failed this log scan attempt only; the durable
    /// frames are intact and a retry may succeed.
    Transient,
    /// The fault hook simulated a process crash during a log force or
    /// truncation; frames not yet persisted stay in the volatile tail (lost
    /// at crash), and an interrupted truncation leaves the point unmoved.
    InjectedCrash,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "log I/O error: {e}"),
            LogError::Codec(e) => write!(f, "log decode error: {e}"),
            LogError::Truncated {
                requested,
                truncation,
            } => write!(f, "scan from {requested} but log truncated to {truncation}"),
            LogError::Transient => write!(f, "transient I/O error reading the log"),
            LogError::InjectedCrash => write!(f, "injected crash during log force (fault hook)"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

impl From<CodecError> for LogError {
    fn from(e: CodecError) -> Self {
        LogError::Codec(e)
    }
}

/// The log manager.
///
/// Appends are **volatile** until forced: [`LogManager::crash`] discards the
/// unforced tail, which is how the test harness verifies that the engine
/// obeys the write-ahead-log protocol (force the log up to an operation's
/// LSN before flushing any page that operation wrote).
///
/// Truncation models recovery checkpointing: records below the truncation
/// point are discarded. A **media barrier** (paper §3.2: identity-write
/// records "permit the truncation of the log in the same way that flushing
/// does" — but records an active backup's roll-forward will need must be
/// retained) caps how far truncation may advance.
pub struct LogManager {
    store: Box<dyn LogStore>,
    tail: Vec<(Lsn, Bytes)>,
    next: Lsn,
    durable: Lsn,
    truncation: Lsn,
    media_barrier: Option<Lsn>,
    stats: LogStats,
    /// Optional fault hook: consulted once per force that has frames to
    /// persist ([`IoEvent::LogForce`]), once per frame appended to the
    /// durable store ([`IoEvent::LogAppend`]), and once per effective
    /// truncation-point advance ([`IoEvent::LogTruncate`]).
    hook: Option<FaultHook>,
}

impl LogManager {
    /// A log manager over the given durable store.
    pub fn new(store: Box<dyn LogStore>) -> LogManager {
        LogManager {
            store,
            tail: Vec::new(),
            next: Lsn::FIRST,
            durable: Lsn::NULL,
            truncation: Lsn::NULL,
            media_barrier: None,
            stats: LogStats::new(),
            hook: None,
        }
    }

    /// A log manager over a fresh in-memory store.
    pub fn in_memory() -> LogManager {
        LogManager::new(Box::new(MemLogStore::new()))
    }

    /// A log manager resuming over an existing durable store (e.g. a log
    /// file surviving a process restart): the durable LSN and the LSN
    /// counter are recovered from the store's frames.
    pub fn from_existing(store: Box<dyn LogStore>) -> Result<LogManager, LogError> {
        let frames = store.frames_from(Lsn::NULL)?;
        let durable = frames.last().map(|(l, _)| *l).unwrap_or(Lsn::NULL);
        Ok(LogManager {
            store,
            tail: Vec::new(),
            next: durable.next().max(Lsn::FIRST),
            durable,
            truncation: Lsn::NULL,
            media_barrier: None,
            stats: LogStats::new(),
            hook: None,
        })
    }

    /// Append a record; returns its LSN. The record is volatile until
    /// [`force`](Self::force)d.
    pub fn append(&mut self, body: RecordBody) -> Lsn {
        let lsn = self.next;
        self.next = self.next.next();
        let rec = LogRecord::new(lsn, body);
        let frame = encode_record(&rec);
        self.stats.record(rec.body.label(), frame.len());
        self.tail.push((lsn, frame));
        lsn
    }

    /// Install (or clear) the fault hook.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.hook = hook;
    }

    fn consult(&self, ev: IoEvent) -> FaultVerdict {
        match &self.hook {
            Some(h) => h(ev, None),
            None => FaultVerdict::Proceed,
        }
    }

    /// Durably persist all appended records with `lsn <= upto` — as a
    /// **group force**: every frame that passes the fault gate is handed to
    /// the store in one [`LogStore::append_batch`] call, so a file-backed
    /// store pays a single write + flush for the whole force instead of a
    /// round per frame.
    ///
    /// With a fault hook installed, the force may crash before any frame is
    /// persisted (verdict at [`IoEvent::LogForce`]) or between frames
    /// (verdict at [`IoEvent::LogAppend`], consulted once per frame in LSN
    /// order before the batch is issued). Frames gated before the crash
    /// point become durable; the rest remain in the volatile tail and are
    /// lost when the crash is completed with [`LogManager::crash`] —
    /// exactly the "lost unforced tail" a real power failure produces.
    pub fn force(&mut self, upto: Lsn) -> Result<(), LogError> {
        // Ordering witness: every force generates `LogForce`, including an
        // empty-tail force — the caller's durability point is established
        // either way. The single probe here covers every engine force
        // site (`force_all` funnels through this method).
        lob_pagestore::witness::io_order("LogForce");
        let n = self.tail.partition_point(|(l, _)| *l <= upto);
        if n == 0 {
            return Ok(());
        }
        match self.consult(IoEvent::LogForce) {
            FaultVerdict::Crash | FaultVerdict::TornWrite => return Err(LogError::InjectedCrash),
            _ => {}
        }
        // Gate each frame through the hook first; the passing prefix is
        // the batch. A torn frame append never becomes durable (the
        // store's frame checksum rejects it on scan), so gating a frame
        // out is equivalent to it — and everything after it — simply not
        // reaching the disk.
        let mut gate = 0usize;
        let mut outcome = Ok(());
        while gate < n {
            match self.consult(IoEvent::LogAppend) {
                FaultVerdict::Crash | FaultVerdict::TornWrite => {
                    outcome = Err(LogError::InjectedCrash);
                    break;
                }
                _ => {}
            }
            gate += 1;
        }
        let batch = self
            .store
            .append_batch(self.tail.get(..gate).unwrap_or_default());
        let appended = batch.appended.min(gate);
        if let Some((lsn, _)) = appended.checked_sub(1).and_then(|i| self.tail.get(i)) {
            self.durable = *lsn;
        }
        if let Some(e) = batch.error {
            // A store-level failure outranks a gate crash: it is the error
            // that actually bounded the durable prefix.
            outcome = Err(if is_injected_crash_io_error(&e) {
                LogError::InjectedCrash
            } else {
                LogError::Io(e)
            });
        }
        self.stats.record_force(appended as u64);
        self.tail.drain(..appended);
        outcome
    }

    /// Durably persist every appended record.
    pub fn force_all(&mut self) -> Result<(), LogError> {
        self.force(Lsn::MAX)
    }

    /// LSN of the last durable record.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable
    }

    /// LSN the next appended record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next
    }

    /// Simulate a crash: the unforced tail is lost. The LSN counter is
    /// *not* rewound — recovery continues with fresh LSNs above every LSN
    /// ever issued, preserving LSN monotonicity across the crash.
    pub fn crash(&mut self) {
        self.tail.clear();
    }

    /// Number of appended-but-unforced records.
    pub fn unforced(&self) -> usize {
        self.tail.len()
    }

    /// All records with `lsn >= from` (durable first, then the volatile
    /// tail), decoded.
    ///
    /// With a fault hook installed, [`IoEvent::LogRead`] is consulted once
    /// per scan before any frame is decoded: a crash verdict kills the
    /// process at this read, a transient verdict fails the attempt only
    /// (durable frames intact — a retry succeeds). Damage verdicts are
    /// meaningless here (frame corruption is injected at the store level,
    /// see `MemLogStore::corrupt_frame`) and proceed.
    pub fn scan_from(&self, from: Lsn) -> Result<Vec<LogRecord>, LogError> {
        if from < self.truncation {
            return Err(LogError::Truncated {
                requested: from,
                truncation: self.truncation,
            });
        }
        match self.consult(IoEvent::LogRead) {
            FaultVerdict::Crash => return Err(LogError::InjectedCrash),
            FaultVerdict::TransientRead => return Err(LogError::Transient),
            _ => {}
        }
        let frames = self.store.frames_from(from)?;
        let mut out = Vec::with_capacity(frames.len() + self.tail.len());
        for (_, frame) in &frames {
            // Zero-copy decode: payload bytes stay in the frame buffer.
            out.push(decode_record_shared(frame)?);
        }
        for (lsn, frame) in &self.tail {
            if *lsn >= from {
                out.push(decode_record_shared(frame)?);
            }
        }
        Ok(out)
    }

    /// Pin the log from `lsn` onward for media recovery; `None` releases the
    /// barrier (no backup exists whose roll-forward could need old records).
    pub fn set_media_barrier(&mut self, barrier: Option<Lsn>) {
        self.media_barrier = barrier;
    }

    /// Current media barrier.
    pub fn media_barrier(&self) -> Option<Lsn> {
        self.media_barrier
    }

    /// Advance the truncation point toward `before`, clamped so that records
    /// at or above the media barrier are retained. Returns the effective new
    /// truncation point.
    ///
    /// With a fault hook installed, [`IoEvent::LogTruncate`] is consulted
    /// before the point moves: a crash verdict leaves the truncation point
    /// *and* the store untouched, so a restart simply re-truncates — log
    /// truncation is a write-side I/O like any other (this site was the
    /// coverage gap `lob-lint`'s fault-hook pass was built to catch).
    pub fn truncate(&mut self, before: Lsn) -> Result<Lsn, LogError> {
        let effective = match self.media_barrier {
            Some(b) => before.min(b),
            None => before,
        };
        if effective > self.truncation {
            match self.consult(IoEvent::LogTruncate) {
                FaultVerdict::Crash | FaultVerdict::TornWrite => {
                    return Err(LogError::InjectedCrash)
                }
                _ => {}
            }
            self.truncation = effective;
            self.store.truncate(effective)?;
        }
        Ok(self.truncation)
    }

    /// Current truncation point (records below it are gone).
    pub fn truncation(&self) -> Lsn {
        self.truncation
    }

    /// Logging statistics (includes volatile appends).
    pub fn stats(&self) -> &LogStats {
        &self.stats
    }

    /// Bytes held by the durable store.
    pub fn durable_bytes(&self) -> u64 {
        self.store.durable_bytes()
    }
}

impl fmt::Debug for LogManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LogManager{{next={:?}, durable={:?}, trunc={:?}, tail={}}}",
            self.next,
            self.durable,
            self.truncation,
            self.tail.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lob_ops::OpBody;
    use lob_pagestore::PageId;

    fn phys(i: u32) -> RecordBody {
        RecordBody::Op(OpBody::PhysicalWrite {
            target: PageId::new(0, i),
            value: Bytes::from_static(b"v"),
        })
    }

    #[test]
    fn lsns_are_sequential() {
        let mut log = LogManager::in_memory();
        assert_eq!(log.append(phys(0)), Lsn(1));
        assert_eq!(log.append(phys(1)), Lsn(2));
        assert_eq!(log.next_lsn(), Lsn(3));
    }

    #[test]
    fn crash_loses_unforced_tail_only() {
        let mut log = LogManager::in_memory();
        log.append(phys(0));
        log.append(phys(1));
        log.force(Lsn(1)).unwrap();
        log.append(phys(2));
        assert_eq!(log.unforced(), 2);
        log.crash();
        let recs = log.scan_from(Lsn::NULL).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].lsn, Lsn(1));
        assert_eq!(log.durable_lsn(), Lsn(1));
        // LSNs continue above everything ever issued.
        assert_eq!(log.append(phys(3)), Lsn(4));
    }

    #[test]
    fn scan_sees_volatile_tail_before_crash() {
        let mut log = LogManager::in_memory();
        log.append(phys(0));
        log.append(phys(1));
        assert_eq!(log.scan_from(Lsn::NULL).unwrap().len(), 2);
        assert_eq!(log.scan_from(Lsn(2)).unwrap().len(), 1);
    }

    #[test]
    fn force_all_then_scan() {
        let mut log = LogManager::in_memory();
        for i in 0..5 {
            log.append(phys(i));
        }
        log.force_all().unwrap();
        assert_eq!(log.durable_lsn(), Lsn(5));
        assert_eq!(log.unforced(), 0);
        assert_eq!(log.scan_from(Lsn(3)).unwrap().len(), 3);
    }

    #[test]
    fn truncation_respects_media_barrier() {
        let mut log = LogManager::in_memory();
        for i in 0..6 {
            log.append(phys(i));
        }
        log.force_all().unwrap();
        log.set_media_barrier(Some(Lsn(3)));
        assert_eq!(log.truncate(Lsn(5)).unwrap(), Lsn(3));
        // Records 3.. survive.
        assert_eq!(log.scan_from(Lsn(3)).unwrap().len(), 4);
        // Releasing the barrier lets truncation proceed.
        log.set_media_barrier(None);
        assert_eq!(log.truncate(Lsn(5)).unwrap(), Lsn(5));
        assert_eq!(log.scan_from(Lsn(5)).unwrap().len(), 2);
    }

    #[test]
    fn scan_below_truncation_errors() {
        let mut log = LogManager::in_memory();
        for i in 0..3 {
            log.append(phys(i));
        }
        log.force_all().unwrap();
        log.truncate(Lsn(2)).unwrap();
        assert!(matches!(
            log.scan_from(Lsn(1)),
            Err(LogError::Truncated { .. })
        ));
        assert!(log.scan_from(Lsn(2)).is_ok());
    }

    #[test]
    fn truncation_never_regresses() {
        let mut log = LogManager::in_memory();
        for i in 0..4 {
            log.append(phys(i));
        }
        log.force_all().unwrap();
        log.truncate(Lsn(3)).unwrap();
        assert_eq!(log.truncate(Lsn(2)).unwrap(), Lsn(3));
    }

    #[test]
    fn injected_force_crash_loses_exactly_the_unpersisted_tail() {
        use lob_pagestore::fault::{FaultVerdict, IoEvent};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let mut log = LogManager::in_memory();
        for i in 0..4 {
            log.append(phys(i));
        }
        // Crash at the third LogAppend: two frames become durable.
        let appends = AtomicU64::new(0);
        log.set_fault_hook(Some(Arc::new(move |ev, _| {
            if ev == IoEvent::LogAppend && appends.fetch_add(1, Ordering::Relaxed) == 2 {
                FaultVerdict::Crash
            } else {
                FaultVerdict::Proceed
            }
        })));
        assert!(matches!(log.force_all(), Err(LogError::InjectedCrash)));
        log.set_fault_hook(None);
        assert_eq!(log.durable_lsn(), Lsn(2));
        assert_eq!(log.unforced(), 2);
        log.crash();
        let recs = log.scan_from(Lsn::NULL).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs.last().unwrap().lsn, Lsn(2));
    }

    #[test]
    fn injected_crash_at_force_event_persists_nothing() {
        use lob_pagestore::fault::{FaultVerdict, IoEvent};
        use std::sync::Arc;

        let mut log = LogManager::in_memory();
        log.append(phys(0));
        log.set_fault_hook(Some(Arc::new(|ev, _| {
            if ev == IoEvent::LogForce {
                FaultVerdict::Crash
            } else {
                FaultVerdict::Proceed
            }
        })));
        assert!(matches!(log.force_all(), Err(LogError::InjectedCrash)));
        assert_eq!(log.durable_lsn(), Lsn::NULL);
        assert_eq!(log.unforced(), 1);
        // An empty force doesn't even reach the hook.
        let mut empty = LogManager::in_memory();
        empty.set_fault_hook(Some(Arc::new(|_, _| FaultVerdict::Crash)));
        assert!(empty.force_all().is_ok());
    }

    #[test]
    fn scan_consults_log_read_event() {
        use lob_pagestore::fault::{FaultVerdict, IoEvent};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let mut log = LogManager::in_memory();
        log.append(phys(0));
        log.force_all().unwrap();
        // First scan draws a transient error; the retry succeeds with the
        // frames intact.
        let fired = AtomicBool::new(false);
        log.set_fault_hook(Some(Arc::new(move |ev, _| {
            if ev == IoEvent::LogRead && !fired.swap(true, Ordering::Relaxed) {
                FaultVerdict::TransientRead
            } else {
                FaultVerdict::Proceed
            }
        })));
        assert!(matches!(log.scan_from(Lsn::NULL), Err(LogError::Transient)));
        assert_eq!(log.scan_from(Lsn::NULL).unwrap().len(), 1);
        // A crash verdict at the scan unwinds as an injected crash.
        log.set_fault_hook(Some(Arc::new(|ev, _| {
            if ev == IoEvent::LogRead {
                FaultVerdict::Crash
            } else {
                FaultVerdict::Proceed
            }
        })));
        assert!(matches!(
            log.scan_from(Lsn::NULL),
            Err(LogError::InjectedCrash)
        ));
    }

    #[test]
    fn group_force_batches_whole_tail() {
        let mut log = LogManager::in_memory();
        for i in 0..5 {
            log.append(phys(i));
        }
        log.force_all().unwrap();
        assert_eq!(log.stats().forces, 1);
        assert_eq!(log.stats().forced_frames, 5, "one force, five frames");
        // Per-record forces pay a force round-trip each.
        for i in 5..8 {
            log.append(phys(i));
            log.force_all().unwrap();
        }
        assert_eq!(log.stats().forces, 4);
        assert_eq!(log.stats().forced_frames, 8);
        // Empty forces don't count.
        log.force_all().unwrap();
        assert_eq!(log.stats().forces, 4);
        assert_eq!(log.scan_from(Lsn::NULL).unwrap().len(), 8);
    }

    #[test]
    fn stats_track_labels() {
        let mut log = LogManager::in_memory();
        log.append(phys(0));
        log.append(RecordBody::BackupBegin {
            backup_id: 1,
            start_lsn: Lsn(1),
        });
        assert_eq!(log.stats().records, 2);
        assert_eq!(log.stats().label("W_P").0, 1);
        assert_eq!(log.stats().label("BkBegin").0, 1);
    }
}
