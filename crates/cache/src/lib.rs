//! # lob-cache — the cache manager's volatile state
//!
//! The cache manager divides volatile state into a *dirty* part (cached
//! versions not yet in the stable database `S`) and a *clean* part (paper
//! §2.4). This crate provides that state and its safety rails:
//!
//! * frames with per-page **dirty** flags and **rLSN** (recovery LSN — the
//!   log position from which this page's redo must start; the minimum over
//!   dirty pages bounds crash-recovery log truncation);
//! * [`CacheManager::write_out`] — the only path to `S` — which *enforces
//!   the write-ahead-log protocol*: writing a page whose pageLSN exceeds the
//!   durable LSN is rejected, so a buggy engine fails loudly instead of
//!   producing an unrecoverable stable database;
//! * a clean-only LRU eviction policy (dirty pages must be flushed through
//!   the write-graph machinery first; evicting them silently would lose the
//!   flush-order bookkeeping).
//!
//! Which pages *may* be flushed, and in what order, is the write graph's
//! business (`lob-recovery`); whether a flush additionally requires Iw/oF
//! logging is the backup protocol's business (`lob-backup`). The cache knows
//! nothing about either — the engine (`lob-core`) wires the three together.

use bytes::Bytes;
use lob_ops::{OpError, PageReader};
use lob_pagestore::{FaultHook, FaultVerdict, IoEvent, Lsn, Page, PageId, StableStore, StoreError};
use std::collections::HashMap;
use std::fmt;

pub mod shard;
pub use shard::ShardedCache;

/// Errors from cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// Underlying stable-store error.
    Store(StoreError),
    /// The page to write out is not resident.
    NotResident(PageId),
    /// Write-ahead-log protocol violation: a page was about to reach `S`
    /// before the log record that produced its value was durable.
    WalViolation {
        /// The offending page.
        page: PageId,
        /// The page's pageLSN.
        page_lsn: Lsn,
        /// The log's durable LSN at the attempted write.
        durable: Lsn,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Store(e) => write!(f, "store error: {e}"),
            CacheError::NotResident(p) => write!(f, "page {p} not resident"),
            CacheError::WalViolation {
                page,
                page_lsn,
                durable,
            } => write!(
                f,
                "WAL violation: flushing {page} with pageLSN {page_lsn} but durable LSN is {durable}"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<StoreError> for CacheError {
    fn from(e: StoreError) -> Self {
        CacheError::Store(e)
    }
}

#[derive(Debug, Clone)]
struct Frame {
    page: Page,
    dirty: bool,
    /// If dirty: LSN of the first unflushed operation reflected in this
    /// frame. Crash-recovery replay for this page must start at or before
    /// this LSN.
    rlsn: Lsn,
    last_used: u64,
}

/// Counters describing cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits on reads.
    pub hits: u64,
    /// Cache misses (page fetched from `S`).
    pub misses: u64,
    /// Pages written to `S` through [`CacheManager::write_out`].
    pub pages_flushed: u64,
    /// Clean pages evicted for capacity.
    pub evictions: u64,
}

/// The cache manager.
pub struct CacheManager {
    frames: HashMap<PageId, Frame>,
    /// Maximum resident pages; `None` = unbounded (simulation default).
    capacity: Option<usize>,
    tick: u64,
    stats: CacheStats,
    /// Optional fault hook consulted ([`IoEvent::PageFlush`]) before each
    /// page write-out, modeling a crash after the flush decision but
    /// before the store write begins.
    hook: Option<FaultHook>,
}

impl CacheManager {
    /// An unbounded cache.
    pub fn new() -> CacheManager {
        CacheManager::with_capacity(None)
    }

    /// A cache holding at most `capacity` pages (clean pages are evicted
    /// LRU-first when exceeded; dirty pages are never evicted silently).
    pub fn with_capacity(capacity: Option<usize>) -> CacheManager {
        CacheManager {
            frames: HashMap::new(),
            capacity,
            tick: 0,
            stats: CacheStats::default(),
            hook: None,
        }
    }

    /// Install (or clear) the fault hook.
    pub fn set_fault_hook(&mut self, hook: Option<FaultHook>) {
        self.hook = hook;
    }

    fn touch(&mut self, id: PageId) {
        self.tick += 1;
        if let Some(f) = self.frames.get_mut(&id) {
            f.last_used = self.tick;
        }
    }

    /// Current value of a page, fetching from `S` on a miss.
    pub fn get(&mut self, id: PageId, store: &StableStore) -> Result<Page, CacheError> {
        if self.frames.contains_key(&id) {
            self.stats.hits += 1;
            self.touch(id);
            return Ok(self.frames[&id].page.clone());
        }
        self.stats.misses += 1;
        let page = store.read_page(id)?;
        self.tick += 1;
        self.frames.insert(
            id,
            Frame {
                page: page.clone(),
                dirty: false,
                rlsn: Lsn::NULL,
                last_used: self.tick,
            },
        );
        self.shrink_to_capacity();
        Ok(page)
    }

    /// The pageLSN of a page (fetching on miss).
    pub fn page_lsn(&mut self, id: PageId, store: &StableStore) -> Result<Lsn, CacheError> {
        Ok(self.get(id, store)?.lsn())
    }

    /// Install an operation's result for one page: the frame becomes dirty
    /// with the new value and pageLSN; the rLSN is pinned at the first
    /// dirtying operation.
    pub fn put_dirty(&mut self, id: PageId, page: Page) {
        self.tick += 1;
        let tick = self.tick;
        match self.frames.get_mut(&id) {
            Some(f) => {
                if !f.dirty {
                    f.rlsn = page.lsn();
                }
                f.page = page;
                f.dirty = true;
                f.last_used = tick;
            }
            None => {
                let rlsn = page.lsn();
                self.frames.insert(
                    id,
                    Frame {
                        page,
                        dirty: true,
                        rlsn,
                        last_used: tick,
                    },
                );
            }
        }
        self.shrink_to_capacity();
    }

    /// Whether a page is resident and dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.frames.get(&id).is_some_and(|f| f.dirty)
    }

    /// Whether a page is resident at all.
    pub fn is_resident(&self, id: PageId) -> bool {
        self.frames.contains_key(&id)
    }

    /// The cached value of a resident page.
    pub fn peek(&self, id: PageId) -> Option<&Page> {
        self.frames.get(&id).map(|f| &f.page)
    }

    /// Write pages to `S`, enforcing the WAL protocol against `durable`
    /// (the log's durable LSN). On success the frames are marked clean.
    ///
    /// The caller (the engine) must only invoke this in write-graph order;
    /// the simulation treats one `write_out` call as atomic (the paper's
    /// multi-object atomic flush — usually a single page, where disk write
    /// atomicity suffices).
    // lint: durability(PageFlush requires LogForce)
    pub fn write_out(
        &mut self,
        ids: &[PageId],
        store: &StableStore,
        durable: Lsn,
    ) -> Result<(), CacheError> {
        // Validate everything before writing anything (atomicity).
        for &id in ids {
            self.validate_flush(id, durable)?;
        }
        // Ordering witness: after validation, before any install — a call
        // rejected above writes nothing and must not count as a flush.
        if !ids.is_empty() {
            lob_pagestore::witness::io_order("PageFlush");
        }
        for &id in ids {
            self.flush_validated(id, store)?;
        }
        Ok(())
    }

    /// The WAL-protocol check of [`CacheManager::write_out`] for one page,
    /// without writing anything. [`shard::ShardedCache`] uses
    /// this to validate a whole flush set across shards before any shard
    /// writes.
    pub fn validate_flush(&self, id: PageId, durable: Lsn) -> Result<(), CacheError> {
        let f = self.frames.get(&id).ok_or(CacheError::NotResident(id))?;
        if f.page.lsn() > durable {
            return Err(CacheError::WalViolation {
                page: id,
                page_lsn: f.page.lsn(),
                durable,
            });
        }
        Ok(())
    }

    /// Write one already-validated page to `S` and mark it clean. Callers
    /// must have passed [`CacheManager::validate_flush`] for the page
    /// under the same durable LSN first.
    pub fn flush_validated(&mut self, id: PageId, store: &StableStore) -> Result<(), CacheError> {
        if let Some(h) = &self.hook {
            if matches!(
                h(IoEvent::PageFlush, Some(id)),
                FaultVerdict::Crash | FaultVerdict::TornWrite
            ) {
                // Crash after the flush decision, before the store
                // write: pages written earlier in this call stay
                // written (each page write is individually atomic).
                return Err(CacheError::Store(StoreError::InjectedCrash));
            }
        }
        let f = self
            .frames
            .get_mut(&id)
            .ok_or(CacheError::NotResident(id))?;
        // lint:allow(durability-order) the WAL guard in validate_flush rejects any frame with lsn > durable, so the caller's force is already proven
        store.write_page(id, f.page.clone())?;
        f.dirty = false;
        f.rlsn = Lsn::NULL;
        self.stats.pages_flushed += 1;
        Ok(())
    }

    /// All dirty page ids, sorted — deterministic so that seeded
    /// experiments that pick flush victims are reproducible.
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut out: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        out.sort();
        out
    }

    /// Dirty pages with their rLSNs, ordered oldest-rLSN first — the
    /// classic checkpointing order: flushing these first advances the log
    /// truncation point fastest.
    pub fn dirty_pages_by_rlsn(&self) -> Vec<(PageId, Lsn)> {
        let mut out: Vec<(PageId, Lsn)> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, f)| (*id, f.rlsn))
            .collect();
        out.sort_by_key(|&(id, rlsn)| (rlsn, id));
        out
    }

    /// Number of dirty pages.
    pub fn dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.frames.len()
    }

    /// Minimum rLSN over dirty pages: crash recovery must scan from here
    /// (or earlier). `None` when nothing is dirty.
    pub fn min_dirty_rlsn(&self) -> Option<Lsn> {
        self.frames
            .values()
            .filter(|f| f.dirty)
            .map(|f| f.rlsn)
            .min()
    }

    /// Advance a dirty page's rLSN (used after an identity write puts the
    /// page's value on the log: redo for this page can now start at the
    /// identity record — paper §3.2, "advance the rLSN of each object so
    /// written").
    pub fn advance_rlsn(&mut self, id: PageId, to: Lsn) {
        if let Some(f) = self.frames.get_mut(&id) {
            if f.dirty && f.rlsn < to {
                f.rlsn = to;
            }
        }
    }

    /// Drop every frame (crash: volatile state is lost).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Drop a clean page from the cache. Dirty pages are refused.
    pub fn evict(&mut self, id: PageId) -> Result<(), CacheError> {
        match self.frames.get(&id) {
            None => Ok(()),
            Some(f) if f.dirty => Err(CacheError::NotResident(id)), // must flush first
            Some(_) => {
                self.frames.remove(&id);
                Ok(())
            }
        }
    }

    fn shrink_to_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.frames.len() > cap {
            // Evict the least-recently-used clean page, if any.
            let victim = self
                .frames
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.frames.remove(&id);
                    self.stats.evictions += 1;
                }
                None => break, // everything dirty: over capacity until flushed
            }
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

impl Default for CacheManager {
    fn default() -> Self {
        CacheManager::new()
    }
}

impl fmt::Debug for CacheManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheManager({} resident, {} dirty)",
            self.frames.len(),
            self.dirty_count()
        )
    }
}

/// A [`PageReader`] view over the cache + store, used to evaluate
/// operations (both at normal execution and — via a fresh cache — at
/// recovery).
pub struct CacheReader<'a> {
    cache: &'a mut CacheManager,
    store: &'a StableStore,
}

impl<'a> CacheReader<'a> {
    /// Construct a reader borrowing the cache and store.
    pub fn new(cache: &'a mut CacheManager, store: &'a StableStore) -> Self {
        CacheReader { cache, store }
    }
}

impl PageReader for CacheReader<'_> {
    fn read(&mut self, id: PageId) -> Result<Bytes, OpError> {
        match self.cache.get(id, self.store) {
            Ok(p) => Ok(p.data().clone()),
            Err(e) => Err(OpError::ReadFailed {
                page: id,
                cause: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lob_pagestore::StoreConfig;

    const SIZE: usize = 16;

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn store() -> StableStore {
        StableStore::single(StoreConfig { page_size: SIZE }, 16)
    }

    fn page(lsn: u64, fill: u8) -> Page {
        Page::new(Lsn(lsn), Bytes::from(vec![fill; SIZE]))
    }

    #[test]
    fn miss_then_hit() {
        let s = store();
        let mut c = CacheManager::new();
        let p = c.get(pid(0), &s).unwrap();
        assert!(p.lsn().is_null());
        assert_eq!(c.stats().misses, 1);
        c.get(pid(0), &s).unwrap();
        assert_eq!(c.stats().hits, 1);
        assert_eq!(s.stats().page_reads, 1, "second read served from cache");
    }

    #[test]
    fn dirty_pages_tracked_with_rlsn() {
        let s = store();
        let mut c = CacheManager::new();
        c.get(pid(0), &s).unwrap();
        c.put_dirty(pid(0), page(5, 1));
        c.put_dirty(pid(0), page(9, 2));
        assert!(c.is_dirty(pid(0)));
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(
            c.min_dirty_rlsn(),
            Some(Lsn(5)),
            "rLSN pinned at first dirtying op"
        );
        assert_eq!(c.peek(pid(0)).unwrap().lsn(), Lsn(9));
    }

    #[test]
    fn write_out_enforces_wal_protocol() {
        let s = store();
        let mut c = CacheManager::new();
        c.put_dirty(pid(0), page(7, 1));
        let err = c.write_out(&[pid(0)], &s, Lsn(6)).unwrap_err();
        assert!(matches!(err, CacheError::WalViolation { .. }));
        assert!(c.is_dirty(pid(0)), "nothing written on violation");
        c.write_out(&[pid(0)], &s, Lsn(7)).unwrap();
        assert!(!c.is_dirty(pid(0)));
        assert_eq!(s.read_page(pid(0)).unwrap().lsn(), Lsn(7));
        assert_eq!(c.min_dirty_rlsn(), None);
    }

    #[test]
    fn write_out_validates_before_writing_any() {
        let s = store();
        let mut c = CacheManager::new();
        c.put_dirty(pid(0), page(1, 1));
        c.put_dirty(pid(1), page(9, 2));
        // Page 1 violates WAL → neither page reaches S.
        assert!(c.write_out(&[pid(0), pid(1)], &s, Lsn(5)).is_err());
        assert!(s.read_page(pid(0)).unwrap().lsn().is_null());
    }

    #[test]
    fn write_out_of_nonresident_fails() {
        let s = store();
        let mut c = CacheManager::new();
        assert!(matches!(
            c.write_out(&[pid(3)], &s, Lsn::MAX),
            Err(CacheError::NotResident(_))
        ));
    }

    #[test]
    fn advance_rlsn_after_identity_write() {
        let mut c = CacheManager::new();
        c.put_dirty(pid(0), page(3, 1));
        c.advance_rlsn(pid(0), Lsn(8));
        assert_eq!(c.min_dirty_rlsn(), Some(Lsn(8)));
        // Never regresses.
        c.advance_rlsn(pid(0), Lsn(2));
        assert_eq!(c.min_dirty_rlsn(), Some(Lsn(8)));
    }

    #[test]
    fn dirty_pages_by_rlsn_orders_oldest_first() {
        let mut c = CacheManager::new();
        c.put_dirty(pid(2), page(9, 1));
        c.put_dirty(pid(0), page(3, 1));
        c.put_dirty(pid(1), page(5, 1));
        let order: Vec<Lsn> = c.dirty_pages_by_rlsn().iter().map(|&(_, l)| l).collect();
        assert_eq!(order, vec![Lsn(3), Lsn(5), Lsn(9)]);
    }

    #[test]
    fn eviction_is_clean_lru_only() {
        let s = store();
        let mut c = CacheManager::with_capacity(Some(2));
        c.get(pid(0), &s).unwrap();
        c.put_dirty(pid(1), page(1, 1));
        c.get(pid(2), &s).unwrap(); // over capacity → evict clean LRU = page 0
        assert!(!c.is_resident(pid(0)));
        assert!(c.is_resident(pid(1)), "dirty page survives");
        assert!(c.is_resident(pid(2)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn explicit_evict_refuses_dirty() {
        let s = store();
        let mut c = CacheManager::new();
        c.put_dirty(pid(0), page(1, 1));
        assert!(c.evict(pid(0)).is_err());
        c.get(pid(1), &s).unwrap();
        assert!(c.evict(pid(1)).is_ok());
        assert!(!c.is_resident(pid(1)));
    }

    #[test]
    fn clear_models_crash() {
        let s = store();
        let mut c = CacheManager::new();
        c.put_dirty(pid(0), page(1, 1));
        c.clear();
        assert_eq!(c.resident_count(), 0);
        assert_eq!(c.dirty_count(), 0);
        // S untouched by the crash.
        assert!(s.read_page(pid(0)).unwrap().lsn().is_null());
    }

    #[test]
    fn cache_reader_serves_op_evaluation() {
        let s = store();
        let mut c = CacheManager::new();
        c.put_dirty(pid(0), page(2, 0xAB));
        let mut r = CacheReader::new(&mut c, &s);
        use lob_ops::PageReader as _;
        let v = r.read(pid(0)).unwrap();
        assert_eq!(v[0], 0xAB, "reader sees the dirty cached value");
        let v2 = r.read(pid(1)).unwrap();
        assert_eq!(v2[0], 0, "miss fetches from S");
    }
}
