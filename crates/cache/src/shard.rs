//! # Sharded cache front
//!
//! [`ShardedCache`] spreads the cache over N independently locked shards
//! keyed by a page-id hash, so concurrent sessions touching different
//! pages almost never contend on cache state — the buffer-pool sharding
//! idiom. Each shard *is* a [`CacheManager`], so every safety rail the
//! single-threaded cache enforces (WAL-protocol-checked write-out, the
//! `PageFlush` fault consult per page, clean-only LRU eviction, rLSN
//! pinning) is inherited verbatim rather than re-implemented.
//!
//! Cross-shard flush atomicity: [`ShardedCache::write_out`] validates
//! every page of the set (across all its shards) before any shard writes,
//! preserving the "validate everything before writing anything" contract
//! of [`CacheManager::write_out`]. The two-phase walk is sound because
//! the engine service only flushes pages of one coordinator domain per
//! call while holding that domain's write lock — no other session can
//! dirty or clean those pages between the phases.
//!
//! Lock discipline: at most one shard lock is ever held at a time (the
//! two-phase flush re-locks per page instead of holding the whole set),
//! so shard locks cannot deadlock against each other or anything else.

use crate::{CacheError, CacheManager, CacheStats};
use lob_pagestore::{FaultHook, Lsn, Page, PageId, StableStore};
use parking_lot::{Mutex, MutexGuard};

/// A page cache sharded by page-id hash. See the module docs.
pub struct ShardedCache {
    /// The shards; every access goes through
    /// [`ShardedCache::lock_shard`]. One lock id covers all shards (they
    /// are interchangeable instances of the same role, like the store's
    /// per-partition locks).
    shards: Vec<Mutex<CacheManager>>,
}

impl ShardedCache {
    /// A cache with `shards` shards (clamped to at least 1) holding at
    /// most `capacity` pages in total (`None` = unbounded; the budget is
    /// split evenly across shards, rounded up).
    pub fn new(shards: usize, capacity: Option<usize>) -> ShardedCache {
        let n = shards.max(1);
        let per_shard = capacity.map(|c| c.div_ceil(n).max(1));
        ShardedCache {
            shards: (0..n)
                .map(|_| Mutex::new(CacheManager::with_capacity(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// FNV-1a over the page id — cheap, deterministic, and spreads the
    /// (partition, index) pairs workloads actually use.
    fn hash(id: PageId) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id
            .partition
            .0
            .to_le_bytes()
            .into_iter()
            .chain(id.index.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Lock the shard owning `id`. The error arm is unreachable
    /// (construction guarantees at least one shard and the index is
    /// reduced mod the length) but kept typed: no panics on this path.
    fn lock_shard(
        &self,
        id: PageId,
    ) -> Result<(MutexGuard<'_, CacheManager>, lob_pagestore::witness::Held), CacheError> {
        let idx = (Self::hash(id) as usize) % self.shards.len().max(1);
        let guard = self
            .shards
            .get(idx)
            .ok_or(CacheError::NotResident(id))?
            .lock();
        let held = lob_pagestore::witness::hold("cache/shard.shards");
        lob_pagestore::witness::access("ShardedCache.shards");
        Ok((guard, held))
    }

    /// Install (or clear) the fault hook on every shard.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        for s in &self.shards {
            s.lock().set_fault_hook(hook.clone());
        }
    }

    /// Current value of a page, fetching from `S` on a miss.
    pub fn get(&self, id: PageId, store: &StableStore) -> Result<Page, CacheError> {
        let (mut c, _h) = self.lock_shard(id)?;
        c.get(id, store)
    }

    /// The pageLSN of a page (fetching on miss).
    pub fn page_lsn(&self, id: PageId, store: &StableStore) -> Result<Lsn, CacheError> {
        let (mut c, _h) = self.lock_shard(id)?;
        c.page_lsn(id, store)
    }

    /// Install an operation's result for one page (dirty, rLSN pinned at
    /// the first dirtying operation).
    pub fn put_dirty(&self, id: PageId, page: Page) -> Result<(), CacheError> {
        let (mut c, _h) = self.lock_shard(id)?;
        c.put_dirty(id, page);
        Ok(())
    }

    /// Whether a page is resident and dirty.
    pub fn is_dirty(&self, id: PageId) -> bool {
        self.lock_shard(id)
            .map(|(c, _h)| c.is_dirty(id))
            .unwrap_or(false)
    }

    /// The cached value of a resident page (owned — the shard lock is
    /// released before returning).
    pub fn peek(&self, id: PageId) -> Option<Page> {
        self.lock_shard(id)
            .ok()
            .and_then(|(c, _h)| c.peek(id).cloned())
    }

    /// Write pages to `S` in one atomic-validated set: phase one checks
    /// the WAL protocol for every page across all involved shards, phase
    /// two writes. See the module docs for why the phases may re-lock.
    // lint: durability(PageFlush requires LogForce)
    pub fn write_out(
        &self,
        ids: &[PageId],
        store: &StableStore,
        durable: Lsn,
    ) -> Result<(), CacheError> {
        for &id in ids {
            let (c, _h) = self.lock_shard(id)?;
            c.validate_flush(id, durable)?;
        }
        // Ordering witness: after validation, before any install — a call
        // rejected above writes nothing and must not count as a flush.
        if !ids.is_empty() {
            lob_pagestore::witness::io_order("PageFlush");
        }
        for &id in ids {
            let (mut c, _h) = self.lock_shard(id)?;
            c.flush_validated(id, store)?;
        }
        Ok(())
    }

    /// All dirty page ids, sorted (deterministic across shard layouts).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut out: Vec<PageId> = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().dirty_pages());
        }
        out.sort();
        out
    }

    /// Dirty pages with their rLSNs, oldest rLSN first.
    pub fn dirty_pages_by_rlsn(&self) -> Vec<(PageId, Lsn)> {
        let mut out: Vec<(PageId, Lsn)> = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().dirty_pages_by_rlsn());
        }
        out.sort_by_key(|&(id, rlsn)| (rlsn, id));
        out
    }

    /// Number of dirty pages across all shards.
    pub fn dirty_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().dirty_count()).sum()
    }

    /// Number of resident pages across all shards.
    pub fn resident_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().resident_count()).sum()
    }

    /// Minimum rLSN over dirty pages (the crash-recovery scan bound).
    pub fn min_dirty_rlsn(&self) -> Option<Lsn> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().min_dirty_rlsn())
            .min()
    }

    /// Advance a dirty page's rLSN (never regresses).
    pub fn advance_rlsn(&self, id: PageId, to: Lsn) {
        if let Ok((mut c, _h)) = self.lock_shard(id) {
            c.advance_rlsn(id, to);
        }
    }

    /// Drop every frame (crash: volatile state is lost).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Summed statistics across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let st = s.lock().stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.pages_flushed += st.pages_flushed;
            total.evictions += st.evictions;
        }
        total
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedCache({} shards, {} resident, {} dirty)",
            self.shards.len(),
            self.resident_count(),
            self.dirty_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use lob_pagestore::StoreConfig;
    use std::sync::Arc;

    const SIZE: usize = 16;

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn store() -> StableStore {
        StableStore::single(StoreConfig { page_size: SIZE }, 64)
    }

    fn page(lsn: u64, fill: u8) -> Page {
        Page::new(Lsn(lsn), Bytes::from(vec![fill; SIZE]))
    }

    #[test]
    fn shards_cover_all_pages() {
        let s = store();
        let c = ShardedCache::new(4, None);
        assert_eq!(c.shard_count(), 4);
        for i in 0..32 {
            c.get(pid(i), &s).unwrap();
        }
        assert_eq!(c.resident_count(), 32);
        let stats = c.stats();
        assert_eq!(stats.misses, 32);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let c = ShardedCache::new(0, None);
        assert_eq!(c.shard_count(), 1);
        c.put_dirty(pid(0), page(1, 1)).unwrap();
        assert!(c.is_dirty(pid(0)));
    }

    #[test]
    fn dirty_tracking_spans_shards() {
        let c = ShardedCache::new(4, None);
        c.put_dirty(pid(3), page(9, 1)).unwrap();
        c.put_dirty(pid(11), page(3, 1)).unwrap();
        c.put_dirty(pid(7), page(5, 1)).unwrap();
        assert_eq!(c.dirty_count(), 3);
        assert_eq!(c.min_dirty_rlsn(), Some(Lsn(3)));
        let order: Vec<Lsn> = c.dirty_pages_by_rlsn().iter().map(|&(_, l)| l).collect();
        assert_eq!(order, vec![Lsn(3), Lsn(5), Lsn(9)]);
        assert_eq!(c.dirty_pages(), vec![pid(3), pid(7), pid(11)]);
    }

    #[test]
    fn write_out_validates_across_shards_before_writing() {
        let s = store();
        let c = ShardedCache::new(4, None);
        c.put_dirty(pid(0), page(1, 1)).unwrap();
        c.put_dirty(pid(9), page(9, 2)).unwrap();
        // pid(9) violates WAL at durable=5 → neither page reaches S.
        assert!(c.write_out(&[pid(0), pid(9)], &s, Lsn(5)).is_err());
        assert!(s.read_page(pid(0)).unwrap().lsn().is_null());
        c.write_out(&[pid(0), pid(9)], &s, Lsn(9)).unwrap();
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(s.read_page(pid(9)).unwrap().lsn(), Lsn(9));
    }

    #[test]
    fn peek_returns_owned_page() {
        let c = ShardedCache::new(2, None);
        assert!(c.peek(pid(0)).is_none());
        c.put_dirty(pid(0), page(4, 0xAB)).unwrap();
        let p = c.peek(pid(0)).unwrap();
        assert_eq!(p.lsn(), Lsn(4));
        assert_eq!(p.data()[0], 0xAB);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let s = store();
        let c = ShardedCache::new(2, Some(4));
        for i in 0..16 {
            c.get(pid(i), &s).unwrap();
        }
        // Per-shard budget is 2; clean LRU eviction keeps residency ≈ 4.
        assert!(c.resident_count() <= 4, "{} resident", c.resident_count());
        assert!(c.stats().evictions >= 12);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let s = Arc::new(store());
        let c = Arc::new(ShardedCache::new(4, None));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let c = c.clone();
                let s = s.clone();
                scope.spawn(move || {
                    for round in 1..=50u64 {
                        let id = pid(t * 16 + (round % 8) as u32);
                        c.put_dirty(id, page(round, t as u8)).unwrap();
                        let _ = c.get(id, &s).unwrap();
                    }
                });
            }
        });
        assert!(c.dirty_count() <= 32);
        for t in 0..4u32 {
            for r in 0..8u32 {
                let p = c.peek(pid(t * 16 + r));
                if let Some(p) = p {
                    assert_eq!(p.data()[0], t as u8, "no cross-thread bleed");
                }
            }
        }
    }

    #[test]
    fn clear_models_crash() {
        let c = ShardedCache::new(4, None);
        c.put_dirty(pid(0), page(1, 1)).unwrap();
        c.put_dirty(pid(9), page(2, 2)).unwrap();
        c.clear();
        assert_eq!(c.resident_count(), 0);
        assert_eq!(c.dirty_count(), 0);
    }
}
