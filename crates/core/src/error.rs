//! Engine errors.

use lob_backup::BackupError;
use lob_cache::CacheError;
use lob_ops::OpError;
use lob_pagestore::StoreError;
use lob_recovery::{InstantError, RedoError, WriteGraphError};
use lob_wal::LogError;
use std::fmt;

/// Any failure surfaced by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Operation evaluation failed.
    Op(OpError),
    /// Cache failure (including WAL-protocol violations).
    Cache(CacheError),
    /// Stable store failure.
    Store(StoreError),
    /// Log failure.
    Log(LogError),
    /// Write-graph failure.
    Graph(WriteGraphError),
    /// Backup machinery failure.
    Backup(BackupError),
    /// Redo failure during recovery.
    Redo(RedoError),
    /// The operation violates the configured discipline or tracking scheme.
    Discipline(String),
    /// The page is quarantined — a bad read was detected and the page is out
    /// of service awaiting online repair. Other pages keep serving.
    Quarantined(lob_pagestore::PageId),
    /// Online repair exhausted every registered backup generation without
    /// finding a good copy of the page (or no generation is registered).
    /// The page stays quarantined; a full restore or a future generation
    /// can still bring it back. Other partitions are unaffected.
    Unrepairable(lob_pagestore::PageId),
    /// Instant restore exhausted every archived backup generation without
    /// restoring this segment. It stays `Failed` (other segments keep
    /// serving); a future archived generation can still bring it back.
    UnrestorableSegment(lob_pagestore::PartitionId),
    /// Internal invariant violation — a bug in the engine, surfaced loudly.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Op(e) => write!(f, "operation error: {e}"),
            EngineError::Cache(e) => write!(f, "cache error: {e}"),
            EngineError::Store(e) => write!(f, "store error: {e}"),
            EngineError::Log(e) => write!(f, "log error: {e}"),
            EngineError::Graph(e) => write!(f, "write-graph error: {e}"),
            EngineError::Backup(e) => write!(f, "backup error: {e}"),
            EngineError::Redo(e) => write!(f, "redo error: {e}"),
            EngineError::Discipline(m) => write!(f, "discipline violation: {m}"),
            EngineError::Quarantined(p) => {
                write!(f, "page {p} is quarantined awaiting online repair")
            }
            EngineError::Unrepairable(p) => write!(
                f,
                "page {p} is unrepairable: no registered backup generation holds a good copy"
            ),
            EngineError::UnrestorableSegment(p) => write!(
                f,
                "segment {p} is unrestorable: every archived backup generation exhausted"
            ),
            EngineError::Internal(m) => write!(f, "internal engine error: {m}"),
        }
    }
}

impl EngineError {
    /// Whether this error — at any nesting level — is an *injected crash*
    /// from the fault hook rather than a genuine failure. The torture
    /// harness uses this to distinguish "the planned crash point fired"
    /// (expected; proceed to recovery) from real bugs (propagate).
    pub fn is_injected_crash(&self) -> bool {
        match self {
            EngineError::Store(StoreError::InjectedCrash) => true,
            EngineError::Cache(CacheError::Store(StoreError::InjectedCrash)) => true,
            EngineError::Log(LogError::InjectedCrash) => true,
            EngineError::Backup(BackupError::InjectedCrash) => true,
            EngineError::Backup(BackupError::Store(StoreError::InjectedCrash)) => true,
            // Redo targets stringify their store errors — and a replay
            // step reading its target wraps that string once more — so
            // match the marker anywhere in the rendering.
            EngineError::Redo(e) => e
                .to_string()
                .contains(lob_pagestore::fault::INJECTED_CRASH_MSG),
            _ => false,
        }
    }
}

impl std::error::Error for EngineError {}

impl From<OpError> for EngineError {
    fn from(e: OpError) -> Self {
        EngineError::Op(e)
    }
}
impl From<CacheError> for EngineError {
    fn from(e: CacheError) -> Self {
        EngineError::Cache(e)
    }
}
impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}
impl From<LogError> for EngineError {
    fn from(e: LogError) -> Self {
        EngineError::Log(e)
    }
}
impl From<WriteGraphError> for EngineError {
    fn from(e: WriteGraphError) -> Self {
        EngineError::Graph(e)
    }
}
impl From<BackupError> for EngineError {
    fn from(e: BackupError) -> Self {
        EngineError::Backup(e)
    }
}
impl From<RedoError> for EngineError {
    fn from(e: RedoError) -> Self {
        EngineError::Redo(e)
    }
}
impl From<InstantError> for EngineError {
    fn from(e: InstantError) -> Self {
        match e {
            InstantError::Store(e) => EngineError::Store(e),
            InstantError::Backup(e) => EngineError::Backup(e),
            InstantError::Redo(e) => EngineError::Redo(e),
            InstantError::Unrestorable(p) => EngineError::UnrestorableSegment(p),
            InstantError::BadState(m) => EngineError::Discipline(m),
        }
    }
}
