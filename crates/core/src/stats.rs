//! Engine statistics.

/// Counters describing engine activity, read by the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Operations executed (logged and applied).
    pub ops_executed: u64,
    /// Identity-write (`W_IP`) records appended for Iw/oF.
    pub iwof_records: u64,
    /// Bytes of identity-write records appended for Iw/oF.
    pub iwof_bytes: u64,
    /// Write-graph nodes installed by flushing.
    pub nodes_flushed: u64,
    /// Write-graph nodes installed without flushing anything (empty
    /// `vars`).
    pub nodes_installed_free: u64,
    /// Pages written to `S` by flushes.
    pub pages_flushed: u64,
    /// Crash recoveries performed.
    pub recoveries: u64,
    /// Media recoveries performed.
    pub media_recoveries: u64,
    /// Backups begun.
    pub backups_begun: u64,
    /// Backups completed.
    pub backups_completed: u64,
    /// Pages placed in quarantine after a detected bad read.
    pub quarantines: u64,
    /// Pages repaired online (from the backup chain or a dirty cached
    /// copy) and returned to service.
    pub repairs: u64,
    /// Times repair gave up on one backup generation (corrupt, missing, or
    /// truncated-suffix) and fell back to an older one.
    pub repair_fallbacks: u64,
    /// Transient-I/O read attempts retried under the deterministic backoff
    /// schedule (store, log, and backup-image reads combined).
    pub transient_retries: u64,
    /// Batched sweep round-trips performed by backup steps (one per
    /// `step_batch` call, whatever the batch size).
    pub sweep_batches: u64,
    /// Sweep workers run to completion by partition-parallel backups.
    pub sweep_workers: u64,
    /// Crash recoveries performed through the parallel replay scheduler
    /// (also counted in `recoveries`).
    pub parallel_recoveries: u64,
    /// Media recoveries performed through the parallel restore + replay
    /// path (also counted in `media_recoveries`).
    pub parallel_restores: u64,
    /// Instant-restore epochs begun (`begin_instant_restore` plus
    /// `recover_instant` re-entries).
    pub instant_epochs: u64,
    /// Instant-restore epochs completed and witness-verified (also counted
    /// in `media_recoveries`).
    pub instant_completions: u64,
    /// Instant-restore epochs begun in reboot mode after a crash mid-epoch
    /// (also counted in `instant_epochs`).
    pub instant_reboots: u64,
    /// Segments restored on demand because a foreground read or write
    /// needed them (folded in when the epoch completes).
    pub instant_on_demand: u64,
    /// Segments restored by the background sweep (folded in when the epoch
    /// completes).
    pub instant_swept: u64,
    /// Online repairs that sourced their dependency closure from a
    /// generation's page-indexed archive instead of a full-suffix scan.
    pub repair_index_hits: u64,
    /// Archive-indexed repair attempts that fell back to the full-suffix
    /// scan of the same generation (corrupt run, exhausted retries, or a
    /// truncated catch-up suffix).
    pub repair_index_fallbacks: u64,
}

impl EngineStats {
    /// Difference `self - earlier` per counter.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            ops_executed: self.ops_executed - earlier.ops_executed,
            iwof_records: self.iwof_records - earlier.iwof_records,
            iwof_bytes: self.iwof_bytes - earlier.iwof_bytes,
            nodes_flushed: self.nodes_flushed - earlier.nodes_flushed,
            nodes_installed_free: self.nodes_installed_free - earlier.nodes_installed_free,
            pages_flushed: self.pages_flushed - earlier.pages_flushed,
            recoveries: self.recoveries - earlier.recoveries,
            media_recoveries: self.media_recoveries - earlier.media_recoveries,
            backups_begun: self.backups_begun - earlier.backups_begun,
            backups_completed: self.backups_completed - earlier.backups_completed,
            quarantines: self.quarantines - earlier.quarantines,
            repairs: self.repairs - earlier.repairs,
            repair_fallbacks: self.repair_fallbacks - earlier.repair_fallbacks,
            transient_retries: self.transient_retries - earlier.transient_retries,
            sweep_batches: self.sweep_batches - earlier.sweep_batches,
            sweep_workers: self.sweep_workers - earlier.sweep_workers,
            parallel_recoveries: self.parallel_recoveries - earlier.parallel_recoveries,
            parallel_restores: self.parallel_restores - earlier.parallel_restores,
            instant_epochs: self.instant_epochs - earlier.instant_epochs,
            instant_completions: self.instant_completions - earlier.instant_completions,
            instant_reboots: self.instant_reboots - earlier.instant_reboots,
            instant_on_demand: self.instant_on_demand - earlier.instant_on_demand,
            instant_swept: self.instant_swept - earlier.instant_swept,
            repair_index_hits: self.repair_index_hits - earlier.repair_index_hits,
            repair_index_fallbacks: self.repair_index_fallbacks - earlier.repair_index_fallbacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = EngineStats {
            ops_executed: 10,
            iwof_records: 3,
            ..Default::default()
        };
        let b = EngineStats {
            ops_executed: 25,
            iwof_records: 5,
            pages_flushed: 7,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.ops_executed, 15);
        assert_eq!(d.iwof_records, 2);
        assert_eq!(d.pages_flushed, 7);
    }
}
