//! # lob-core — the database engine
//!
//! `lob` ("logical-operation backup") is a from-scratch reproduction of
//! David Lomet's *"High Speed On-line Backup When Using Logical Log
//! Operations"* (SIGMOD 2000). This crate is the engine that wires the
//! substrates together:
//!
//! * a stable database `S` of partitioned pages (`lob-pagestore`);
//! * a write-ahead / media-recovery log (`lob-wal`);
//! * a cache manager with WAL-protocol enforcement (`lob-cache`);
//! * the Lomet–Tuttle redo-recovery framework — write graphs, LSN redo
//!   (`lob-recovery`);
//! * the paper's on-line backup protocol — progress tracking, backup
//!   latch, Iw/oF decisions (`lob-backup`).
//!
//! ## Quick start
//!
//! ```
//! use lob_core::{Discipline, Engine, EngineConfig};
//! use lob_ops::{LogicalOp, OpBody, PhysioOp};
//! use lob_pagestore::PageId;
//! use bytes::Bytes;
//!
//! // A single-partition database logging *tree* operations.
//! let mut engine = Engine::new(EngineConfig {
//!     discipline: Discipline::Tree,
//!     ..EngineConfig::small()
//! }).unwrap();
//!
//! // Insert a record (physiological), then split the page logically:
//! // MovRec logs only identifiers — no data values.
//! engine.execute(OpBody::Physio(PhysioOp::InsertRec {
//!     target: PageId::new(0, 0),
//!     key: Bytes::from_static(b"k"),
//!     val: Bytes::from_static(b"v"),
//! })).unwrap();
//! engine.execute(OpBody::Logical(LogicalOp::MovRec {
//!     old: PageId::new(0, 0),
//!     sep: Bytes::from_static(b"a"),
//!     new: PageId::new(0, 1),
//! })).unwrap();
//!
//! // Take an 8-step on-line backup while (in real use) updates continue.
//! let mut run = engine.begin_backup(8).unwrap();
//! while !engine.backup_step(&mut run).unwrap() {}
//! let image = engine.complete_backup(run).unwrap();
//!
//! // Lose the medium, restore from the backup, roll forward.
//! engine.store().fail_partition(lob_pagestore::PartitionId(0)).unwrap();
//! engine.media_recover(&image).unwrap();
//! ```
//!
//! ## Module map
//!
//! * [`engine`] — [`Engine`]: operation execution, write-graph-ordered
//!   flushing with the §3.5 (general) and §4.2 (tree) Iw/oF decisions,
//!   crash recovery, on-line/incremental/offline backup, media recovery,
//!   and the two broken-by-design baselines (naive fuzzy dump and linked
//!   flush) used by the experiments.
//! * [`config`] — [`EngineConfig`], [`Discipline`], [`Tracking`],
//!   [`BackupPolicy`], [`FlushPolicy`].
//! * [`error`] — [`EngineError`].
//! * [`stats`] — [`EngineStats`].

pub mod config;
pub mod engine;
pub mod error;
pub mod service;
pub mod stats;

pub use config::{
    BackupPolicy, CommitConfig, Discipline, EngineConfig, FlushPolicy, LogBacking, SweepConfig,
    Tracking,
};
pub use engine::{Engine, LinkedBackupRun};
pub use error::EngineError;
pub use service::{EngineService, Session};
pub use stats::EngineStats;

// Re-export the vocabulary types downstream users need.
pub use lob_backup::{
    BackupCatalog, BackupImage, BackupRun, DomainId, ParallelSweep, Region, RunConfig, WorkerReport,
};
pub use lob_ops::{LogicalOp, OpBody, OpClass, PhysioOp, RecPage, TreeForm};
pub use lob_pagestore::{
    CorruptionEntry, CorruptionReport, Lsn, Page, PageId, PartitionId, PartitionSpec,
};
pub use lob_recovery::{
    BackoffSchedule, GraphMode, InstantStats, RecoveryConfig, RedoOutcome, RepairReport,
    SegmentState,
};
