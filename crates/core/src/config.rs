//! Engine configuration.

use lob_pagestore::{PartitionId, PartitionSpec};
use lob_recovery::{GraphMode, RecoveryConfig};
use std::path::PathBuf;

/// Which class of log operations the engine accepts — and therefore which
/// backup decision rule applies (paper §3.5 vs §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// Only physical/physiological operations. No flush-order constraints;
    /// backup never needs Iw/oF (the conventional fuzzy dump, §1.2).
    PageOriented,
    /// Tree operations (§4): page-oriented ops plus write-new
    /// (`W_L(old, new)`) ops, plus the application-read extension of §6.2.
    /// Iw/oF decided by the §4.2 rule (successor tracking, † property).
    Tree,
    /// Arbitrary logical operations. Iw/oF decided by the conservative
    /// §3.5 rule (log unless `Pend`).
    General,
}

/// How backup progress is tracked across partitions (§3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tracking {
    /// One domain sweeping all partitions in the given order ("one large
    /// partition"). Operations may span partitions. Required for the
    /// applications-last ordering of §6.2.
    Sequential(Vec<PartitionId>),
    /// One independent domain per partition; backups of different
    /// partitions proceed in parallel. Operations must not span
    /// partitions (enforced by the engine) — this is also what makes a
    /// partition the unit of media recovery (§6.3).
    PerPartition,
}

/// Where the durable log lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogBacking {
    /// In-memory durable store (simulations; "durable" survives the
    /// simulated crash, which only discards the unforced tail).
    Memory,
    /// A real append-only file with checksummed framing and torn-tail
    /// detection. [`crate::Engine::open_existing`] can resume from it
    /// after a process restart.
    File(PathBuf),
}

/// Which backup correctness machinery the engine applies on flushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackupPolicy {
    /// The paper's protocol: Iw/oF logging per the active [`Discipline`].
    Protocol,
    /// The conventional fuzzy dump with no coordination (correct only for
    /// page-oriented operations). Kept as the broken baseline the Figure 1
    /// counterexample defeats.
    NaiveFuzzy,
    /// Every flush is synchronously copied into the in-progress backup as
    /// well ("linked flush", §1.3) — correct but "completely unrealistic";
    /// kept for the throughput comparison.
    LinkedFlush,
}

/// How eagerly `execute` forces the log when an identity write (`W_IP`)
/// must become durable before its page flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// Force exactly up to the LSN the WAL rule requires. Every identity
    /// write during a sweep pays its own force round-trip; the durable
    /// log advances in lock-step with the rule — the measurement-friendly
    /// (and model-checker-friendly) default.
    #[default]
    Exact,
    /// Force the whole appended tail whenever a force is required, so
    /// records appended since the last force ride along in one group
    /// commit ([`lob_wal::LogStore::append_batch`] — one write + flush on
    /// a file-backed log). Forcing more than required is always
    /// WAL-correct; it only makes extra records durable early.
    Group,
}

/// Commit batching: how log forces are scheduled, and what "durable"
/// means on a file-backed log. One coherent home for the knobs that used
/// to be scattered (the flush policy lived alone on [`EngineConfig`];
/// group-commit windows were hard-coded in benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitConfig {
    /// Force batching policy (see [`FlushPolicy`]).
    pub flush_policy: FlushPolicy,
    /// How long a group-commit leader waits for co-committers before
    /// dispatching the group force, in microseconds. `0` disables the
    /// gather window (each force dispatches immediately, still batching
    /// whatever is already appended) — also the deterministic setting the
    /// seeded virtual scheduler requires.
    pub group_commit_delay_micros: u64,
    /// Dispatch the group early once this many committers (leader
    /// included) are waiting. `<= 1` disables gathering.
    pub group_commit_count: u32,
    /// `fsync` the file-backed log on every force, so "durable" means on
    /// the platter rather than in the OS page cache. Ignored for the
    /// in-memory log. Off by default: drills model durability through the
    /// fault hook and should not pay real fsync latency.
    pub sync_file_log: bool,
}

impl Default for CommitConfig {
    fn default() -> CommitConfig {
        CommitConfig {
            flush_policy: FlushPolicy::Exact,
            group_commit_delay_micros: 200,
            group_commit_count: 8,
            sync_file_log: false,
        }
    }
}

impl CommitConfig {
    /// The default commit configuration with the given flush policy.
    pub fn with_policy(flush_policy: FlushPolicy) -> CommitConfig {
        CommitConfig {
            flush_policy,
            ..CommitConfig::default()
        }
    }
}

/// Backup sweep batching defaults, used when a caller does not pass
/// explicit knobs: progress steps per domain and contiguous pages copied
/// per store round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Progress steps per domain sweep.
    pub steps: u32,
    /// Contiguous pages copied per store round-trip.
    pub batch: u32,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig { steps: 8, batch: 8 }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Page payload size in bytes.
    pub page_size: usize,
    /// Partition sizes; partition ids are assigned in order from 0.
    pub partitions: Vec<PartitionSpec>,
    /// Operation discipline.
    pub discipline: Discipline,
    /// Write-graph construction (`Refined` is required for Iw/oF; the
    /// `Intersecting` mode exists for the fig2 ablation).
    pub graph_mode: GraphMode,
    /// Backup progress tracking scheme.
    pub tracking: Tracking,
    /// Cache capacity in pages (`None` = unbounded).
    pub cache_capacity: Option<usize>,
    /// Backup policy.
    pub policy: BackupPolicy,
    /// Durable log backing.
    pub log: LogBacking,
    /// Commit batching: flush policy, group-commit window, fsync
    /// discipline.
    pub commit: CommitConfig,
    /// Backup sweep batching defaults.
    pub sweep: SweepConfig,
    /// Shards of the concurrent page cache used by
    /// [`crate::EngineService`] (clamped to at least 1). The
    /// single-threaded [`crate::Engine`] ignores this — its cache needs no
    /// lock at all.
    pub cache_shards: usize,
    /// Parallel recovery knobs ([`crate::Engine::parallel_recover`] /
    /// [`crate::Engine::parallel_restore`]): replay workers and group
    /// install batch size. The default is the sequential legacy path.
    pub recovery: RecoveryConfig,
}

impl EngineConfig {
    /// A small single-partition config suitable for tests and examples:
    /// 256-byte pages, 64 pages, general discipline, refined graph,
    /// sequential tracking, paper protocol.
    pub fn small() -> EngineConfig {
        EngineConfig {
            page_size: 256,
            partitions: vec![PartitionSpec { pages: 64 }],
            discipline: Discipline::General,
            graph_mode: GraphMode::Refined,
            tracking: Tracking::Sequential(vec![PartitionId(0)]),
            cache_capacity: None,
            policy: BackupPolicy::Protocol,
            log: LogBacking::Memory,
            commit: CommitConfig::default(),
            sweep: SweepConfig::default(),
            cache_shards: 8,
            recovery: RecoveryConfig::sequential(),
        }
    }

    /// Like [`EngineConfig::small`] but with the given page count.
    pub fn single(pages: u32, page_size: usize) -> EngineConfig {
        EngineConfig {
            page_size,
            partitions: vec![PartitionSpec { pages }],
            tracking: Tracking::Sequential(vec![PartitionId(0)]),
            ..EngineConfig::small()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_consistent() {
        let c = EngineConfig::small();
        assert_eq!(c.partitions.len(), 1);
        assert!(matches!(c.tracking, Tracking::Sequential(ref v) if v.len() == 1));
        assert_eq!(c.policy, BackupPolicy::Protocol);
    }

    #[test]
    fn single_overrides_size() {
        let c = EngineConfig::single(128, 512);
        assert_eq!(c.partitions[0].pages, 128);
        assert_eq!(c.page_size, 512);
    }

    #[test]
    fn commit_defaults_are_exact_and_unsynced() {
        let c = CommitConfig::default();
        assert_eq!(c.flush_policy, FlushPolicy::Exact, "measurement-friendly");
        assert!(!c.sync_file_log, "drills must not pay real fsync latency");
        assert!(c.group_commit_count > 1, "grouping on by default");
        assert!(c.group_commit_delay_micros > 0);
        assert_eq!(EngineConfig::small().commit, c, "small() takes defaults");
    }

    #[test]
    fn sweep_and_shard_defaults() {
        let c = EngineConfig::small();
        assert_eq!(c.sweep, SweepConfig::default());
        assert!(c.sweep.steps >= 1 && c.sweep.batch >= 1);
        assert!(c.cache_shards >= 1, "sharded cache never degenerates to 0");
    }

    #[test]
    fn flush_policy_default_is_exact() {
        assert_eq!(FlushPolicy::default(), FlushPolicy::Exact);
    }
}
