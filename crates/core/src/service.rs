//! # Concurrent multi-session engine front-end
//!
//! [`EngineService`] is the engine as a *service*: one shared instance
//! hands out cheap [`Session`] handles that many threads drive
//! concurrently. Where [`crate::Engine`] is single-owner (`&mut self`
//! everywhere), the service shards its mutable state by the axis the
//! paper already partitions work on — the backup coordinator's domains
//! (§3.4) — so sessions touching disjoint domains never serialize on an
//! engine-global lock:
//!
//! * the page cache is a [`ShardedCache`] (per-shard locks keyed by a
//!   page-id hash);
//! * the write graph, successor table, and page allocator are
//!   **per-domain**, each behind its own lock;
//! * log appends and forces go through the [`GroupCommitLog`]
//!   group-commit scheduler, so concurrent commits share force (and, on a
//!   sync-enabled file log, `fsync`) round-trips;
//! * the stable store and backup coordinator are the same internally
//!   synchronized `Arc`-shared structures backup worker threads already
//!   race against.
//!
//! Backup sweeps keep running under concurrent write load exactly as they
//! do against the single-threaded engine: a sweep reads `S` under the
//! store's partition locks and the tracker's latch, neither of which a
//! session's domain lock nests inside.
//!
//! ## Lock order
//!
//! `meta` → `domains[_]` → tracker latch → group-commit `state` →
//! group-commit `manager` → cache shard → store partition. Leaf locks
//! (cache shards, store partitions, the coordinator's changed-set and
//! hook mutexes) are acquired one at a time with nothing taken inside
//! them. The static lock-order pass checks the aliased prefix of this
//! chain stays acyclic; the dynamic lock-set witness checks the rest.
//!
//! ## Scope
//!
//! The service covers the concurrent hot paths: execute, read, flush,
//! force, crash/recover, and the on-line backup cycle. The repair /
//! instant-restore / linked-flush subsystems stay on the single-threaded
//! [`crate::Engine`] — they operate on the same shared store, catalog,
//! and coordinator layers, so a deployment runs them from one maintenance
//! thread while sessions keep executing (see DESIGN.md §5.14).

use crate::config::{BackupPolicy, Discipline, EngineConfig, FlushPolicy, LogBacking, Tracking};
use crate::engine::lift_cache_err;
use crate::error::EngineError;
use crate::stats::EngineStats;
use bytes::Bytes;
use lob_backup::{BackupCoordinator, BackupImage, BackupRun, DomainId, RunConfig, SuccessorTable};
use lob_cache::ShardedCache;
use lob_ops::{OpBody, OpError, PageReader, TreeForm};
use lob_pagestore::{witness, Lsn, Page, PageId, PartitionId, StableStore, StoreConfig};
use lob_recovery::redo::StoreRedoTarget;
use lob_recovery::{redo_scan, NodeId, RedoOutcome, WriteGraph};
use lob_wal::{FileLogStore, GroupCommitLog, LogManager, RecordBody};
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-domain mutable state: the §3.5 machinery that used to live on the
/// single-owner engine, now instantiated once per backup domain so
/// domain-disjoint sessions proceed in parallel.
struct DomainState {
    /// Write graph of uninstalled operations in this domain.
    graph: WriteGraph,
    /// Successor metadata for the §4.2 tree decision.
    succ: SuccessorTable,
    /// Next never-updated page index per partition of this domain.
    next_free: BTreeMap<PartitionId, u32>,
}

/// Cross-domain bookkeeping: backup identity, retention, and the
/// installed fault hook. Cold path — taken only by backup begin/complete
/// and crash/recover, never by execute or flush.
struct ServiceMeta {
    next_backup_id: u64,
    /// Backups whose media-recovery log suffix must be retained.
    retained: Vec<(u64, Lsn)>,
    /// Changed-page sets taken by in-flight backups, restored on abort.
    taken_changed: Vec<(u64, HashSet<PageId>)>,
    hook: Option<lob_pagestore::FaultHook>,
}

/// Monotone activity counters, updated lock-free from any session.
#[derive(Default)]
struct Counters {
    ops_executed: AtomicU64,         // lint: atomic(relaxed-counter)
    iwof_records: AtomicU64,         // lint: atomic(relaxed-counter)
    nodes_flushed: AtomicU64,        // lint: atomic(relaxed-counter)
    nodes_installed_free: AtomicU64, // lint: atomic(relaxed-counter)
    pages_flushed: AtomicU64,        // lint: atomic(relaxed-counter)
    recoveries: AtomicU64,           // lint: atomic(relaxed-counter)
    backups_begun: AtomicU64,        // lint: atomic(relaxed-counter)
    backups_completed: AtomicU64,    // lint: atomic(relaxed-counter)
    sweep_batches: AtomicU64,        // lint: atomic(relaxed-counter)
}

/// The concurrent engine front-end. Construct once, wrap in an [`Arc`],
/// and hand out [`Session`]s with [`EngineService::session`]. See the
/// module docs for the sharding and lock-order story.
pub struct EngineService {
    // lint: guarded-by(immutable) set at construction, never reassigned
    config: EngineConfig,
    // lint: guarded-by(immutable) Arc to an internally synchronized store
    store: Arc<StableStore>,
    // lint: guarded-by(immutable) Arc to an internally synchronized coordinator
    coordinator: Arc<BackupCoordinator>,
    // lint: guarded-by(immutable) internally synchronized group-commit scheduler
    log: GroupCommitLog,
    // lint: guarded-by(immutable) internally synchronized sharded cache
    cache: ShardedCache,
    /// One lock per backup domain, indexed by `DomainId.0`.
    domains: Vec<Mutex<DomainState>>,
    /// Cross-domain backup bookkeeping.
    meta: Mutex<ServiceMeta>,
    // lint: guarded-by(atomic) monotone counters
    counters: Counters,
}

/// Reads during operation evaluation go through the sharded cache; every
/// read stays inside the executing session's domain (discipline-checked
/// before evaluation), so the domain lock serializes same-domain readers
/// against same-domain writers.
struct ShardReader<'a> {
    cache: &'a ShardedCache,
    store: &'a StableStore,
}

impl PageReader for ShardReader<'_> {
    fn read(&mut self, id: PageId) -> Result<Bytes, OpError> {
        match self.cache.get(id, self.store) {
            Ok(p) => Ok(p.data().clone()),
            Err(e) => Err(OpError::ReadFailed {
                page: id,
                cause: e.to_string(),
            }),
        }
    }
}

impl EngineService {
    /// Build a service over a fresh, formatted database.
    pub fn new(config: EngineConfig) -> Result<EngineService, EngineError> {
        let store = Arc::new(StableStore::new(
            StoreConfig {
                page_size: config.page_size,
            },
            &config.partitions,
        ));
        let parts_with_sizes =
            |ids: &[PartitionId]| -> Result<Vec<(PartitionId, u32)>, EngineError> {
                ids.iter()
                    .map(|&p| {
                        store
                            .page_count(p)
                            .map(|n| (p, n))
                            .map_err(EngineError::Store)
                    })
                    .collect()
            };
        let coordinator = match &config.tracking {
            Tracking::Sequential(order) => {
                if order.len() != config.partitions.len() {
                    return Err(EngineError::Discipline(format!(
                        "sequential tracking order lists {} partitions, store has {}",
                        order.len(),
                        config.partitions.len()
                    )));
                }
                BackupCoordinator::sequential(parts_with_sizes(order)?)
            }
            Tracking::PerPartition => {
                let all: Vec<PartitionId> = (0..config.partitions.len() as u32)
                    .map(PartitionId)
                    .collect();
                BackupCoordinator::per_partition(parts_with_sizes(&all)?)
            }
        };
        let coordinator = Arc::new(coordinator);
        let manager = match &config.log {
            LogBacking::Memory => LogManager::in_memory(),
            LogBacking::File(path) => {
                let mut fs = FileLogStore::create(path).map_err(lob_wal::LogError::Io)?;
                fs.set_sync(config.commit.sync_file_log);
                LogManager::new(Box::new(fs))
            }
        };
        let log = GroupCommitLog::new(
            manager,
            Duration::from_micros(config.commit.group_commit_delay_micros),
            config.commit.group_commit_count,
        );
        let cache = ShardedCache::new(config.cache_shards, config.cache_capacity);
        let mut domains: Vec<Mutex<DomainState>> = (0..coordinator.domain_count())
            .map(|_| {
                Mutex::new(DomainState {
                    graph: WriteGraph::new(config.graph_mode),
                    succ: SuccessorTable::new(),
                    next_free: BTreeMap::new(),
                })
            })
            .collect();
        for p in 0..config.partitions.len() as u32 {
            let pid = PartitionId(p);
            if let Some(d) = coordinator.domain_of(pid) {
                if let Some(m) = domains.get_mut(d.0 as usize) {
                    m.get_mut().next_free.insert(pid, 0);
                }
            }
        }
        Ok(EngineService {
            store,
            coordinator,
            log,
            cache,
            domains,
            meta: Mutex::new(ServiceMeta {
                next_backup_id: 1,
                retained: Vec::new(),
                taken_changed: Vec::new(),
                hook: None,
            }),
            counters: Counters::default(),
            config,
        })
    }

    /// A handle for one session of work; clone-free to create, `Send`,
    /// and safe to drive from its own thread.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            svc: Arc::clone(self),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The stable database (shared with backup threads).
    pub fn store(&self) -> &Arc<StableStore> {
        &self.store
    }

    /// The backup coordinator (shared with backup threads).
    pub fn coordinator(&self) -> &Arc<BackupCoordinator> {
        &self.coordinator
    }

    /// The group-commit log scheduler.
    pub fn log(&self) -> &GroupCommitLog {
        &self.log
    }

    /// The sharded page cache.
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Aggregate service statistics in the engine's vocabulary.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            ops_executed: self.counters.ops_executed.load(Ordering::Relaxed),
            iwof_records: self.counters.iwof_records.load(Ordering::Relaxed),
            iwof_bytes: self.log.with_manager(|m| m.stats().identity_bytes()),
            nodes_flushed: self.counters.nodes_flushed.load(Ordering::Relaxed),
            nodes_installed_free: self.counters.nodes_installed_free.load(Ordering::Relaxed),
            pages_flushed: self.counters.pages_flushed.load(Ordering::Relaxed),
            recoveries: self.counters.recoveries.load(Ordering::Relaxed),
            backups_begun: self.counters.backups_begun.load(Ordering::Relaxed),
            backups_completed: self.counters.backups_completed.load(Ordering::Relaxed),
            sweep_batches: self.counters.sweep_batches.load(Ordering::Relaxed),
            ..EngineStats::default()
        }
    }

    /// Durable-log statistics (forces, frames, identity bytes).
    pub fn log_stats(&self) -> lob_wal::LogStats {
        self.log.with_manager(|m| m.stats().clone())
    }

    fn lock_domain(
        &self,
        d: DomainId,
    ) -> Result<(MutexGuard<'_, DomainState>, witness::Held), EngineError> {
        let guard = self
            .domains
            .get(d.0 as usize)
            .ok_or_else(|| EngineError::Discipline(format!("no such backup domain {d:?}")))?
            .lock();
        let held = witness::hold("core/service.domains");
        witness::access("EngineService.domains");
        Ok((guard, held))
    }

    fn lock_meta(&self) -> (MutexGuard<'_, ServiceMeta>, witness::Held) {
        let guard = self.meta.lock();
        let held = witness::hold("core/service.meta");
        witness::access("EngineService.meta");
        (guard, held)
    }

    /// The group-commit force: named so the static lock-order pass can
    /// alias the internal `state` → `manager` acquisition at every call
    /// site.
    fn group_force(&self, upto: Lsn) -> Result<(), EngineError> {
        Ok(self.log.force(upto)?)
    }

    /// See [`crate::Engine::execute`]-adjacent `force_target`: the LSN a
    /// WAL-required force actually targets under the configured policy.
    /// The group scheduler's leader always persists the whole appended
    /// tail either way (always WAL-correct); `Exact` still short-circuits
    /// when the requirement is already durable.
    fn force_target(&self, required: Lsn) -> Lsn {
        match self.config.commit.flush_policy {
            FlushPolicy::Exact => required,
            FlushPolicy::Group => Lsn::MAX,
        }
    }

    /// Discipline and confinement check; returns the single domain the
    /// operation touches (domain 0 for page-free operations).
    fn check_discipline(&self, body: &OpBody) -> Result<DomainId, EngineError> {
        let mut domain: Option<DomainId> = None;
        for page in body.readset().into_iter().chain(body.writeset()) {
            match self.coordinator.domain_of(page.partition) {
                None => {
                    return Err(EngineError::Discipline(format!(
                        "page {page} is outside every backup-order domain"
                    )))
                }
                Some(d) => match domain {
                    None => domain = Some(d),
                    Some(prev) if prev == d => {}
                    Some(prev) => {
                        return Err(EngineError::Discipline(format!(
                            "operation spans backup domains {prev:?} and {d:?}; \
                             sessions require domain-confined operations"
                        )))
                    }
                },
            }
        }
        match self.config.discipline {
            Discipline::General => {}
            Discipline::PageOriented => {
                if !body.class().is_page_oriented() {
                    return Err(EngineError::Discipline(format!(
                        "{} is a logical operation; engine is page-oriented",
                        body.label()
                    )));
                }
            }
            Discipline::Tree => match body.tree_form() {
                Some(TreeForm::PageOriented { .. }) | Some(TreeForm::ReadExtra { .. }) => {}
                Some(TreeForm::WriteNew { new, .. }) => {
                    let lsn = self
                        .cache
                        .page_lsn(new, &self.store)
                        .map_err(lift_cache_err)?;
                    if !lsn.is_null() {
                        return Err(EngineError::Discipline(format!(
                            "write-new target {new} was already updated (pageLSN {lsn}); \
                             tree operations may only initialize fresh objects"
                        )));
                    }
                }
                None => {
                    return Err(EngineError::Discipline(format!(
                        "{} does not fit the tree-operation discipline",
                        body.label()
                    )))
                }
            },
        }
        Ok(domain.unwrap_or(DomainId(0)))
    }

    /// Execute a logged operation (see [`crate::Engine::execute`]): the
    /// session's domain lock serializes same-domain sessions; the log
    /// append and cache installs are internally synchronized. Returns the
    /// record's LSN.
    pub fn execute(&self, body: OpBody) -> Result<Lsn, EngineError> {
        body.validate()?;
        let domain = self.check_discipline(&body)?;
        let (mut dom, _held) = self.lock_domain(domain)?;
        // Evaluate first (no state change on failure).
        let outputs = {
            let mut reader = ShardReader {
                cache: &self.cache,
                store: &self.store,
            };
            body.apply(&mut reader)?
        };
        for (pid, bytes) in &outputs {
            if bytes.len() != self.config.page_size {
                return Err(EngineError::Internal(format!(
                    "operation produced {} bytes for {pid}, page size is {}",
                    bytes.len(),
                    self.config.page_size
                )));
            }
        }
        let lsn = self.log.append_record(RecordBody::Op(body.clone()));
        for (pid, bytes) in outputs {
            self.cache
                .put_dirty(pid, Page::new(lsn, bytes))
                .map_err(lift_cache_err)?;
        }
        dom.graph.add_op(lsn, &body);
        let coord = &self.coordinator;
        dom.succ.note_op(&body, |p| coord.pos(p));
        self.counters.ops_executed.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Current value of a page (read through the sharded cache).
    pub fn read_page(&self, id: PageId) -> Result<Page, EngineError> {
        self.cache.get(id, &self.store).map_err(lift_cache_err)
    }

    /// Allocate a fresh (never-updated) page in `partition`.
    pub fn alloc_page(&self, partition: PartitionId) -> Result<PageId, EngineError> {
        let domain = self
            .coordinator
            .domain_of(partition)
            .ok_or(EngineError::Store(
                lob_pagestore::StoreError::NoSuchPartition(partition),
            ))?;
        let total = self
            .store
            .page_count(partition)
            .map_err(EngineError::Store)?;
        let (mut dom, _held) = self.lock_domain(domain)?;
        let next = dom.next_free.get_mut(&partition).ok_or(EngineError::Store(
            lob_pagestore::StoreError::NoSuchPartition(partition),
        ))?;
        if *next >= total {
            return Err(EngineError::Internal(format!(
                "partition {partition} is full ({total} pages)"
            )));
        }
        let id = PageId {
            partition,
            index: *next,
        };
        *next += 1;
        Ok(id)
    }

    /// Mark low page indexes as pre-allocated.
    pub fn reserve_pages(&self, partition: PartitionId, upto: u32) -> Result<(), EngineError> {
        let Some(domain) = self.coordinator.domain_of(partition) else {
            return Ok(());
        };
        let (mut dom, _held) = self.lock_domain(domain)?;
        if let Some(n) = dom.next_free.get_mut(&partition) {
            *n = (*n).max(upto);
        }
        Ok(())
    }

    /// Install one write-graph node of `dom` — the §3.5 cache-management
    /// algorithm, verbatim from [`crate::Engine`] with the shared-state
    /// substrates swapped in (group force, sharded write-out).
    fn install_one_node(&self, dom: &mut DomainState, node: NodeId) -> Result<(), EngineError> {
        let vars: Vec<PageId> = dom.graph.vars(node)?.iter().copied().collect();
        let wal_floor = dom.graph.wal_floor(node)?;
        if vars.is_empty() {
            return self.install_free_node(dom, node, wal_floor);
        }

        let latch = self.coordinator.latch_for(&vars);

        let mut iwof: Vec<PageId> = Vec::new();
        if self.config.policy == BackupPolicy::Protocol {
            for &v in &vars {
                let needs = match self.config.discipline {
                    Discipline::PageOriented => false,
                    Discipline::General => latch.decide_general(v),
                    Discipline::Tree => latch.decide_tree(v, dom.succ.get(v)),
                };
                if needs {
                    iwof.push(v);
                }
            }
        }

        let mut identity_nodes: Vec<NodeId> = Vec::new();
        for &v in &iwof {
            let value: Bytes = self
                .cache
                .peek(v)
                .ok_or_else(|| EngineError::Internal(format!("iwof target {v} not resident")))?
                .data()
                .clone();
            let body = OpBody::IdentityWrite { target: v, value };
            let ilsn = self.log.append_record(RecordBody::Op(body.clone()));
            self.counters.iwof_records.fetch_add(1, Ordering::Relaxed);
            let n = dom.graph.add_op(ilsn, &body);
            let page = self
                .cache
                .peek(v)
                .ok_or_else(|| {
                    EngineError::Internal(format!("page {v} not resident at identity write"))
                })?
                .with_lsn(ilsn);
            self.cache.put_dirty(v, page).map_err(lift_cache_err)?;
            self.cache.advance_rlsn(v, ilsn);
            identity_nodes.push(n);
        }

        let max_lsn = vars
            .iter()
            .filter_map(|&v| self.cache.peek(v).map(|p| p.lsn()))
            .max()
            .unwrap_or(Lsn::NULL);
        self.group_force(self.force_target(max_lsn.max(wal_floor)))?;
        self.cache
            .write_out(&vars, &self.store, self.log.durable_lsn())
            .map_err(lift_cache_err)?;
        self.counters
            .pages_flushed
            .fetch_add(vars.len() as u64, Ordering::Relaxed);

        for &v in &vars {
            self.coordinator.note_flushed(v);
        }

        dom.graph.install_node(node)?;
        self.counters.nodes_flushed.fetch_add(1, Ordering::Relaxed);
        for n in identity_nodes {
            dom.graph.install_node(n)?;
        }
        for &v in &vars {
            dom.succ.clear(v);
        }
        drop(latch);
        Ok(())
    }

    /// Install a node whose `vars` emptied (stolen by blind writes): no
    /// flush, but the WAL floor must still be durable first. Kept out of
    /// [`EngineService::install_one_node`] so the force here never
    /// lexically precedes that function's backup latch (the static
    /// lock-order pass is branch- and drop-insensitive).
    fn install_free_node(
        &self,
        dom: &mut DomainState,
        node: NodeId,
        wal_floor: Lsn,
    ) -> Result<(), EngineError> {
        self.group_force(self.force_target(wal_floor))?;
        dom.graph.install_node(node)?;
        self.counters
            .nodes_installed_free
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush the node holding `page` (and, first, all its write-graph
    /// ancestors). No-op if the page is clean.
    pub fn flush_page(&self, page: PageId) -> Result<(), EngineError> {
        let Some(domain) = self.coordinator.domain_of(page.partition) else {
            return Err(EngineError::Discipline(format!(
                "page {page} is outside every backup-order domain"
            )));
        };
        let (mut dom, _held) = self.lock_domain(domain)?;
        let Some(node) = dom.graph.node_of(page) else {
            if self.cache.is_dirty(page) {
                return Err(EngineError::Internal(format!(
                    "dirty page {page} not owned by any write-graph node"
                )));
            }
            return Ok(());
        };
        let plan = dom.graph.flush_plan(node)?;
        for n in plan {
            self.install_one_node(&mut dom, n)?;
        }
        Ok(())
    }

    /// Drain one domain's write graph (flush every dirty page of the
    /// domain in write-graph order).
    pub fn flush_domain(&self, domain: DomainId) -> Result<(), EngineError> {
        let (mut dom, _held) = self.lock_domain(domain)?;
        loop {
            let frontier = dom.graph.frontier();
            if frontier.is_empty() {
                return Ok(());
            }
            for node in frontier {
                self.install_one_node(&mut dom, node)?;
            }
        }
    }

    /// Flush every domain's write graph, then advance the log truncation
    /// point. With sessions still executing concurrently this is a
    /// point-in-time drain, not a quiescence barrier.
    pub fn flush_all(&self) -> Result<(), EngineError> {
        for d in 0..self.domains.len() as u32 {
            self.flush_domain(DomainId(d))?;
        }
        self.truncate_log()?;
        Ok(())
    }

    /// Durably force every appended log record (a group commit the caller
    /// does not share with anyone — unless someone commits in the window).
    pub fn force_log(&self) -> Result<(), EngineError> {
        self.group_force(Lsn::MAX)
    }

    /// The earliest LSN crash recovery could need (see
    /// [`crate::Engine::redo_scan_start`]), minimized across domains.
    ///
    /// Holds **every** domain lock at once (ascending index, as in
    /// [`EngineService::recover`]). `execute` assigns an op's LSN and
    /// makes it visible (cache dirty entry, write-graph node) all under
    /// one domain lock, so a lock-one-at-a-time scan could run inside
    /// that window and see the record in neither structure — and a
    /// truncation bound computed past it would silently drop a committed
    /// update from the next crash recovery.
    pub fn redo_scan_start(&self) -> Result<Lsn, EngineError> {
        let doms: Vec<MutexGuard<'_, DomainState>> =
            self.domains.iter().map(|m| m.lock()).collect();
        Ok(self.scan_floor(&doms))
    }

    /// The redo floor over already-held domain guards: the minimum
    /// uninstalled write-graph LSN and dirty-page recovery LSN, else the
    /// append point (nothing volatile needs redo). Callers hold every
    /// domain lock, so no record can be appended-but-not-yet-entered
    /// while this runs.
    fn scan_floor(&self, doms: &[MutexGuard<'_, DomainState>]) -> Lsn {
        let mut min: Option<Lsn> = None;
        for dom in doms.iter() {
            if let Some(l) = dom.graph.min_uninstalled_lsn() {
                min = Some(min.map_or(l, |m| m.min(l)));
            }
        }
        if let Some(l) = self.cache.min_dirty_rlsn() {
            min = Some(min.map_or(l, |m| m.min(l)));
        }
        min.unwrap_or_else(|| self.log.next_lsn())
    }

    /// Advance the log truncation point as far as crash recovery and
    /// retained backups permit.
    pub fn truncate_log(&self) -> Result<Lsn, EngineError> {
        let bound = self.redo_scan_start()?;
        Ok(self.log.truncate(bound)?)
    }

    /// Install (or clear) a fault hook on every I/O site the service owns
    /// or shares (store, log, cache shards, coordinator).
    pub fn install_fault_hook(&self, hook: Option<lob_pagestore::FaultHook>) {
        let (mut meta, _held) = self.lock_meta();
        self.store.set_fault_hook(hook.clone());
        self.log.set_fault_hook(hook.clone());
        self.cache.set_fault_hook(hook.clone());
        self.coordinator.set_fault_hook(hook.clone());
        meta.hook = hook;
    }

    /// Crash: all volatile state (cache, write graphs, successor tables,
    /// the unforced log tail, in-flight backup trackers and the
    /// changed-page set) is lost. Concurrent sessions' in-flight calls
    /// finish against pre-crash state or surface typed errors; call
    /// [`EngineService::recover`] next.
    pub fn crash(&self) {
        let (mut meta, _held) = self.lock_meta();
        let mut doms: Vec<MutexGuard<'_, DomainState>> =
            self.domains.iter().map(|m| m.lock()).collect();
        for dom in doms.iter_mut() {
            dom.graph = WriteGraph::new(self.config.graph_mode);
            dom.succ.clear_all();
        }
        self.log.crash();
        self.cache.clear();
        meta.taken_changed.clear();
        self.coordinator.reset_volatile();
    }

    /// Crash recovery: forward redo over the surviving log suffix,
    /// write-through to `S`. Takes every lock — sessions resume after.
    pub fn recover(&self) -> Result<RedoOutcome, EngineError> {
        let (_meta, _held) = self.lock_meta();
        let mut doms: Vec<MutexGuard<'_, DomainState>> =
            self.domains.iter().map(|m| m.lock()).collect();
        let records = self.log.scan_from(self.log.truncation())?;
        let mut target = StoreRedoTarget::new(&self.store);
        let outcome = redo_scan(&records, &mut target)?;
        self.counters.recoveries.fetch_add(1, Ordering::Relaxed);
        // Reseed the per-domain allocators past everything recovery wrote.
        for dom in doms.iter_mut() {
            for (p, slot) in dom.next_free.iter_mut() {
                let hw = self.store.high_water(*p)?;
                let floor = hw.map_or(0, |h| h + 1);
                *slot = (*slot).max(floor);
            }
        }
        // Truncation bound, computed from the already-held guards (the
        // graphs are live; re-locking through `redo_scan_start` would
        // self-deadlock).
        let bound = self.scan_floor(&doms);
        self.log.truncate(bound)?;
        Ok(outcome)
    }

    /// Take the changed-page set for `domain`, restoring out-of-domain
    /// pages immediately.
    fn take_domain_changed(&self, domain: DomainId) -> HashSet<PageId> {
        let changed = self.coordinator.take_changed();
        let (in_dom, out_dom): (HashSet<PageId>, HashSet<PageId>) = changed
            .into_iter()
            .partition(|p| self.coordinator.domain_of(p.partition) == Some(domain));
        self.coordinator.restore_changed(out_dom);
        in_dom
    }

    fn refresh_media_barrier(&self, meta: &ServiceMeta) {
        let barrier = meta.retained.iter().map(|&(_, l)| l).min();
        self.log.set_media_barrier(barrier);
    }

    /// Start the tracker run, handing the taken changed-set back to the
    /// coordinator on failure. Kept out of
    /// [`EngineService::begin_backup_of`] so the restore-on-error path
    /// never lexically precedes that function's log force (the static
    /// lock-order pass is branch- and drop-insensitive).
    fn begin_run(
        &self,
        cfg: RunConfig,
        backup_id: u64,
        start_lsn: Lsn,
        changed: HashSet<PageId>,
    ) -> Result<(BackupRun, HashSet<PageId>), EngineError> {
        match BackupRun::begin(&self.coordinator, cfg, backup_id, start_lsn) {
            Ok(r) => Ok((r, changed)),
            Err(e) => {
                self.coordinator.restore_changed(changed);
                Err(EngineError::Backup(e))
            }
        }
    }

    /// Unwind [`EngineService::begin_backup_of`] when the `BackupBegin`
    /// force fails: abort the run against the coordinator and hand the
    /// taken changed-set back (mirroring [`EngineService::abort_backup`];
    /// nothing is retained yet), so a transient log failure leaves
    /// neither a phantom active tracker nor a swallowed incremental
    /// changed-page set behind. Kept out of `begin_backup_of` for the
    /// same lexical lock-order reason as [`EngineService::begin_run`].
    fn fail_begun_backup(
        &self,
        meta: &mut ServiceMeta,
        run: BackupRun,
        err: EngineError,
    ) -> EngineError {
        let backup_id = run.backup_id();
        run.abort(&self.coordinator);
        if let Some(i) = meta
            .taken_changed
            .iter()
            .position(|(id, _)| *id == backup_id)
        {
            let (_, changed) = meta.taken_changed.swap_remove(i);
            self.coordinator.restore_changed(changed);
        }
        err
    }

    /// Begin an on-line backup of `domain` in `steps` steps. The returned
    /// run is driven with [`EngineService::backup_step_batch`] — from this
    /// or any other thread — while sessions keep executing.
    pub fn begin_backup_of(&self, domain: DomainId, steps: u32) -> Result<BackupRun, EngineError> {
        let (mut meta, _held) = self.lock_meta();
        let changed = self.take_domain_changed(domain);
        let backup_id = meta.next_backup_id;
        let start_lsn = self.redo_scan_start()?;
        let cfg = RunConfig {
            domain,
            steps,
            filter: None,
            base: None,
        };
        let (run, changed) = self.begin_run(cfg, backup_id, start_lsn, changed)?;
        meta.taken_changed.push((backup_id, changed));
        meta.next_backup_id += 1;
        self.log.append_record(RecordBody::BackupBegin {
            backup_id,
            start_lsn,
        });
        if let Err(e) = self.group_force(Lsn::MAX) {
            return Err(self.fail_begun_backup(&mut meta, run, e));
        }
        meta.retained.push((backup_id, start_lsn));
        self.refresh_media_barrier(&meta);
        self.counters.backups_begun.fetch_add(1, Ordering::Relaxed);
        Ok(run)
    }

    /// Advance an on-line backup by one step, copying up to `batch`
    /// contiguous pages per store round-trip.
    pub fn backup_step_batch(&self, run: &mut BackupRun, batch: u32) -> Result<bool, EngineError> {
        self.counters.sweep_batches.fetch_add(1, Ordering::Relaxed);
        Ok(run.step_batch(&self.coordinator, &self.store, batch)?)
    }

    /// Complete a finished backup run: logs `BackupEnd` and returns the
    /// image. The image's log suffix stays retained until
    /// [`EngineService::release_backup`].
    pub fn complete_backup(&self, run: BackupRun) -> Result<BackupImage, EngineError> {
        let (mut meta, _held) = self.lock_meta();
        let backup_id = run.backup_id();
        let mut image = run.into_image()?;
        self.log.append_record(RecordBody::BackupEnd { backup_id });
        self.group_force(Lsn::MAX)?;
        image.end_lsn = self.log.durable_lsn();
        meta.taken_changed.retain(|(id, _)| *id != backup_id);
        self.counters
            .backups_completed
            .fetch_add(1, Ordering::Relaxed);
        Ok(image)
    }

    /// Abort an in-flight backup run: tracker deactivates, the log suffix
    /// is released, the changed-page set merges back.
    pub fn abort_backup(&self, run: BackupRun) {
        let (mut meta, _held) = self.lock_meta();
        let backup_id = run.backup_id();
        run.abort(&self.coordinator);
        if let Some(i) = meta
            .taken_changed
            .iter()
            .position(|(id, _)| *id == backup_id)
        {
            let (_, changed) = meta.taken_changed.swap_remove(i);
            self.coordinator.restore_changed(changed);
        }
        meta.retained.retain(|&(id, _)| id != backup_id);
        self.refresh_media_barrier(&meta);
    }

    /// Release a completed backup's retained log suffix (it is superseded
    /// by a newer backup, or discarded).
    pub fn release_backup(&self, backup_id: u64) {
        let (mut meta, _held) = self.lock_meta();
        meta.retained.retain(|&(id, _)| id != backup_id);
        self.refresh_media_barrier(&meta);
    }
}

impl std::fmt::Debug for EngineService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EngineService({} domains, {:?}, {:?})",
            self.domains.len(),
            self.cache,
            self.log
        )
    }
}

/// One session of a shared [`EngineService`] — a cheap clone-able handle
/// that forwards to the service. Each thread gets its own; the service's
/// domain locks, cache shards, and group-commit scheduler do the
/// coordinating.
#[derive(Clone, Debug)]
pub struct Session {
    svc: Arc<EngineService>,
}

impl Session {
    /// The shared service behind this session.
    pub fn service(&self) -> &Arc<EngineService> {
        &self.svc
    }

    /// Execute a logged operation. See [`EngineService::execute`].
    pub fn execute(&self, body: OpBody) -> Result<Lsn, EngineError> {
        self.svc.execute(body)
    }

    /// Read a page through the shared cache.
    pub fn read_page(&self, id: PageId) -> Result<Page, EngineError> {
        self.svc.read_page(id)
    }

    /// Flush one page (write-graph-ordered).
    pub fn flush_page(&self, page: PageId) -> Result<(), EngineError> {
        self.svc.flush_page(page)
    }

    /// Commit: durably force everything this session has logged.
    pub fn commit(&self) -> Result<(), EngineError> {
        self.svc.force_log()
    }

    /// Allocate a fresh page.
    pub fn alloc_page(&self, partition: PartitionId) -> Result<PageId, EngineError> {
        self.svc.alloc_page(partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lob_ops::PhysioOp;
    use lob_pagestore::PartitionSpec;

    fn config(partitions: u32, pages: u32) -> EngineConfig {
        EngineConfig {
            page_size: 64,
            partitions: (0..partitions).map(|_| PartitionSpec { pages }).collect(),
            tracking: if partitions == 1 {
                Tracking::Sequential(vec![PartitionId(0)])
            } else {
                Tracking::PerPartition
            },
            ..EngineConfig::small()
        }
    }

    fn insert(p: PageId, k: &[u8], v: &[u8]) -> OpBody {
        OpBody::Physio(PhysioOp::InsertRec {
            target: p,
            key: Bytes::copy_from_slice(k),
            val: Bytes::copy_from_slice(v),
        })
    }

    #[test]
    fn single_session_executes_flushes_and_recovers() {
        let svc = Arc::new(EngineService::new(config(1, 16)).unwrap());
        let s = svc.session();
        let id = PageId::new(0, 0);
        s.execute(insert(id, b"k", b"v")).unwrap();
        s.commit().unwrap();
        svc.flush_all().unwrap();
        assert_eq!(svc.cache().dirty_count(), 0);
        let flushed = svc.store().read_page(id).unwrap();
        assert!(!flushed.lsn().is_null());
        svc.crash();
        svc.recover().unwrap();
        let after = svc.read_page(id).unwrap();
        assert_eq!(after.data(), flushed.data());
    }

    #[test]
    fn sessions_in_disjoint_partitions_run_concurrently() {
        let svc = Arc::new(EngineService::new(config(4, 16)).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let s = svc.session();
                scope.spawn(move || {
                    for i in 0..32u32 {
                        let id = PageId::new(t, i % 16);
                        s.execute(insert(id, b"k", &[t as u8, i as u8])).unwrap();
                        if i % 8 == 7 {
                            s.commit().unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(svc.stats().ops_executed, 128);
        svc.flush_all().unwrap();
        assert_eq!(svc.cache().dirty_count(), 0);
    }

    #[test]
    fn cross_domain_operations_are_rejected() {
        let svc = Arc::new(EngineService::new(config(2, 16)).unwrap());
        let op = OpBody::Logical(lob_ops::LogicalOp::MovRec {
            old: PageId::new(0, 0),
            sep: Bytes::from_static(b"m"),
            new: PageId::new(1, 0),
        });
        assert!(matches!(svc.execute(op), Err(EngineError::Discipline(_))));
    }

    #[test]
    fn backup_races_concurrent_writers_and_restores() {
        let svc = Arc::new(EngineService::new(config(2, 16)).unwrap());
        // Prefill both partitions.
        for p in 0..2u32 {
            for i in 0..16u32 {
                svc.execute(insert(PageId::new(p, i), b"seed", &[p as u8, i as u8]))
                    .unwrap();
            }
        }
        svc.flush_all().unwrap();
        let mut run = svc.begin_backup_of(DomainId(0), 4).unwrap();
        // A concurrent session updates domain 1 while domain 0 is swept.
        std::thread::scope(|scope| {
            let s = svc.session();
            scope.spawn(move || {
                for i in 0..16u32 {
                    s.execute(insert(PageId::new(1, i % 16), b"live", &[i as u8]))
                        .unwrap();
                }
            });
            while !svc.backup_step_batch(&mut run, 4).unwrap() {}
        });
        let image = svc.complete_backup(run).unwrap();
        assert_eq!(image.page_count(), 16);
        assert_eq!(svc.stats().backups_completed, 1);
        svc.release_backup(image.backup_id);
    }

    #[test]
    fn crash_loses_unforced_tail_only() {
        let svc = Arc::new(EngineService::new(config(1, 16)).unwrap());
        let s = svc.session();
        s.execute(insert(PageId::new(0, 0), b"a", b"1")).unwrap();
        s.commit().unwrap();
        let durable = svc.log().durable_lsn();
        s.execute(insert(PageId::new(0, 1), b"b", b"2")).unwrap();
        svc.crash();
        svc.recover().unwrap();
        assert_eq!(svc.log().durable_lsn(), durable);
        // The unforced record is gone; the committed one replayed into S.
        let p = svc.read_page(PageId::new(0, 0)).unwrap();
        assert!(!p.lsn().is_null());
        let q = svc.read_page(PageId::new(0, 1)).unwrap();
        assert!(q.lsn().is_null());
    }
}
