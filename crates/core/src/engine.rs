//! The engine.

use crate::config::{BackupPolicy, Discipline, EngineConfig, FlushPolicy, LogBacking, Tracking};
use crate::error::EngineError;
use crate::stats::EngineStats;
use bytes::Bytes;
use lob_backup::{
    merge_runs, BackupCatalog, BackupCoordinator, BackupError, BackupImage, BackupRun, DomainId,
    ParallelSweep, RunConfig, SuccessorTable,
};
use lob_cache::{CacheError, CacheManager, CacheReader};
use lob_ops::{OpBody, OpError, TreeForm};
use lob_pagestore::{
    Lsn, Page, PageId, PageImage, PartitionId, StableStore, StoreConfig, StoreError,
};
use lob_recovery::redo::StoreRedoTarget;
use lob_recovery::repair::{dependency_closure, replay_closure, BackoffSchedule, RepairReport};
use lob_recovery::{redo_scan, InstantRestore, InstantStats, NodeId, RedoOutcome, WriteGraph};
use lob_wal::{FileLogStore, LogError, LogManager, LogRecord, RecordBody};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

/// Attempts per faultable read when the medium reports *transient* I/O
/// errors: the first try plus three retries, spaced by the deterministic
/// [`BackoffSchedule`] (virtual ticks — repair never consults a clock).
const REPAIR_FETCH_ATTEMPTS: u32 = 4;

/// Bound on heal-and-retry rounds for one engine-level read before the
/// underlying error propagates to the caller (each round either retries a
/// transient error or repairs one damaged page).
const HEAL_ROUNDS: u32 = 6;

/// The engine: executes logged operations against the cache, flushes in
/// write-graph order with the paper's backup coordination, recovers from
/// crashes and media failures.
///
/// Single ownership, single writer: one thread drives the engine. The
/// pieces that backup threads touch concurrently — the stable store and the
/// backup coordinator — are `Arc`-shared and internally synchronized (the
/// store's per-partition page lock; the coordinator's backup latches).
pub struct Engine {
    config: EngineConfig,
    store: Arc<StableStore>,
    log: LogManager,
    cache: CacheManager,
    graph: WriteGraph,
    coordinator: Arc<BackupCoordinator>,
    succ: SuccessorTable,
    next_free: Vec<u32>,
    next_backup_id: u64,
    /// Backups whose media-recovery log suffix must be retained:
    /// `(backup_id, start_lsn)`.
    retained: Vec<(u64, Lsn)>,
    /// Changed-page sets taken by in-flight backups (full backups consume
    /// their domain's changed pages; incremental backups use them as the
    /// copy filter), restored if the backup aborts.
    taken_changed: Vec<(u64, HashSet<PageId>)>,
    /// Images of in-progress linked-flush backups (flushes mirror into
    /// them).
    linked_images: Vec<(u64, Arc<Mutex<PageImage>>)>,
    /// Registered backup generations — the chain online repair draws from.
    /// While it is empty, self-healing is disengaged and every read path
    /// behaves exactly as it did before the repair subsystem existed.
    catalog: Arc<BackupCatalog>,
    /// The in-flight instant-restore epoch, if media recovery is serving
    /// in degraded mode. While `Some`, reads and writes gate on their own
    /// segment's restore ([`Engine::ensure_segment`]); `None` is normal
    /// operation.
    instant: Option<InstantRestore>,
    /// The installed fault hook, kept so a mid-epoch
    /// [`Engine::install_fault_hook`] can re-fan it into the scheduler.
    hook: Option<lob_pagestore::FaultHook>,
    stats: EngineStats,
}

impl Engine {
    /// Build an engine (fresh, formatted database).
    pub fn new(config: EngineConfig) -> Result<Engine, EngineError> {
        let store = Arc::new(StableStore::new(
            StoreConfig {
                page_size: config.page_size,
            },
            &config.partitions,
        ));
        let parts_with_sizes =
            |ids: &[PartitionId]| -> Result<Vec<(PartitionId, u32)>, EngineError> {
                ids.iter()
                    .map(|&p| {
                        store
                            .page_count(p)
                            .map(|n| (p, n))
                            .map_err(EngineError::Store)
                    })
                    .collect()
            };
        let coordinator = match &config.tracking {
            Tracking::Sequential(order) => {
                if order.len() != config.partitions.len() {
                    return Err(EngineError::Discipline(format!(
                        "sequential tracking order lists {} partitions, store has {}",
                        order.len(),
                        config.partitions.len()
                    )));
                }
                BackupCoordinator::sequential(parts_with_sizes(order)?)
            }
            Tracking::PerPartition => {
                let all: Vec<PartitionId> = (0..config.partitions.len() as u32)
                    .map(PartitionId)
                    .collect();
                BackupCoordinator::per_partition(parts_with_sizes(&all)?)
            }
        };
        let log = match &config.log {
            LogBacking::Memory => LogManager::in_memory(),
            LogBacking::File(path) => LogManager::new(Box::new(
                FileLogStore::create(path).map_err(lob_wal::LogError::Io)?,
            )),
        };
        let next_free = vec![0; config.partitions.len()];
        Ok(Engine {
            graph: WriteGraph::new(config.graph_mode),
            cache: CacheManager::with_capacity(config.cache_capacity),
            log,
            coordinator: Arc::new(coordinator),
            succ: SuccessorTable::new(),
            next_free,
            next_backup_id: 1,
            retained: Vec::new(),
            taken_changed: Vec::new(),
            linked_images: Vec::new(),
            catalog: Arc::new(BackupCatalog::new()),
            instant: None,
            hook: None,
            stats: EngineStats::default(),
            store,
            config,
        })
    }

    /// Resume from an existing log file after a process restart: the
    /// stable database starts formatted (the "disk" of this simulation is
    /// in memory), and [`Engine::recover`] rebuilds it by replaying the
    /// entire surviving log.
    pub fn open_existing(config: EngineConfig) -> Result<Engine, EngineError> {
        let LogBacking::File(path) = config.log.clone() else {
            return Err(EngineError::Discipline(
                "open_existing requires a file-backed log".into(),
            ));
        };
        let mut engine = Engine::new(EngineConfig {
            log: LogBacking::Memory, // placeholder, replaced below
            ..config.clone()
        })?;
        let store = FileLogStore::open(&path).map_err(lob_wal::LogError::Io)?;
        engine.log = LogManager::from_existing(Box::new(store))?;
        engine.config = config;
        // Rebuild the retained-backup set from the surviving BackupBegin
        // records, so the media barrier keeps protecting every backup's
        // log suffix across the restart. (Superseded backups are released
        // explicitly with [`Engine::release_backup`], exactly as before
        // the restart.)
        for rec in engine.log.scan_from(engine.log.truncation())? {
            if let RecordBody::BackupBegin {
                backup_id,
                start_lsn,
            } = rec.body
            {
                engine.retained.push((backup_id, start_lsn));
                engine.next_backup_id = engine.next_backup_id.max(backup_id + 1);
            }
        }
        engine.refresh_media_barrier();
        Ok(engine)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The stable database (shared with backup threads).
    pub fn store(&self) -> &Arc<StableStore> {
        &self.store
    }

    /// The backup coordinator (shared with backup threads).
    pub fn coordinator(&self) -> &Arc<BackupCoordinator> {
        &self.coordinator
    }

    /// The log manager.
    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// The cache manager.
    pub fn cache(&self) -> &CacheManager {
        &self.cache
    }

    /// The live write graph.
    pub fn graph(&self) -> &WriteGraph {
        &self.graph
    }

    /// Engine statistics. `iwof_bytes` is derived from the log's
    /// identity-write accounting.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.iwof_bytes = self.log.stats().identity_bytes();
        s
    }

    /// Allocate a fresh (never-updated) page in `partition` — the `new`
    /// object of a write-new tree operation.
    pub fn alloc_page(&mut self, partition: PartitionId) -> Result<PageId, EngineError> {
        let idx = partition.0 as usize;
        let total = self
            .store
            .page_count(partition)
            .map_err(EngineError::Store)?;
        let next = self.next_free.get_mut(idx).ok_or(EngineError::Store(
            lob_pagestore::StoreError::NoSuchPartition(partition),
        ))?;
        if *next >= total {
            return Err(EngineError::Internal(format!(
                "partition {partition} is full ({total} pages)"
            )));
        }
        let id = PageId {
            partition,
            index: *next,
        };
        *next += 1;
        Ok(id)
    }

    /// Mark low page indexes as pre-allocated (workloads that address pages
    /// directly call this so `alloc_page` hands out fresh ones).
    pub fn reserve_pages(&mut self, partition: PartitionId, upto: u32) {
        if let Some(n) = self.next_free.get_mut(partition.0 as usize) {
            *n = (*n).max(upto);
        }
    }

    /// Current value of a page (read through the cache).
    ///
    /// With at least one backup generation registered in the
    /// [`Engine::catalog`], a failed read *self-heals*: transient I/O
    /// errors are retried under the deterministic backoff schedule, and
    /// detected damage (checksum mismatch, single-page media failure, an
    /// already-quarantined slot) triggers an online [`Engine::repair_page`]
    /// before the read is retried. With an empty catalog the error
    /// propagates untouched (quarantined slots as the typed
    /// [`EngineError::Quarantined`]).
    pub fn read_page(&mut self, id: PageId) -> Result<Page, EngineError> {
        // Degraded mode: during an instant-restore epoch a read blocks
        // only on its *own* segment's (prioritized) restore, never on the
        // whole device — that is the bounded-degradation contract.
        if self.instant.is_some() {
            self.ensure_segment(id.partition)?;
        }
        match self.cache.get(id, &self.store) {
            Ok(p) => Ok(p),
            Err(CacheError::Store(e)) if self.self_healing() => self.read_page_healing(id, e),
            Err(e) => Err(lift_cache_err(e)),
        }
    }

    /// Whether online repair is engaged (at least one generation
    /// registered). While false, every read path behaves exactly as it did
    /// before the repair subsystem existed.
    fn self_healing(&self) -> bool {
        !self.catalog.is_empty()
    }

    /// Heal-and-retry loop behind [`Engine::read_page`]: classify the
    /// store error, fix what is fixable, re-read. Bounded by
    /// [`HEAL_ROUNDS`]; anything unfixable propagates typed.
    fn read_page_healing(&mut self, id: PageId, first: StoreError) -> Result<Page, EngineError> {
        let backoff = self.repair_backoff(id);
        let mut err = first;
        let mut transient_attempts = 0u32;
        for _ in 0..HEAL_ROUNDS {
            match err {
                StoreError::Transient(p) => {
                    transient_attempts += 1;
                    if transient_attempts >= backoff.max_attempts {
                        return Err(EngineError::Store(StoreError::Transient(p)));
                    }
                    // Virtual wait: the delay is accounted, never slept.
                    let _ticks = backoff.delay_ticks(transient_attempts - 1);
                    self.stats.transient_retries += 1;
                }
                StoreError::Corrupt(p)
                | StoreError::MediaFailure(p)
                | StoreError::Quarantined(p) => {
                    self.repair_page(p)?;
                }
                e => return Err(lift_store_err(e)),
            }
            match self.cache.get(id, &self.store) {
                Ok(p) => return Ok(p),
                Err(CacheError::Store(e)) => err = e,
                Err(e) => return Err(lift_cache_err(e)),
            }
        }
        Err(lift_store_err(err))
    }

    fn check_discipline(&mut self, body: &OpBody) -> Result<(), EngineError> {
        // Domain confinement: every page the op touches must be in exactly
        // one backup-order domain.
        let mut domain: Option<DomainId> = None;
        for page in body.readset().into_iter().chain(body.writeset()) {
            match self.coordinator.domain_of(page.partition) {
                None => {
                    return Err(EngineError::Discipline(format!(
                        "page {page} is outside every backup-order domain"
                    )))
                }
                Some(d) => match domain {
                    None => domain = Some(d),
                    Some(prev) if prev == d => {}
                    Some(prev) => {
                        return Err(EngineError::Discipline(format!(
                            "operation spans backup domains {prev:?} and {d:?}; \
                             per-partition tracking requires partition-confined operations"
                        )))
                    }
                },
            }
        }
        match self.config.discipline {
            Discipline::General => Ok(()),
            Discipline::PageOriented => {
                if body.class().is_page_oriented() {
                    Ok(())
                } else {
                    Err(EngineError::Discipline(format!(
                        "{} is a logical operation; engine is page-oriented",
                        body.label()
                    )))
                }
            }
            Discipline::Tree => match body.tree_form() {
                Some(TreeForm::PageOriented { .. }) | Some(TreeForm::ReadExtra { .. }) => Ok(()),
                Some(TreeForm::WriteNew { new, .. }) => {
                    let lsn = self.cache.page_lsn(new, &self.store)?;
                    if lsn.is_null() {
                        Ok(())
                    } else {
                        Err(EngineError::Discipline(format!(
                            "write-new target {new} was already updated (pageLSN {lsn}); \
                             tree operations may only initialize fresh objects"
                        )))
                    }
                }
                None => Err(EngineError::Discipline(format!(
                    "{} does not fit the tree-operation discipline",
                    body.label()
                ))),
            },
        }
    }

    /// Execute a logged operation: evaluate it against the cache, append
    /// its log record, install the results in the cache (dirty), and update
    /// the write graph and successor metadata. Returns the record's LSN.
    ///
    /// With a non-empty backup-generation catalog, a read-set page whose
    /// fetch fails with detectable damage is repaired online and the
    /// evaluation retried (evaluation precedes the log append, so a retry
    /// never double-logs). Transient read errors retry the same way. The
    /// engine never aborts an operation over a repairable page.
    pub fn execute(&mut self, body: OpBody) -> Result<Lsn, EngineError> {
        // Degraded mode: every segment the operation touches (read set
        // and write set) must be servable before evaluation — each gates
        // on its own restore only.
        if self.instant.is_some() {
            let parts: BTreeSet<PartitionId> = body
                .readset()
                .into_iter()
                .chain(body.writeset())
                .map(|p| p.partition)
                .collect();
            for p in parts {
                self.ensure_segment(p)?;
            }
        }
        if !self.self_healing() {
            return self.execute_once(body);
        }
        let mut rounds = 0u32;
        loop {
            match self.execute_once(body.clone()) {
                Err(EngineError::Op(OpError::ReadFailed { page, cause }))
                    if rounds < HEAL_ROUNDS =>
                {
                    rounds += 1;
                    self.heal_readset_page(page, cause)?;
                }
                // A store-level read failure that surfaced outside operation
                // evaluation (e.g. the tree discipline's pageLSN probe of a
                // write-new target) heals the same way.
                Err(EngineError::Cache(CacheError::Store(e)))
                    if rounds < HEAL_ROUNDS && is_healable_read_err(&e) =>
                {
                    rounds += 1;
                    self.heal_store_err(e)?;
                }
                r => return r,
            }
        }
    }

    /// Heal one classified store read error: transient errors count a
    /// retry, detected damage repairs from the backup chain.
    fn heal_store_err(&mut self, e: StoreError) -> Result<(), EngineError> {
        match e {
            StoreError::Transient(_) => {
                self.stats.transient_retries += 1;
                Ok(())
            }
            StoreError::Corrupt(p) | StoreError::MediaFailure(p) | StoreError::Quarantined(p) => {
                self.repair_page(p)?;
                Ok(())
            }
            e => Err(lift_store_err(e)),
        }
    }

    /// Classify a failed read-set page by probing `S` directly (typed
    /// errors, no string matching) and heal: transient errors count a
    /// retry, detected damage repairs from the backup chain, and anything
    /// else surfaces the original evaluation failure.
    fn heal_readset_page(&mut self, page: PageId, cause: String) -> Result<(), EngineError> {
        match self.store.read_page(page) {
            // Readable now (the failure was transient, or the evaluation
            // read raced a fault the probe did not draw): just retry.
            Ok(_) => Ok(()),
            Err(StoreError::Transient(_)) => {
                self.stats.transient_retries += 1;
                Ok(())
            }
            Err(StoreError::Corrupt(p))
            | Err(StoreError::MediaFailure(p))
            | Err(StoreError::Quarantined(p)) => {
                self.repair_page(p)?;
                Ok(())
            }
            Err(StoreError::InjectedCrash) => Err(EngineError::Store(StoreError::InjectedCrash)),
            Err(_) => Err(EngineError::Op(OpError::ReadFailed { page, cause })),
        }
    }

    fn execute_once(&mut self, body: OpBody) -> Result<Lsn, EngineError> {
        body.validate()?;
        self.check_discipline(&body)?;
        // Evaluate first (no state change on failure).
        let outputs = {
            let mut reader = CacheReader::new(&mut self.cache, &self.store);
            body.apply(&mut reader)?
        };
        for (pid, bytes) in &outputs {
            if bytes.len() != self.config.page_size {
                return Err(EngineError::Internal(format!(
                    "operation produced {} bytes for {pid}, page size is {}",
                    bytes.len(),
                    self.config.page_size
                )));
            }
        }
        let lsn = self.log.append(RecordBody::Op(body.clone()));
        for (pid, bytes) in outputs {
            self.cache.put_dirty(pid, Page::new(lsn, bytes));
        }
        self.graph.add_op(lsn, &body);
        let coord = &self.coordinator;
        self.succ.note_op(&body, |p| coord.pos(p));
        self.stats.ops_executed += 1;
        Ok(lsn)
    }

    /// The LSN a WAL-required force actually targets, per the configured
    /// [`FlushPolicy`]: exactly `required`, or the whole appended tail
    /// (`Lsn::MAX`) so pending records ride along in one group commit.
    /// Forcing beyond `required` is always WAL-correct — it only makes
    /// records durable early.
    fn force_target(&self, required: Lsn) -> Lsn {
        match self.config.commit.flush_policy {
            FlushPolicy::Exact => required,
            FlushPolicy::Group => Lsn::MAX,
        }
    }

    /// Install one write-graph node (it must have no predecessors): decide
    /// Iw/oF per object under the backup latch, log identity writes where
    /// required, flush the node's `vars` to `S` (WAL-protocol-checked), and
    /// remove the node. This is the cache-management algorithm of §3.5.
    fn install_one_node(&mut self, node: NodeId) -> Result<(), EngineError> {
        let vars: Vec<PageId> = self.graph.vars(node)?.iter().copied().collect();
        // WAL rule for steals: if a blind write emptied (part of) this
        // node's vars, the thief's record must be durable before the node
        // installs — otherwise a crash leaves the stolen object's value
        // with no source (not in S, not regenerable: the replay inputs may
        // already be overwritten in S by the time recovery runs).
        let wal_floor = self.graph.wal_floor(node)?;
        if vars.is_empty() {
            self.log.force(self.force_target(wal_floor))?;
            self.graph.install_node(node)?;
            self.stats.nodes_installed_free += 1;
            return Ok(());
        }

        // Take the backup latch (share mode) for the affected domains; the
        // classification stays valid until we drop it, after the flush.
        let latch = self.coordinator.latch_for(&vars);

        // Decide which objects need Iw/oF.
        let mut iwof: Vec<PageId> = Vec::new();
        if self.config.policy == BackupPolicy::Protocol {
            for &v in &vars {
                let needs = match self.config.discipline {
                    Discipline::PageOriented => false,
                    Discipline::General => latch.decide_general(v),
                    Discipline::Tree => latch.decide_tree(v, self.succ.get(v)),
                };
                if needs {
                    iwof.push(v);
                }
            }
        }

        // Log identity writes. Each steals its object from `node` into a
        // fresh single-object node (installed below, by the same flush).
        let mut identity_nodes: Vec<(PageId, NodeId)> = Vec::new();
        for &v in &iwof {
            let value: Bytes = self
                .cache
                .peek(v)
                .ok_or_else(|| EngineError::Internal(format!("iwof target {v} not resident")))?
                .data()
                .clone();
            let body = OpBody::IdentityWrite { target: v, value };
            let ilsn = self.log.append(RecordBody::Op(body.clone()));
            self.stats.iwof_records += 1;
            let n = self.graph.add_op(ilsn, &body);
            // The page now carries the identity write's LSN; its redo can
            // start at the identity record (rLSN advance, §3.2).
            let page = self
                .cache
                .peek(v)
                .ok_or_else(|| {
                    EngineError::Internal(format!("page {v} not resident at identity write"))
                })?
                .with_lsn(ilsn);
            self.cache.put_dirty(v, page);
            self.cache.advance_rlsn(v, ilsn);
            identity_nodes.push((v, n));
        }

        // WAL protocol: force the log up to the newest pageLSN we are about
        // to write, then flush all vars (the paper flushes X to S even when
        // it was Iw/oF-logged, §3.5).
        let max_lsn = vars
            .iter()
            .filter_map(|&v| self.cache.peek(v).map(|p| p.lsn()))
            .max()
            .unwrap_or(Lsn::NULL);
        self.log.force(self.force_target(max_lsn.max(wal_floor)))?;
        self.cache
            .write_out(&vars, &self.store, self.log.durable_lsn())?;
        self.stats.pages_flushed += vars.len() as u64;

        // Mirror into any in-progress linked-flush backups, and feed the
        // incremental changed-set.
        for &v in &vars {
            self.coordinator.note_flushed(v);
        }
        if !self.linked_images.is_empty() {
            for (_, img) in &self.linked_images {
                let mut g = img.lock();
                for &v in &vars {
                    if let Some(p) = self.cache.peek(v) {
                        // lint:allow(durability-order) linked image mirrors the page just flushed, read from the cache, not the store
                        g.put(v, p.clone());
                    }
                }
            }
        }

        // The flush installed the node's remaining ops and every identity
        // write.
        self.graph.install_node(node)?;
        self.stats.nodes_flushed += 1;
        for (v, n) in identity_nodes {
            // The identity node may still exist (it does unless it was the
            // same node — impossible: identity writes never merge).
            self.graph.install_node(n)?;
            let _ = v;
        }
        for &v in &vars {
            self.succ.clear(v);
        }
        drop(latch);
        Ok(())
    }

    /// Flush the node holding `page` (and, first, all its write-graph
    /// ancestors). No-op if the page is clean.
    pub fn flush_page(&mut self, page: PageId) -> Result<(), EngineError> {
        let Some(node) = self.graph.node_of(page) else {
            if self.cache.is_dirty(page) {
                return Err(EngineError::Internal(format!(
                    "dirty page {page} not owned by any write-graph node"
                )));
            }
            return Ok(());
        };
        let plan = self.graph.flush_plan(node)?;
        for n in plan {
            self.install_one_node(n)?;
        }
        Ok(())
    }

    /// Flush every dirty page (in write-graph order) until the graph is
    /// empty, then advance the log truncation point.
    pub fn flush_all(&mut self) -> Result<(), EngineError> {
        loop {
            let frontier = self.graph.frontier();
            if frontier.is_empty() {
                break;
            }
            for node in frontier {
                self.install_one_node(node)?;
            }
        }
        if self.cache.dirty_count() != 0 {
            return Err(EngineError::Internal(
                "dirty pages remain after the write graph drained".into(),
            ));
        }
        self.truncate_log()?;
        Ok(())
    }

    /// Durably force every appended log record (a commit point: operations
    /// logged so far survive a crash).
    pub fn force_log(&mut self) -> Result<(), EngineError> {
        self.log.force_all()?;
        Ok(())
    }

    /// Flush up to `budget` dirty pages, oldest rLSN first (the classic
    /// background-checkpointing policy: it advances the log truncation
    /// point fastest), then truncate the log. Returns the number of pages
    /// that were dirty before the call and are clean after it.
    pub fn flush_oldest(&mut self, budget: usize) -> Result<usize, EngineError> {
        let victims = self.cache.dirty_pages_by_rlsn();
        let mut cleaned = 0;
        for (page, _) in victims.into_iter().take(budget) {
            if self.cache.is_dirty(page) {
                self.flush_page(page)?;
                cleaned += 1;
            }
        }
        self.truncate_log()?;
        Ok(cleaned)
    }

    /// The redo scan start point: the earliest LSN crash recovery could
    /// need. This is also the media-recovery start point a backup records
    /// when it begins (§1.2).
    pub fn redo_scan_start(&self) -> Lsn {
        let graph_min = self.graph.min_uninstalled_lsn();
        let cache_min = self.cache.min_dirty_rlsn();
        match (graph_min, cache_min) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => self.log.next_lsn(),
        }
    }

    /// Advance the log truncation point as far as crash recovery and
    /// retained backups permit.
    pub fn truncate_log(&mut self) -> Result<Lsn, EngineError> {
        let bound = self.redo_scan_start();
        Ok(self.log.truncate(bound)?)
    }

    // ------------------------------------------------------------------
    // Crash recovery
    // ------------------------------------------------------------------

    /// Install (or clear) a fault hook on every I/O site the engine owns
    /// or shares: the stable store (page writes), the log manager (forces
    /// and frame appends), the cache (flush decisions), and the backup
    /// coordinator (sweep copies). One hook observes the system-wide
    /// deterministic I/O event stream.
    pub fn install_fault_hook(&mut self, hook: Option<lob_pagestore::FaultHook>) {
        self.store.set_fault_hook(hook.clone());
        self.log.set_fault_hook(hook.clone());
        self.cache.set_fault_hook(hook.clone());
        self.coordinator.set_fault_hook(hook.clone());
        self.catalog.set_fault_hook(hook.clone());
        if let Some(r) = self.instant.as_mut() {
            r.set_fault_hook(hook.clone());
        }
        self.hook = hook;
    }

    /// Crash: all volatile state (cache, write graph, successor table, the
    /// unforced log tail, in-flight backup trackers and the changed-page
    /// set) is lost. Call [`Engine::recover`] next.
    pub fn crash(&mut self) {
        self.log.crash();
        self.cache.clear();
        self.graph = WriteGraph::new(self.config.graph_mode);
        self.succ.clear_all();
        self.taken_changed.clear();
        self.linked_images.clear();
        // The backup coordinator's trackers and changed set live in the
        // same process: any in-flight sweep dies with it.
        self.coordinator.reset_volatile();
        // The instant-restore scheduler is volatile too; its on-disk
        // progress is exactly the cleared failure flags, so a reboot
        // re-enters through [`Engine::recover_instant`].
        self.instant = None;
    }

    /// Crash recovery: forward redo over the surviving log suffix, write-
    /// through to `S`.
    pub fn recover(&mut self) -> Result<RedoOutcome, EngineError> {
        let records = self.log.scan_from(self.log.truncation())?;
        let mut target = StoreRedoTarget::new(&self.store);
        let outcome = redo_scan(&records, &mut target)?;
        self.stats.recoveries += 1;
        self.reseed_allocator()?;
        self.truncate_log()?;
        Ok(outcome)
    }

    /// Crash recovery through the parallel replay scheduler, with the
    /// workers/batch knobs from [`EngineConfig::recovery`]. See
    /// [`Engine::parallel_recover_with`].
    pub fn parallel_recover(&mut self) -> Result<RedoOutcome, EngineError> {
        self.parallel_recover_with(self.config.recovery)
    }

    /// Crash recovery like [`Engine::recover`], but fanned out over
    /// page-disjoint replay units on up to `recovery.workers` threads with
    /// batched group install (`recovery.batch` pages per store
    /// round-trip). With `workers = 1, batch = 1` this takes literally the
    /// legacy sequential path; in every configuration the recovered state
    /// and the returned [`RedoOutcome`] are identical to sequential replay
    /// (the differential torture oracle byte-checks this).
    pub fn parallel_recover_with(
        &mut self,
        recovery: lob_recovery::RecoveryConfig,
    ) -> Result<RedoOutcome, EngineError> {
        let records = self.log.scan_from(self.log.truncation())?;
        let outcome = lob_recovery::parallel_redo_scan(&records, &self.store, recovery)?;
        self.stats.recoveries += 1;
        self.stats.parallel_recoveries += 1;
        self.reseed_allocator()?;
        self.truncate_log()?;
        Ok(outcome)
    }

    fn reseed_allocator(&mut self) -> Result<(), EngineError> {
        for (p, slot) in self.next_free.iter_mut().enumerate() {
            let hw = self.store.high_water(PartitionId(p as u32))?;
            let floor = hw.map_or(0, |h| h + 1);
            *slot = (*slot).max(floor);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Backups
    // ------------------------------------------------------------------

    /// Take the changed-page set for `domain`, restoring out-of-domain
    /// pages immediately (they belong to other domains' next backups).
    fn take_domain_changed(&mut self, domain: DomainId) -> HashSet<PageId> {
        let changed = self.coordinator.take_changed();
        let (in_dom, out_dom): (HashSet<PageId>, HashSet<PageId>) = changed
            .into_iter()
            .partition(|p| self.coordinator.domain_of(p.partition) == Some(domain));
        self.coordinator.restore_changed(out_dom);
        in_dom
    }

    fn begin_backup_inner(
        &mut self,
        domain: DomainId,
        steps: u32,
        incremental: bool,
        base: Option<u64>,
    ) -> Result<BackupRun, EngineError> {
        // Both full and incremental backups consume the domain's changed
        // set: a full backup supersedes it (every page is captured at or
        // after this point, and flushes during the window are re-noted); an
        // incremental backup copies exactly it.
        let changed = self.take_domain_changed(domain);
        let backup_id = self.next_backup_id;
        let start_lsn = self.redo_scan_start();
        let cfg = RunConfig {
            domain,
            steps,
            filter: incremental.then(|| changed.clone()),
            base,
        };
        let run = match BackupRun::begin(&self.coordinator, cfg, backup_id, start_lsn) {
            Ok(r) => r,
            Err(e) => {
                self.coordinator.restore_changed(changed);
                return Err(EngineError::Backup(e));
            }
        };
        self.taken_changed.push((backup_id, changed));
        self.next_backup_id += 1;
        self.log.append(RecordBody::BackupBegin {
            backup_id,
            start_lsn,
        });
        self.log.force_all()?;
        self.retained.push((backup_id, start_lsn));
        self.refresh_media_barrier();
        self.stats.backups_begun += 1;
        Ok(run)
    }

    fn refresh_media_barrier(&mut self) {
        let barrier = self.retained.iter().map(|&(_, l)| l).min();
        self.log.set_media_barrier(barrier);
    }

    /// Begin an on-line backup of domain 0 in `steps` steps (the common
    /// single-domain case).
    pub fn begin_backup(&mut self, steps: u32) -> Result<BackupRun, EngineError> {
        self.begin_backup_inner(DomainId(0), steps, false, None)
    }

    /// Begin an on-line backup of a specific domain.
    pub fn begin_backup_of(
        &mut self,
        domain: DomainId,
        steps: u32,
    ) -> Result<BackupRun, EngineError> {
        self.begin_backup_inner(domain, steps, false, None)
    }

    /// Begin an incremental backup: copy only pages flushed to `S` since
    /// the last completed backup, on top of `base`.
    pub fn begin_incremental_backup(
        &mut self,
        domain: DomainId,
        steps: u32,
        base: &BackupImage,
    ) -> Result<BackupRun, EngineError> {
        self.begin_backup_inner(domain, steps, true, Some(base.backup_id))
    }

    /// Advance an on-line backup by one step (copy + cursor advance).
    /// Between calls, the engine is free to execute and flush — that is the
    /// "on-line" in on-line backup. One page per store round-trip:
    /// [`Engine::backup_step_batch`] with a batch of 1.
    pub fn backup_step(&mut self, run: &mut BackupRun) -> Result<bool, EngineError> {
        self.backup_step_batch(run, 1)
    }

    /// Advance an on-line backup by one step, copying up to `batch`
    /// contiguous pages per store round-trip
    /// ([`lob_backup::BackupRun::step_batch`]).
    pub fn backup_step_batch(
        &mut self,
        run: &mut BackupRun,
        batch: u32,
    ) -> Result<bool, EngineError> {
        if !self.self_healing() {
            self.stats.sweep_batches += 1;
            return Ok(run.step_batch(&self.coordinator, &self.store, batch)?);
        }
        // A sweep copy read can hit detectable damage just like any other
        // read. A failed step leaves the cursor and tracker untouched, so
        // repair-and-retry is safe: already-copied pages are re-put with
        // identical bytes.
        let mut rounds = 0u32;
        let mut transient_attempts = 0u32;
        loop {
            self.stats.sweep_batches += 1;
            match run.step_batch(&self.coordinator, &self.store, batch) {
                Err(BackupError::Store(StoreError::Transient(p))) => {
                    let backoff = self.repair_backoff(p);
                    transient_attempts += 1;
                    if transient_attempts >= backoff.max_attempts {
                        return Err(EngineError::Store(StoreError::Transient(p)));
                    }
                    let _ticks = backoff.delay_ticks(transient_attempts - 1);
                    self.stats.transient_retries += 1;
                }
                // During an instant-restore epoch a sweep copy that lands
                // on a failed segment waits for that segment's restore
                // (prioritized), not a single-page repair — the whole
                // partition is coming back anyway. This is what keeps
                // `backup_step` working mid-epoch.
                Err(BackupError::Store(StoreError::MediaFailure(p)))
                    if self.instant.is_some() && rounds < HEAL_ROUNDS =>
                {
                    rounds += 1;
                    self.ensure_segment(p.partition)?;
                }
                Err(BackupError::Store(
                    StoreError::Corrupt(p)
                    | StoreError::MediaFailure(p)
                    | StoreError::Quarantined(p),
                )) if rounds < HEAL_ROUNDS => {
                    rounds += 1;
                    self.repair_page(p)?;
                }
                r => return Ok(r?),
            }
        }
    }

    /// Back up every domain concurrently — the paper's partition-parallel
    /// scheme (§3.4): one sweep worker thread per coordinator domain, each
    /// copying up to `batch` contiguous pages per store round-trip, `steps`
    /// progress steps per domain.
    ///
    /// The engine thread blocks for the duration (the sweep reads `S`
    /// directly, so nothing here executes operations meanwhile — drive
    /// [`Engine::backup_step_batch`] per run instead when the workload must
    /// interleave on this thread; with real concurrent writers the workers
    /// race them exactly as §3.4 intends). On success every domain's image
    /// is returned, `BackupEnd`-logged, in domain order. A domain that
    /// fails its sweep is healed and finished on this thread when
    /// self-healing is engaged and the error is repairable; otherwise
    /// every other domain is aborted and the first error surfaces.
    pub fn parallel_backup(
        &mut self,
        steps: u32,
        batch: u32,
    ) -> Result<Vec<BackupImage>, EngineError> {
        let mut runs = Vec::with_capacity(self.coordinator.domain_count() as usize);
        for d in 0..self.coordinator.domain_count() {
            match self.begin_backup_inner(DomainId(d), steps, false, None) {
                Ok(r) => runs.push(r),
                Err(e) => {
                    for r in runs {
                        self.abort_backup(r);
                    }
                    return Err(e);
                }
            }
        }
        let reports = ParallelSweep::sweep(&self.coordinator, &self.store, runs, batch);
        let mut finished: Vec<BackupRun> = Vec::with_capacity(reports.len());
        let mut failure: Option<EngineError> = None;
        for rep in reports {
            self.stats.sweep_batches += rep.batches;
            self.stats.sweep_workers += 1;
            match (rep.outcome, rep.run) {
                (Ok(()), Some(run)) => finished.push(run),
                (Err(e), Some(mut run)) => {
                    // The worker parked its run (cursor and tracker held).
                    // If the damage is repairable, heal and finish the
                    // domain on this thread through the step heal loop.
                    if self.self_healing() && Engine::is_healable_backup_error(&e) {
                        match self.finish_run_healing(&mut run, batch) {
                            Ok(()) => {
                                finished.push(run);
                                continue;
                            }
                            Err(e2) => {
                                self.abort_backup(run);
                                if failure.is_none() {
                                    failure = Some(e2);
                                }
                                continue;
                            }
                        }
                    }
                    self.abort_backup(run);
                    if failure.is_none() {
                        failure = Some(EngineError::Backup(e));
                    }
                }
                (outcome, None) => {
                    // The worker panicked and took its run with it: reset
                    // the domain by hand (tracker, changed set, retention).
                    if let Ok(t) = self.coordinator.tracker(rep.domain) {
                        if t.is_active() {
                            t.finish();
                        }
                    }
                    if let Some(i) = self
                        .taken_changed
                        .iter()
                        .position(|(id, _)| *id == rep.backup_id)
                    {
                        let (_, changed) = self.taken_changed.swap_remove(i);
                        self.coordinator.restore_changed(changed);
                    }
                    self.release_backup(rep.backup_id);
                    if failure.is_none() {
                        failure = Some(EngineError::Backup(match outcome {
                            Err(e) => e,
                            Ok(()) => BackupError::BadState("sweep worker lost its run".into()),
                        }));
                    }
                }
            }
        }
        if let Some(e) = failure {
            for run in finished {
                self.abort_backup(run);
            }
            return Err(e);
        }
        finished.sort_by_key(|r| r.domain().0);
        let mut images = Vec::with_capacity(finished.len());
        for run in finished {
            images.push(self.complete_backup(run)?);
        }
        Ok(images)
    }

    /// Whether a parked sweep error is one the step heal loop can repair.
    fn is_healable_backup_error(e: &BackupError) -> bool {
        matches!(
            e,
            BackupError::Store(
                StoreError::Transient(_)
                    | StoreError::Corrupt(_)
                    | StoreError::MediaFailure(_)
                    | StoreError::Quarantined(_),
            )
        )
    }

    /// Drive a parked run to completion through the healing step loop.
    fn finish_run_healing(&mut self, run: &mut BackupRun, batch: u32) -> Result<(), EngineError> {
        while !self.backup_step_batch(run, batch)? {}
        Ok(())
    }

    /// Complete a finished backup run: logs `BackupEnd` and returns the
    /// image. The image's log suffix stays retained until
    /// [`Engine::release_backup`].
    pub fn complete_backup(&mut self, run: BackupRun) -> Result<BackupImage, EngineError> {
        let backup_id = run.backup_id();
        let mut image = run.into_image()?;
        self.log.append(RecordBody::BackupEnd { backup_id });
        self.log.force_all()?;
        image.end_lsn = self.log.durable_lsn();
        self.taken_changed.retain(|(id, _)| *id != backup_id);
        self.stats.backups_completed += 1;
        Ok(image)
    }

    /// Abort an in-flight backup run: the tracker deactivates, the log
    /// suffix is released, and (for incremental runs) the changed-page set
    /// is merged back.
    pub fn abort_backup(&mut self, run: BackupRun) {
        let backup_id = run.backup_id();
        run.abort(&self.coordinator);
        if let Some(i) = self
            .taken_changed
            .iter()
            .position(|(id, _)| *id == backup_id)
        {
            let (_, changed) = self.taken_changed.swap_remove(i);
            self.coordinator.restore_changed(changed);
        }
        self.release_backup(backup_id);
    }

    /// Stop retaining log records for a backup (it was superseded or
    /// discarded). Allows the log to truncate past its start LSN.
    pub fn release_backup(&mut self, backup_id: u64) {
        self.retained.retain(|&(id, _)| id != backup_id);
        self.refresh_media_barrier();
    }

    /// An off-line backup: quiesce (flush everything), then snapshot. The
    /// availability cost is the point of comparison; correctness is
    /// trivial.
    pub fn offline_backup(&mut self) -> Result<BackupImage, EngineError> {
        self.flush_all()?;
        let pages = self.store.snapshot()?;
        let backup_id = self.next_backup_id;
        self.next_backup_id += 1;
        let start_lsn = self.log.next_lsn();
        self.retained.push((backup_id, start_lsn));
        self.refresh_media_barrier();
        self.stats.backups_begun += 1;
        self.stats.backups_completed += 1;
        Ok(BackupImage {
            backup_id,
            start_lsn,
            end_lsn: start_lsn,
            pages,
            complete: true,
            incremental: false,
            base: None,
        })
    }

    // ------------------------------------------------------------------
    // Linked-flush backup (the "completely unrealistic" baseline of §1.3)
    // ------------------------------------------------------------------

    /// Begin a linked-flush backup: pages are copied from `S` through the
    /// engine (serialized with operation execution), and every flush during
    /// the window is synchronously mirrored into the image.
    pub fn begin_linked_backup(&mut self) -> Result<LinkedBackupRun, EngineError> {
        let backup_id = self.next_backup_id;
        self.next_backup_id += 1;
        let start_lsn = self.redo_scan_start();
        self.log.append(RecordBody::BackupBegin {
            backup_id,
            start_lsn,
        });
        self.log.force_all()?;
        self.retained.push((backup_id, start_lsn));
        self.refresh_media_barrier();
        self.stats.backups_begun += 1;
        let image = Arc::new(Mutex::new(PageImage::new()));
        self.linked_images.push((backup_id, Arc::clone(&image)));
        let mut todo = Vec::new();
        for p in 0..self.config.partitions.len() as u32 {
            let n = self.store.page_count(PartitionId(p))?;
            for i in 0..n {
                todo.push(PageId::new(p, i));
            }
        }
        Ok(LinkedBackupRun {
            backup_id,
            start_lsn,
            todo,
            cursor: 0,
            image,
        })
    }

    /// Copy up to `pages` pages for a linked backup. Returns `true` when
    /// the sweep has covered every page.
    pub fn linked_step(
        &mut self,
        run: &mut LinkedBackupRun,
        pages: usize,
    ) -> Result<bool, EngineError> {
        let end = (run.cursor + pages).min(run.todo.len());
        let mut img = run.image.lock();
        for i in run.cursor..end {
            let id = run.todo[i];
            // Copy the *stable* version: the image mirrors S exactly
            // (flushes during the window also land in the image).
            if !img.contains(id) {
                let page = self.store.read_page(id)?;
                img.put(id, page);
            }
        }
        drop(img);
        run.cursor = end;
        Ok(run.cursor == run.todo.len())
    }

    /// Complete a linked backup.
    pub fn complete_linked_backup(
        &mut self,
        run: LinkedBackupRun,
    ) -> Result<BackupImage, EngineError> {
        if run.cursor != run.todo.len() {
            return Err(EngineError::Backup(lob_backup::BackupError::BadState(
                "linked backup incomplete".into(),
            )));
        }
        self.linked_images.retain(|(id, _)| *id != run.backup_id);
        self.log.append(RecordBody::BackupEnd {
            backup_id: run.backup_id,
        });
        self.log.force_all()?;
        self.stats.backups_completed += 1;
        let pages = Arc::try_unwrap(run.image)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        Ok(BackupImage {
            backup_id: run.backup_id,
            start_lsn: run.start_lsn,
            end_lsn: self.log.durable_lsn(),
            pages,
            complete: true,
            incremental: false,
            base: None,
        })
    }

    // ------------------------------------------------------------------
    // Media recovery
    // ------------------------------------------------------------------

    /// Full media recovery: discard volatile state, replace the failed
    /// media, restore every page from the backup image, and roll forward
    /// from the image's start LSN to the current end of the log.
    pub fn media_recover(&mut self, image: &BackupImage) -> Result<RedoOutcome, EngineError> {
        self.log.force_all()?;
        self.cache.clear();
        self.graph = WriteGraph::new(self.config.graph_mode);
        self.succ.clear_all();
        for p in 0..self.config.partitions.len() as u32 {
            self.store.clear_failures(PartitionId(p))?;
        }
        image.restore_to(&self.store)?;
        let records = self.log.scan_from(image.start_lsn)?;
        let mut target = StoreRedoTarget::new(&self.store);
        let outcome = redo_scan(&records, &mut target)?;
        self.stats.media_recoveries += 1;
        self.reseed_allocator()?;
        Ok(outcome)
    }

    /// Media recovery through the parallel restore + replay path, with the
    /// workers/batch knobs from [`EngineConfig::recovery`]. See
    /// [`Engine::parallel_restore_with`].
    pub fn parallel_restore(&mut self, image: &BackupImage) -> Result<RedoOutcome, EngineError> {
        self.parallel_restore_with(image, self.config.recovery)
    }

    /// Media recovery like [`Engine::media_recover`], but with the image
    /// installed as contiguous page runs fanned across up to
    /// `recovery.workers` threads, and the roll-forward replayed through
    /// the parallel scheduler. With `workers = 1, batch = 1` the install
    /// and replay take literally the legacy per-page sequential paths; in
    /// every configuration the recovered state is identical to
    /// [`Engine::media_recover`] on the same image and log.
    pub fn parallel_restore_with(
        &mut self,
        image: &BackupImage,
        recovery: lob_recovery::RecoveryConfig,
    ) -> Result<RedoOutcome, EngineError> {
        // The same applicability checks restore_to enforces.
        if !image.complete {
            return Err(EngineError::Backup(BackupError::IncompleteImage {
                backup_id: image.backup_id,
            }));
        }
        if image.incremental {
            return Err(EngineError::Backup(BackupError::BadState(
                "cannot restore directly from an incremental image; materialize onto its base"
                    .into(),
            )));
        }
        self.log.force_all()?;
        self.cache.clear();
        self.graph = WriteGraph::new(self.config.graph_mode);
        self.succ.clear_all();
        for p in 0..self.config.partitions.len() as u32 {
            self.store.clear_failures(PartitionId(p))?;
        }
        lob_recovery::parallel_install_image(&image.pages, &self.store, recovery)?;
        let records = self.log.scan_from(image.start_lsn)?;
        let outcome = lob_recovery::parallel_redo_scan(&records, &self.store, recovery)?;
        self.stats.media_recoveries += 1;
        self.stats.parallel_restores += 1;
        self.reseed_allocator()?;
        Ok(outcome)
    }

    /// Catalog-sourced parallel restore: fetch the newest registered
    /// backup generation (whole-image batched fetch, checksum-verified)
    /// and [`Engine::parallel_restore`] from it. This is the operational
    /// "the medium died, recover from whatever backups we hold" entry
    /// point.
    pub fn parallel_restore_latest(&mut self) -> Result<RedoOutcome, EngineError> {
        self.parallel_restore_latest_with(self.config.recovery)
    }

    /// [`Engine::parallel_restore_latest`] with explicit recovery knobs.
    pub fn parallel_restore_latest_with(
        &mut self,
        recovery: lob_recovery::RecoveryConfig,
    ) -> Result<RedoOutcome, EngineError> {
        let newest = self.catalog.generations().first().copied().ok_or_else(|| {
            EngineError::Backup(BackupError::BadState(
                "no backup generation registered to restore from".into(),
            ))
        })?;
        let image = self
            .catalog
            .fetch_image(newest)
            .map_err(EngineError::Backup)?;
        self.parallel_restore_with(&image, recovery)
    }

    /// Point-in-time media recovery (paper §1: roll forward "to some
    /// designated earlier time", and §6.3's application-error discussion):
    /// restore from the image, then replay only records with `lsn <= upto`.
    ///
    /// Because the fuzzy sweep may capture page states from anywhere inside
    /// the backup window and redo can never roll *backwards*, the target
    /// must be at or after the image's completion frontier
    /// ([`BackupImage::end_lsn`]).
    pub fn media_recover_to(
        &mut self,
        image: &BackupImage,
        upto: Lsn,
    ) -> Result<RedoOutcome, EngineError> {
        if upto < image.end_lsn {
            return Err(EngineError::Discipline(format!(
                "point-in-time target {upto} precedes the backup's completion frontier {}; a fuzzy backup cannot be rolled back",
                image.end_lsn
            )));
        }
        self.log.force_all()?;
        self.cache.clear();
        self.graph = WriteGraph::new(self.config.graph_mode);
        self.succ.clear_all();
        for p in 0..self.config.partitions.len() as u32 {
            self.store.clear_failures(PartitionId(p))?;
        }
        image.restore_to(&self.store)?;
        let records: Vec<_> = self
            .log
            .scan_from(image.start_lsn)?
            .into_iter()
            .filter(|r| r.lsn <= upto)
            .collect();
        let mut target = StoreRedoTarget::new(&self.store);
        let outcome = redo_scan(&records, &mut target)?;
        self.stats.media_recoveries += 1;
        self.reseed_allocator()?;
        Ok(outcome)
    }

    /// Install the operations pending on `page` **without flushing it**
    /// (paper §5.3: "Extra logging can also substitute for flushing. Should
    /// X be dirty in the cache, but hot, ... logging it to install its
    /// update operations in S treats S the way we have been treating B.").
    ///
    /// Every object in the node's flush set is identity-logged (advancing
    /// its rLSN so the log can truncate past the installed operations); the
    /// page stays dirty and hot in the cache. Ancestor nodes are installed
    /// first, normally (they must reach `S` in write-graph order anyway).
    pub fn install_without_flush(&mut self, page: PageId) -> Result<(), EngineError> {
        let Some(node) = self.graph.node_of(page) else {
            return Ok(()); // nothing pending
        };
        let plan = self.graph.flush_plan(node)?;
        let (ancestors, target) = plan.split_at(plan.len() - 1);
        for &n in ancestors {
            self.install_one_node(n)?;
        }
        let node = target[0];
        let vars: Vec<PageId> = self.graph.vars(node)?.iter().copied().collect();
        for &v in &vars {
            let value: Bytes = self
                .cache
                .peek(v)
                .ok_or_else(|| EngineError::Internal(format!("hot page {v} not resident")))?
                .data()
                .clone();
            let body = OpBody::IdentityWrite { target: v, value };
            let ilsn = self.log.append(RecordBody::Op(body.clone()));
            self.stats.iwof_records += 1;
            // The identity write steals `v` into its own single-object
            // node, which stays in the graph until `v` is eventually
            // flushed; meanwhile the logged value covers recovery and the
            // rLSN advances.
            self.graph.add_op(ilsn, &body);
            let fresh = self
                .cache
                .peek(v)
                .ok_or_else(|| {
                    EngineError::Internal(format!("page {v} not resident at identity write"))
                })?
                .with_lsn(ilsn);
            self.cache.put_dirty(v, fresh);
            self.cache.advance_rlsn(v, ilsn);
        }
        // All objects stolen: the node installs without any page write.
        self.graph.install_node(node)?;
        self.stats.nodes_installed_free += 1;
        self.log.force_all()?;
        Ok(())
    }

    /// Audit a backup: restore it into a scratch store, roll it forward
    /// over the live log, and compare every page against the engine's
    /// current logical state (cache over store). Returns the mismatching
    /// pages (empty = the backup is good).
    ///
    /// This is the operational "can I actually recover from this?" check a
    /// production system runs before trusting an image.
    pub fn audit_backup(&mut self, image: &BackupImage) -> Result<Vec<PageId>, EngineError> {
        let scratch = StableStore::new(
            StoreConfig {
                page_size: self.config.page_size,
            },
            &self.config.partitions,
        );
        image.restore_to(&scratch).map_err(EngineError::Backup)?;
        let records = self.log.scan_from(image.start_lsn)?;
        let mut target = StoreRedoTarget::new(&scratch);
        redo_scan(&records, &mut target)?;
        let mut mismatches = Vec::new();
        for p in 0..self.config.partitions.len() as u32 {
            let n = self.store.page_count(PartitionId(p))?;
            for i in 0..n {
                let id = PageId::new(p, i);
                let live = self.cache.get(id, &self.store)?;
                let recovered = scratch.read_page(id)?;
                if live.data() != recovered.data() {
                    mismatches.push(id);
                }
            }
        }
        Ok(mismatches)
    }

    /// Partition-grained media recovery (§6.3): restore only the failed
    /// partition's pages, then roll forward. Sound only when operations are
    /// partition-confined, i.e. under per-partition tracking.
    pub fn media_recover_partition(
        &mut self,
        image: &BackupImage,
        partition: PartitionId,
    ) -> Result<RedoOutcome, EngineError> {
        if !matches!(self.config.tracking, Tracking::PerPartition) {
            return Err(EngineError::Discipline(
                "partition media recovery requires per-partition tracking \
                 (operations confined to one partition)"
                    .into(),
            ));
        }
        if !image.complete {
            return Err(EngineError::Backup(
                lob_backup::BackupError::IncompleteImage {
                    backup_id: image.backup_id,
                },
            ));
        }
        self.log.force_all()?;
        self.cache.clear();
        self.graph = WriteGraph::new(self.config.graph_mode);
        self.succ.clear_all();
        self.store.clear_failures(partition)?;
        for (id, page) in image.pages.iter() {
            if id.partition == partition {
                self.store.write_page(id, page.clone())?;
            }
        }
        let records = self.log.scan_from(image.start_lsn)?;
        // Replay only partition-confined records touching this partition;
        // the LSN test makes replaying the rest harmless, but restricting
        // the scan shows the §6.3 point: the partition is the recovery
        // unit.
        let relevant: Vec<_> = records
            .into_iter()
            .filter(|r| match &r.body {
                RecordBody::Op(op) => op
                    .writeset()
                    .iter()
                    .chain(op.readset().iter())
                    .any(|p| p.partition == partition),
                _ => false,
            })
            .collect();
        let mut target = StoreRedoTarget::new(&self.store);
        let outcome = redo_scan(&relevant, &mut target)?;
        self.stats.media_recoveries += 1;
        self.reseed_allocator()?;
        Ok(outcome)
    }

    // ------------------------------------------------------------------
    // Self-healing media recovery (online repair from the backup chain)
    // ------------------------------------------------------------------

    /// The backup-generation catalog (shared with repair drills). Empty
    /// catalog = self-healing disengaged.
    pub fn catalog(&self) -> &Arc<BackupCatalog> {
        &self.catalog
    }

    /// Register a completed backup image as the newest repair generation.
    /// From this point on, reads self-heal (see [`Engine::read_page`]).
    pub fn register_backup_generation(&mut self, image: BackupImage) -> Result<(), EngineError> {
        Ok(self.catalog.register(image)?)
    }

    /// Retire a generation from the repair catalog, returning its image.
    pub fn retire_backup_generation(&mut self, backup_id: u64) -> Result<BackupImage, EngineError> {
        Ok(self.catalog.retire(backup_id)?)
    }

    /// Pages currently held out of service awaiting repair.
    pub fn quarantined_pages(&self) -> Vec<PageId> {
        self.store.quarantined_pages()
    }

    /// The deterministic backoff schedule for reads involving `id`: seeded
    /// from the page identity, so drills replay identically and distinct
    /// pages jitter differently. Never consults a clock.
    fn repair_backoff(&self, id: PageId) -> BackoffSchedule {
        let seed = 0x10B_5EED ^ (u64::from(id.partition.0) << 32) ^ u64::from(id.index);
        BackoffSchedule::new(seed, REPAIR_FETCH_ATTEMPTS)
    }

    /// Repair one damaged page online, while every other page keeps
    /// serving.
    ///
    /// The page is quarantined first (no reader may see the bad bytes
    /// while repair runs; the scrub evidence, if any, is captured before
    /// that). Then:
    ///
    /// * If the cache holds a **dirty** copy, that copy is newer than
    ///   anything any backup holds — the normal write-graph-ordered flush
    ///   installs it, and the full overwrite heals the slot.
    /// * Otherwise the page's current value is regenerated from the backup
    ///   chain: for each generation, newest first, compute the
    ///   **dependency closure** of the page over the generation's log
    ///   suffix, fetch backup-vintage copies of the whole closure
    ///   (checksum-verified; transient errors retried under the
    ///   deterministic backoff), replay the closure-filtered suffix into a
    ///   **scratch** target, and install only the regenerated target page.
    ///   Replaying into a scratch — never `S` itself — keeps repair atomic
    ///   with respect to a concurrently running backup sweep: no
    ///   rolled-back intermediate state ever exists in `S`. A corrupt,
    ///   missing, or log-truncated generation fails over to the next older
    ///   one.
    ///
    /// The log is forced first, so every record the closure replay uses —
    /// and therefore every value repair installs into `S` — is durable
    /// (WAL holds). Since a clean page's logged writers are all installed,
    /// the replay regenerates exactly the value `S` held before the
    /// damage: repair never moves `S` ahead of the write-graph order.
    ///
    /// If every generation is exhausted the page *stays quarantined* and
    /// the typed [`EngineError::Unrepairable`] is returned; other pages
    /// and partitions keep serving.
    pub fn repair_page(&mut self, id: PageId) -> Result<RepairReport, EngineError> {
        // Scrub evidence first — verify_page consults no fault event and
        // skips quarantined slots, so capture it before quarantining.
        let corruption = self.store.verify_page(id)?;
        self.store.quarantine_page(id)?;
        self.stats.quarantines += 1;

        if self.cache.is_dirty(id) {
            // The cache holds the newest value; flush it through the
            // normal path (ancestors first, WAL-checked). Generation 0 in
            // the report means "healed from the resident dirty copy".
            self.store.clear_page_failure(id)?;
            self.flush_page(id)?;
            self.stats.repairs += 1;
            return Ok(RepairReport {
                page: id,
                closure: vec![id],
                generation_used: 0,
                generations_tried: Vec::new(),
                start_lsn: Lsn::NULL,
                records_replayed: 0,
                records_scanned: 0,
                index_used: false,
                retries: 0,
                backoff_ticks: 0,
                corruption,
            });
        }

        self.log.force_all()?;
        let backoff = self.repair_backoff(id);
        let mut generations_tried = Vec::new();
        let mut retries = 0u32;
        let mut backoff_ticks = 0u64;
        'generations: for backup_id in self.catalog.generations() {
            generations_tried.push(backup_id);
            let start_lsn = self.catalog.start_lsn(backup_id)?;
            // A generation with a page-indexed archive serves the closure
            // from sorted per-page runs instead of a full suffix scan —
            // fewer records examined, and the report's telemetry says so.
            // Archive corruption or exhausted retries fall back to the
            // scan of the *same* generation.
            let indexed = if self.catalog.has_archive(backup_id) {
                self.archive_closure(backup_id, id, &backoff, &mut retries, &mut backoff_ticks)?
            } else {
                None
            };
            let (records, closure, records_scanned, index_used) = match indexed {
                Some((records, closure, scanned)) => {
                    self.stats.repair_index_hits += 1;
                    (records, closure, scanned, true)
                }
                None => {
                    // The generation's media-recovery log suffix. A
                    // truncated suffix means the generation was released —
                    // fail over (older generations need even earlier
                    // records, but the uniform loop keeps the report
                    // honest about what was tried).
                    let records = {
                        let mut attempt = 0u32;
                        loop {
                            match self.log.scan_from(start_lsn) {
                                Ok(r) => break r,
                                Err(LogError::Transient) => {
                                    attempt += 1;
                                    if attempt >= backoff.max_attempts {
                                        return Err(EngineError::Log(LogError::Transient));
                                    }
                                    backoff_ticks += backoff.delay_ticks(attempt - 1);
                                    retries += 1;
                                    self.stats.transient_retries += 1;
                                }
                                Err(LogError::Truncated { .. }) => {
                                    self.stats.repair_fallbacks += 1;
                                    continue 'generations;
                                }
                                Err(e) => return Err(EngineError::Log(e)),
                            }
                        }
                    };
                    let targets: BTreeSet<PageId> = [id].into();
                    let closure = dependency_closure(&records, &targets);
                    let scanned = records.len() as u64;
                    (records, closure, scanned, false)
                }
            };
            // Backup-vintage copies of the whole closure, from this
            // generation only (mixing generations would mix vintages).
            let mut seed_pages: BTreeMap<PageId, Page> = BTreeMap::new();
            for &p in &closure {
                let mut attempt = 0u32;
                loop {
                    match self.catalog.fetch_page(backup_id, p) {
                        Ok(page) => {
                            seed_pages.insert(p, page);
                            break;
                        }
                        Err(BackupError::TransientImage { .. }) => {
                            attempt += 1;
                            if attempt >= backoff.max_attempts {
                                self.stats.repair_fallbacks += 1;
                                continue 'generations;
                            }
                            backoff_ticks += backoff.delay_ticks(attempt - 1);
                            retries += 1;
                            self.stats.transient_retries += 1;
                        }
                        Err(BackupError::CorruptImage { .. })
                        | Err(BackupError::MissingPage { .. }) => {
                            self.stats.repair_fallbacks += 1;
                            continue 'generations;
                        }
                        Err(e) => return Err(EngineError::Backup(e)),
                    }
                }
            }
            let (outcome, mut pages) = replay_closure(seed_pages, &records, &closure)?;
            let repaired = pages.remove(&id).ok_or_else(|| {
                EngineError::Internal(format!("repair replay lost target page {id}"))
            })?;
            // A resident clean copy is the last flushed state — exactly
            // what the closure replay rebuilds. Disagreement is a bug.
            if let Some(cached) = self.cache.peek(id) {
                if cached.data() != repaired.data() {
                    return Err(EngineError::Internal(format!(
                        "repair of {id} disagrees with the clean cached copy"
                    )));
                }
            }
            // Install: clear a single-page failure marker (replacement
            // sector), overwrite (the full write heals the quarantine),
            // and verify the slot end-to-end — page_lsn re-checks failure,
            // quarantine, and checksum without drawing a fault event.
            self.store.clear_page_failure(id)?;
            self.store.write_page(id, repaired.clone())?;
            let lsn = self.store.page_lsn(id)?;
            if lsn != repaired.lsn() {
                return Err(EngineError::Internal(format!(
                    "repaired page {id} reads back pageLSN {lsn}, expected {}",
                    repaired.lsn()
                )));
            }
            self.stats.repairs += 1;
            return Ok(RepairReport {
                page: id,
                closure: closure.into_iter().collect(),
                generation_used: backup_id,
                generations_tried,
                start_lsn,
                records_replayed: outcome.replayed,
                records_scanned,
                index_used,
                retries,
                backoff_ticks,
                corruption,
            });
        }
        // Every generation exhausted: the page stays quarantined so no
        // reader ever sees the damaged bytes. A future generation, a full
        // overwrite, or media recovery can still bring it back.
        Err(EngineError::Unrepairable(id))
    }

    /// Repair every damaged or quarantined page of one partition (scrub
    /// plus quarantine set), one online repair each. Other partitions are
    /// untouched — the partition is the paper's §6.3 recovery unit, and
    /// this is its online analogue.
    pub fn repair_partition(
        &mut self,
        partition: PartitionId,
    ) -> Result<Vec<RepairReport>, EngineError> {
        let scrub = self.store.verify_pages();
        let mut targets: BTreeSet<PageId> = scrub
            .pages()
            .into_iter()
            .filter(|p| p.partition == partition)
            .collect();
        targets.extend(
            self.store
                .quarantined_pages()
                .into_iter()
                .filter(|p| p.partition == partition),
        );
        let mut reports = Vec::with_capacity(targets.len());
        for id in targets {
            reports.push(self.repair_page(id)?);
        }
        Ok(reports)
    }

    /// The dependency closure of `target` over one generation's
    /// page-indexed archive: catch the archive up to the durable log end,
    /// then run the closure fixpoint over per-page runs (every fetched
    /// record writes its run's page, so its read and write sets join the
    /// closure — the fixpoint reproduces `dependency_closure` over the
    /// full suffix while examining only the runs the target pulls in).
    /// Returns the merged closure-filtered suffix, the closure, and the
    /// number of records examined — or `None` to fall back to the
    /// full-suffix scan of the same generation.
    #[allow(clippy::type_complexity)]
    fn archive_closure(
        &mut self,
        backup_id: u64,
        target: PageId,
        backoff: &BackoffSchedule,
        retries: &mut u32,
        backoff_ticks: &mut u64,
    ) -> Result<Option<(Vec<LogRecord>, BTreeSet<PageId>, u64)>, EngineError> {
        // Catch up first: records past the watermark are indexed now, so
        // the runs cover the full durable suffix. A truncated tail means
        // the archive fell behind a released suffix — scan path's problem.
        let from = match self.catalog.archive_watermark(backup_id)? {
            Some(w) => w,
            None => return Ok(None),
        };
        let tail = {
            let mut attempt = 0u32;
            loop {
                match self.log.scan_from(from) {
                    Ok(t) => break t,
                    Err(LogError::Transient) => {
                        attempt += 1;
                        if attempt >= backoff.max_attempts {
                            self.stats.repair_index_fallbacks += 1;
                            return Ok(None);
                        }
                        *backoff_ticks += backoff.delay_ticks(attempt - 1);
                        *retries += 1;
                        self.stats.transient_retries += 1;
                    }
                    Err(LogError::Truncated { .. }) => {
                        self.stats.repair_index_fallbacks += 1;
                        return Ok(None);
                    }
                    Err(e) => return Err(EngineError::Log(e)),
                }
            }
        };
        // The catch-up indexes each record once per generation — amortized
        // maintenance, not per-repair examination — so it stays out of
        // `records_scanned` (the suffix scan re-examines its records on
        // every repair; that asymmetry is the point of the telemetry).
        self.catalog.extend_archive(backup_id, &tail)?;
        let mut scanned = 0u64;

        let control =
            match self.fetch_archive_run(backup_id, None, backoff, retries, backoff_ticks)? {
                Some(run) => run,
                None => return Ok(None),
            };
        scanned += control.len() as u64;
        let mut closure: BTreeSet<PageId> = [target].into();
        let mut frontier = vec![target];
        let mut runs: BTreeMap<PageId, Vec<LogRecord>> = BTreeMap::new();
        while let Some(id) = frontier.pop() {
            if runs.contains_key(&id) {
                continue;
            }
            let run = match self.fetch_archive_run(
                backup_id,
                Some(id),
                backoff,
                retries,
                backoff_ticks,
            )? {
                Some(run) => run,
                None => return Ok(None),
            };
            scanned += run.len() as u64;
            for rec in &run {
                if let Some(op) = rec.body.as_op() {
                    for touched in op.readset().into_iter().chain(op.writeset()) {
                        if closure.insert(touched) {
                            frontier.push(touched);
                        }
                    }
                }
            }
            runs.insert(id, run);
        }
        let mut all_runs: Vec<Vec<LogRecord>> = runs.into_values().collect();
        all_runs.push(control);
        Ok(Some((merge_runs(all_runs), closure, scanned)))
    }

    /// One archive run (`Some(page)`) or the control run (`None`),
    /// retried under backoff on transient faults. Corruption or exhausted
    /// retries return `Ok(None)` — "fall back to the suffix scan"; an
    /// injected crash propagates.
    fn fetch_archive_run(
        &mut self,
        backup_id: u64,
        page: Option<PageId>,
        backoff: &BackoffSchedule,
        retries: &mut u32,
        backoff_ticks: &mut u64,
    ) -> Result<Option<Vec<LogRecord>>, EngineError> {
        let mut attempt = 0u32;
        loop {
            let fetched = match page {
                Some(id) => self.catalog.fetch_records(backup_id, id),
                None => self.catalog.fetch_control_records(backup_id),
            };
            match fetched {
                Ok(run) => return Ok(Some(run)),
                Err(BackupError::TransientArchive { .. }) => {
                    attempt += 1;
                    if attempt >= backoff.max_attempts {
                        self.stats.repair_index_fallbacks += 1;
                        return Ok(None);
                    }
                    *backoff_ticks += backoff.delay_ticks(attempt - 1);
                    *retries += 1;
                    self.stats.transient_retries += 1;
                }
                Err(BackupError::CorruptArchive { .. } | BackupError::NoArchive(_)) => {
                    self.stats.repair_index_fallbacks += 1;
                    return Ok(None);
                }
                Err(e) => return Err(EngineError::Backup(e)),
            }
        }
    }

    // ------------------------------------------------------------------
    // Instant restore (serve during media recovery)
    // ------------------------------------------------------------------

    /// Catch one generation's page-indexed archive up to the durable end
    /// of the log: force, scan from the archive's watermark (its start
    /// LSN if no archive exists yet — this call *creates* the archive),
    /// and index the tail. Returns the new watermark. Backups keep their
    /// archives current by calling this as the log grows; instant restore
    /// calls it for every archived generation when an epoch begins.
    pub fn extend_backup_archive(&mut self, backup_id: u64) -> Result<Lsn, EngineError> {
        self.log.force_all()?;
        let from = match self.catalog.archive_watermark(backup_id)? {
            Some(w) => w,
            None => self.catalog.start_lsn(backup_id)?,
        };
        let records = self.log.scan_from(from)?;
        Ok(self.catalog.extend_archive(backup_id, &records)?)
    }

    /// Catch every archived generation's archive up to the durable log
    /// end; a catalog with no archive at all gets one built on the newest
    /// generation (the full suffix is indexed in one pass).
    fn catch_up_archives(&mut self) -> Result<(), EngineError> {
        let gens = self.catalog.generations();
        if gens.is_empty() {
            return Err(EngineError::Backup(BackupError::BadState(
                "no backup generation registered to restore from".into(),
            )));
        }
        if gens.iter().any(|&g| self.catalog.has_archive(g)) {
            for backup_id in gens {
                if self.catalog.has_archive(backup_id) {
                    self.extend_backup_archive(backup_id)?;
                }
            }
        } else if let Some(&newest) = gens.first() {
            self.extend_backup_archive(newest)?;
        }
        Ok(())
    }

    /// Begin an instant-restore epoch over the current failure set: the
    /// engine keeps serving *during* media recovery. Every failed
    /// partition becomes a restore segment; reads and writes gate on
    /// their own segment's prioritized restore
    /// ([`Engine::ensure_segment`] inside [`Engine::read_page`] and
    /// [`Engine::execute`]) while [`Engine::instant_restore_step`] sweeps
    /// the rest in the background. The epoch closes itself — verified
    /// against a sequential witness restore — when the last segment
    /// comes back.
    pub fn begin_instant_restore(&mut self) -> Result<(), EngineError> {
        if self.instant.is_some() {
            return Err(EngineError::Discipline(
                "an instant-restore epoch is already active".into(),
            ));
        }
        self.catch_up_archives()?;
        self.start_instant_epoch(false)
    }

    /// Reboot re-entry after a crash mid-epoch: every partition becomes a
    /// `Failed` segment re-derived from archive plus image (a crash may
    /// have left any partition with a half-installed — but always
    /// correctly-versioned — page set, and the flush-order rule bounds
    /// every store page LSN by the durable end, so unconditional
    /// re-install of the full replay is sound). Call after
    /// [`Engine::crash`] instead of [`Engine::recover`] when an epoch was
    /// in flight; normal redo is subsumed by the full re-derivation.
    pub fn recover_instant(&mut self) -> Result<(), EngineError> {
        if self.instant.is_some() {
            return Err(EngineError::Discipline(
                "an instant-restore epoch is already active".into(),
            ));
        }
        self.catch_up_archives()?;
        self.stats.instant_reboots += 1;
        self.stats.recoveries += 1;
        self.start_instant_epoch(true)
    }

    fn start_instant_epoch(&mut self, all_segments: bool) -> Result<(), EngineError> {
        let r = InstantRestore::begin(
            Arc::clone(&self.store),
            Arc::clone(&self.catalog),
            self.config.recovery.batch.max(1),
            0x1257_C0DE,
            REPAIR_FETCH_ATTEMPTS,
            self.hook.clone(),
            all_segments,
        )
        .map_err(EngineError::from)?;
        self.stats.instant_epochs += 1;
        self.instant = Some(r);
        // Nothing failed → the epoch completes (and verifies) right away.
        self.maybe_complete_instant()
    }

    /// Whether an instant-restore epoch is in flight.
    pub fn instant_restore_active(&self) -> bool {
        self.instant.is_some()
    }

    /// The in-flight epoch's state for one segment (`None` outside an
    /// epoch or for an unknown partition).
    pub fn instant_segment_state(&self, p: PartitionId) -> Option<lob_recovery::SegmentState> {
        self.instant.as_ref().and_then(|r| r.segment_state(p))
    }

    /// Segments not yet restored (0 outside an epoch).
    pub fn instant_pending(&self) -> usize {
        self.instant.as_ref().map_or(0, |r| r.pending())
    }

    /// The in-flight epoch's counters (`None` outside an epoch).
    pub fn instant_restore_stats(&self) -> Option<InstantStats> {
        self.instant.as_ref().map(|r| r.stats())
    }

    /// Gate one partition on its segment's restore during an epoch; a
    /// no-op in normal operation. A request against a not-yet-restored
    /// segment jumps the sweep queue (foreground priority) and blocks
    /// only for that one segment's restore.
    fn ensure_segment(&mut self, p: PartitionId) -> Result<(), EngineError> {
        let Some(r) = self.instant.as_mut() else {
            return Ok(());
        };
        r.ensure(p).map_err(EngineError::from)?;
        self.maybe_complete_instant()
    }

    /// One background sweep step of the in-flight epoch: restore the next
    /// queued segment. Returns the segment restored, or `None` when no
    /// epoch is active. The engine thread interleaves these with
    /// foreground work — that is the "serving during recovery".
    pub fn instant_restore_step(&mut self) -> Result<Option<PartitionId>, EngineError> {
        let Some(r) = self.instant.as_mut() else {
            return Ok(None);
        };
        let stepped = r.step().map_err(EngineError::from)?;
        if stepped.is_none() && self.instant.as_ref().is_some_and(|r| !r.finished()) {
            return Err(EngineError::Internal(
                "instant-restore queue drained with segments still failed".into(),
            ));
        }
        self.maybe_complete_instant()?;
        Ok(stepped)
    }

    /// Drive the background sweep until the epoch completes (and is
    /// verified + closed). Drill and bench convenience.
    pub fn instant_restore_drain(&mut self) -> Result<(), EngineError> {
        while self.instant.is_some() {
            self.instant_restore_step()?;
        }
        Ok(())
    }

    /// If every segment is restored, verify the epoch against a
    /// sequential witness restore, fold its counters into the engine
    /// stats, and return to normal operation.
    fn maybe_complete_instant(&mut self) -> Result<(), EngineError> {
        if !self.instant.as_ref().is_some_and(|r| r.finished()) {
            return Ok(());
        }
        self.verify_instant_restore()?;
        let Some(r) = self.instant.take() else {
            return Ok(());
        };
        let s = r.stats();
        self.stats.instant_completions += 1;
        self.stats.instant_on_demand += s.on_demand_restores;
        self.stats.instant_swept += s.sweep_restores;
        self.stats.transient_retries += s.transient_retries;
        self.stats.media_recoveries += 1;
        self.reseed_allocator()?;
        self.truncate_log()?;
        Ok(())
    }

    /// The completion witness — the differential oracle in production
    /// form: flush everything (so `S` sits at its pageLSN frontier), then
    /// sequentially restore the newest fetchable generation into a
    /// *scratch* store, roll it forward over the full suffix, and demand
    /// byte-for-byte agreement with what the per-segment restores (plus
    /// subsequent flushes) produced. Divergence is an engine bug,
    /// surfaced loudly.
    fn verify_instant_restore(&mut self) -> Result<(), EngineError> {
        self.log.force_all()?;
        self.flush_all()?;
        let image = self.fetch_witness_image()?;
        let scratch = StableStore::new(
            StoreConfig {
                page_size: self.config.page_size,
            },
            &self.config.partitions,
        );
        image.restore_to(&scratch)?;
        let records = self.log.scan_from(image.start_lsn)?;
        let mut target = StoreRedoTarget::new(&scratch);
        redo_scan(&records, &mut target)?;
        let live = self.store.snapshot()?;
        let witness = scratch.snapshot()?;
        for (id, expect) in witness.iter() {
            match live.get(id) {
                Some(got) if got == expect => {}
                _ => {
                    return Err(EngineError::Internal(format!(
                        "instant restore diverged from the sequential witness at {id}"
                    )))
                }
            }
        }
        Ok(())
    }

    /// The newest generation whose complete image is fetchable (transient
    /// reads retried, corrupt or incremental generations skipped) — the
    /// witness baseline.
    fn fetch_witness_image(&mut self) -> Result<BackupImage, EngineError> {
        let backoff = BackoffSchedule::new(0x717_1255, REPAIR_FETCH_ATTEMPTS);
        'generations: for backup_id in self.catalog.generations() {
            let mut attempt = 0u32;
            loop {
                match self.catalog.fetch_image(backup_id) {
                    Ok(image) => {
                        if image.complete && !image.incremental {
                            return Ok(image);
                        }
                        continue 'generations;
                    }
                    Err(BackupError::TransientImage { .. }) => {
                        attempt += 1;
                        if attempt >= backoff.max_attempts {
                            continue 'generations;
                        }
                        self.stats.transient_retries += 1;
                    }
                    Err(BackupError::CorruptImage { .. } | BackupError::MissingPage { .. }) => {
                        continue 'generations
                    }
                    Err(e) => return Err(EngineError::Backup(e)),
                }
            }
        }
        Err(EngineError::Backup(BackupError::BadState(
            "no fetchable complete generation for the instant-restore witness".into(),
        )))
    }
}

/// Whether a store error is one the self-healing read path can fix (retry
/// or online repair) rather than a structural failure.
fn is_healable_read_err(e: &StoreError) -> bool {
    matches!(
        e,
        StoreError::Transient(_)
            | StoreError::Corrupt(_)
            | StoreError::MediaFailure(_)
            | StoreError::Quarantined(_)
    )
}

/// Surface quarantine as its typed engine error; everything else wraps.
pub(crate) fn lift_store_err(e: StoreError) -> EngineError {
    match e {
        StoreError::Quarantined(p) => EngineError::Quarantined(p),
        e => EngineError::Store(e),
    }
}

pub(crate) fn lift_cache_err(e: CacheError) -> EngineError {
    match e {
        CacheError::Store(s) => lift_store_err(s),
        e => EngineError::Cache(e),
    }
}

/// An in-progress linked-flush backup (baseline).
pub struct LinkedBackupRun {
    backup_id: u64,
    start_lsn: Lsn,
    todo: Vec<PageId>,
    cursor: usize,
    image: Arc<Mutex<PageImage>>,
}

impl LinkedBackupRun {
    /// The run's backup id.
    pub fn backup_id(&self) -> u64 {
        self.backup_id
    }

    /// Pages copied so far.
    pub fn pages_copied(&self) -> usize {
        self.cursor
    }

    /// Total pages to copy.
    pub fn pages_total(&self) -> usize {
        self.todo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lob_ops::LogicalOp;

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn engine() -> Engine {
        Engine::new(EngineConfig::small()).unwrap()
    }

    fn phys(i: u32, fill: u8) -> OpBody {
        OpBody::PhysicalWrite {
            target: pid(i),
            value: Bytes::from(vec![fill; 256]),
        }
    }

    fn copy(src: u32, dst: u32) -> OpBody {
        OpBody::Logical(LogicalOp::Copy {
            src: pid(src),
            dst: pid(dst),
        })
    }

    #[test]
    fn execute_dirties_and_tracks() {
        let mut e = engine();
        let lsn = e.execute(phys(0, 7)).unwrap();
        assert_eq!(lsn, Lsn(1));
        assert!(e.cache().is_dirty(pid(0)));
        assert_eq!(e.graph().node_count(), 1);
        assert_eq!(e.read_page(pid(0)).unwrap().data()[0], 7);
        // Not yet in S.
        assert!(e.store().read_page(pid(0)).unwrap().lsn().is_null());
    }

    #[test]
    fn flush_page_installs_and_persists() {
        let mut e = engine();
        e.execute(phys(0, 7)).unwrap();
        e.flush_page(pid(0)).unwrap();
        assert!(!e.cache().is_dirty(pid(0)));
        assert!(e.graph().is_empty());
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 7);
        assert_eq!(e.stats().pages_flushed, 1);
    }

    #[test]
    fn flush_respects_write_graph_order() {
        let mut e = engine();
        e.execute(phys(0, 1)).unwrap();
        e.flush_page(pid(0)).unwrap();
        // copy(0 → 1), then overwrite 0: node(1) must flush before node(0).
        e.execute(copy(0, 1)).unwrap();
        e.execute(phys(0, 2)).unwrap();
        // Flushing page 0 must first flush page 1.
        e.flush_page(pid(0)).unwrap();
        assert_eq!(e.store().read_page(pid(1)).unwrap().data()[0], 1);
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 2);
        assert!(e.graph().is_empty());
    }

    #[test]
    fn crash_before_flush_recovers_via_log() {
        let mut e = engine();
        e.execute(phys(0, 9)).unwrap();
        e.execute(copy(0, 1)).unwrap();
        e.force_log().unwrap();
        e.crash();
        assert!(e.store().read_page(pid(1)).unwrap().lsn().is_null());
        let out = e.recover().unwrap();
        assert_eq!(out.replayed, 2);
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 9);
        assert_eq!(e.store().read_page(pid(1)).unwrap().data()[0], 9);
    }

    #[test]
    fn crash_loses_unforced_tail() {
        let mut e = engine();
        e.execute(phys(0, 9)).unwrap();
        // Not forced: the operation is lost at the crash.
        e.crash();
        let out = e.recover().unwrap();
        assert_eq!(out.replayed + out.skipped, 0);
        assert!(e.store().read_page(pid(0)).unwrap().lsn().is_null());
    }

    #[test]
    fn wal_protocol_is_automatic_on_flush() {
        let mut e = engine();
        e.execute(phys(0, 9)).unwrap();
        // flush_page forces the log itself; no explicit force needed.
        e.flush_page(pid(0)).unwrap();
        e.crash();
        let out = e.recover().unwrap();
        assert_eq!(out.skipped, 1, "already installed");
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 9);
    }

    #[test]
    fn flush_all_drains_and_truncates() {
        let mut e = engine();
        for i in 0..8 {
            e.execute(phys(i, i as u8)).unwrap();
            e.execute(copy(i, i + 8)).unwrap();
        }
        e.flush_all().unwrap();
        assert!(e.graph().is_empty());
        assert_eq!(e.cache().dirty_count(), 0);
        assert_eq!(e.log().truncation(), e.log().next_lsn());
    }

    #[test]
    fn tree_discipline_enforced() {
        let mut e = Engine::new(EngineConfig {
            discipline: Discipline::Tree,
            ..EngineConfig::small()
        })
        .unwrap();
        // Mix is irreducibly general → rejected.
        let mix = OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(0)],
            writes: vec![pid(1)],
            salt: 0,
        });
        assert!(matches!(e.execute(mix), Err(EngineError::Discipline(_))));
        // Copy into a fresh page is a write-new tree op → accepted.
        e.execute(phys(0, 1)).unwrap();
        e.execute(copy(0, 1)).unwrap();
        // Copy onto an already-updated page → rejected.
        assert!(matches!(
            e.execute(copy(0, 1)),
            Err(EngineError::Discipline(_))
        ));
    }

    #[test]
    fn page_oriented_discipline_rejects_logical() {
        let mut e = Engine::new(EngineConfig {
            discipline: Discipline::PageOriented,
            ..EngineConfig::small()
        })
        .unwrap();
        assert!(matches!(
            e.execute(copy(0, 1)),
            Err(EngineError::Discipline(_))
        ));
        e.execute(phys(0, 1)).unwrap();
    }

    #[test]
    fn alloc_pages_are_fresh_and_sequential() {
        let mut e = engine();
        let a = e.alloc_page(PartitionId(0)).unwrap();
        let b = e.alloc_page(PartitionId(0)).unwrap();
        assert_eq!(a, pid(0));
        assert_eq!(b, pid(1));
        e.reserve_pages(PartitionId(0), 10);
        assert_eq!(e.alloc_page(PartitionId(0)).unwrap(), pid(10));
    }

    #[test]
    fn online_backup_with_iwof_supports_media_recovery() {
        let mut e = engine();
        // Dirty some state and flush it so S has content.
        for i in 0..8 {
            e.execute(phys(i, i as u8 + 1)).unwrap();
        }
        e.flush_all().unwrap();

        let mut run = e.begin_backup(4).unwrap();
        // Interleave: update pages already copied (forcing Done/Doubt
        // flushes → Iw/oF).
        e.backup_step(&mut run).unwrap(); // copies pages 0..16
        e.execute(copy(0, 20)).unwrap();
        e.execute(phys(0, 99)).unwrap();
        e.flush_page(pid(0)).unwrap(); // page 0 is Done → Iw/oF
        assert!(e.stats().iwof_records >= 1, "Done flush logged identity");
        while !e.backup_step(&mut run).unwrap() {}
        let image = e.complete_backup(run).unwrap();

        // More updates after the backup.
        e.execute(phys(5, 55)).unwrap();
        e.flush_page(pid(5)).unwrap();

        // Media failure → restore → roll forward.
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.media_recover(&image).unwrap();
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 99);
        assert_eq!(e.store().read_page(pid(20)).unwrap().data()[0], 1);
        assert_eq!(e.store().read_page(pid(5)).unwrap().data()[0], 55);
    }

    #[test]
    fn offline_backup_restores_exactly() {
        let mut e = engine();
        for i in 0..4 {
            e.execute(phys(i, 0xA0 + i as u8)).unwrap();
        }
        let image = e.offline_backup().unwrap();
        e.execute(phys(0, 0xFF)).unwrap();
        e.flush_all().unwrap();
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.media_recover(&image).unwrap();
        // Roll-forward reapplies the later update too.
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 0xFF);
        assert_eq!(e.store().read_page(pid(1)).unwrap().data()[0], 0xA1);
    }

    #[test]
    fn linked_backup_mirrors_flushes() {
        let mut e = engine();
        for i in 0..4 {
            e.execute(phys(i, 1 + i as u8)).unwrap();
        }
        e.flush_all().unwrap();
        let mut run = e.begin_linked_backup().unwrap();
        e.linked_step(&mut run, 10).unwrap();
        // A flush during the window lands in the image too.
        e.execute(phys(0, 0x77)).unwrap();
        e.flush_page(pid(0)).unwrap();
        while !e.linked_step(&mut run, 16).unwrap() {}
        let image = e.complete_linked_backup(run).unwrap();
        assert_eq!(
            image.pages.get(pid(0)).unwrap().data()[0],
            0x77,
            "linked flush updated the already-copied page"
        );
        // And it restores.
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.media_recover(&image).unwrap();
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 0x77);
    }

    #[test]
    fn incremental_backup_copies_only_changes() {
        let mut e = engine();
        for i in 0..8 {
            e.execute(phys(i, 1)).unwrap();
        }
        e.flush_all().unwrap();
        let mut run = e.begin_backup(2).unwrap();
        while !e.backup_step(&mut run).unwrap() {}
        let base = e.complete_backup(run).unwrap();

        // Change two pages.
        e.execute(phys(1, 2)).unwrap();
        e.execute(phys(3, 2)).unwrap();
        e.flush_all().unwrap();

        let mut irun = e.begin_incremental_backup(DomainId(0), 2, &base).unwrap();
        while !e.backup_step(&mut irun).unwrap() {}
        let incr = e.complete_backup(irun).unwrap();
        assert!(incr.incremental);
        assert_eq!(incr.page_count(), 2);

        let full = BackupImage::materialize(&base, &incr).unwrap();
        e.execute(phys(5, 9)).unwrap();
        e.flush_all().unwrap();
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.media_recover(&full).unwrap();
        assert_eq!(e.store().read_page(pid(1)).unwrap().data()[0], 2);
        assert_eq!(e.store().read_page(pid(3)).unwrap().data()[0], 2);
        assert_eq!(e.store().read_page(pid(5)).unwrap().data()[0], 9);
    }

    #[test]
    fn abort_restores_incremental_changed_set() {
        let mut e = engine();
        e.execute(phys(0, 1)).unwrap();
        e.flush_all().unwrap();
        let mut run = e.begin_backup(1).unwrap();
        while !e.backup_step(&mut run).unwrap() {}
        let base = e.complete_backup(run).unwrap();
        e.execute(phys(2, 1)).unwrap();
        e.flush_all().unwrap();
        let before = e.coordinator().changed_count();
        let irun = e.begin_incremental_backup(DomainId(0), 2, &base).unwrap();
        assert_eq!(e.coordinator().changed_count(), 0);
        e.abort_backup(irun);
        assert_eq!(e.coordinator().changed_count(), before);
    }

    #[test]
    fn media_barrier_prevents_truncating_backup_log() {
        let mut e = engine();
        e.execute(phys(0, 1)).unwrap();
        e.flush_all().unwrap();
        let run = e.begin_backup(2).unwrap();
        let start = e.log().media_barrier().unwrap();
        e.execute(phys(1, 1)).unwrap();
        e.flush_all().unwrap();
        assert!(
            e.log().truncation() <= start,
            "records the backup needs survive truncation"
        );
        e.abort_backup(run);
        e.flush_all().unwrap();
        assert!(e.log().media_barrier().is_none());
    }

    #[test]
    fn install_without_flush_advances_truncation() {
        let mut e = engine();
        e.execute(phys(0, 1)).unwrap();
        e.execute(copy(0, 1)).unwrap();
        let before = e.truncate_log().unwrap();
        assert!(before <= Lsn(1), "uninstalled ops pin the log");
        // Identity-log the hot pages instead of flushing them.
        e.install_without_flush(pid(1)).unwrap();
        e.install_without_flush(pid(0)).unwrap();
        let after = e.truncate_log().unwrap();
        assert!(after > Lsn(2), "identity records released the old records");
        assert!(e.cache().is_dirty(pid(0)), "page stays hot and dirty");
        // Crash recovery works from the identity records alone.
        e.crash();
        e.recover().unwrap();
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 1);
        assert_eq!(e.store().read_page(pid(1)).unwrap().data()[0], 1);
    }

    #[test]
    fn audit_backup_detects_good_and_stale_images() {
        let mut e = engine();
        for i in 0..4 {
            e.execute(phys(i, i as u8 + 1)).unwrap();
        }
        e.flush_all().unwrap();
        let mut run = e.begin_backup(2).unwrap();
        while !e.backup_step(&mut run).unwrap() {}
        let image = e.complete_backup(run).unwrap();
        assert!(
            e.audit_backup(&image).unwrap().is_empty(),
            "fresh image audits clean"
        );

        // Further updates: the audit rolls the image forward over the live
        // log, so it still audits clean.
        e.execute(phys(0, 0x77)).unwrap();
        e.flush_all().unwrap();
        assert!(e.audit_backup(&image).unwrap().is_empty());

        // A released backup whose log suffix was truncated fails loudly.
        e.release_backup(image.backup_id);
        e.flush_all().unwrap();
        e.execute(phys(1, 0x11)).unwrap();
        e.flush_all().unwrap();
        if e.log().truncation() > image.start_lsn {
            assert!(e.audit_backup(&image).is_err(), "truncated suffix detected");
        }
    }

    #[test]
    fn point_in_time_recovery_stops_at_target() {
        let mut e = engine();
        for i in 0..4 {
            e.execute(phys(i, 1)).unwrap();
        }
        e.flush_all().unwrap();
        let mut run = e.begin_backup(2).unwrap();
        while !e.backup_step(&mut run).unwrap() {}
        let image = e.complete_backup(run).unwrap();

        // Two epochs of post-backup updates.
        e.execute(phys(0, 0xAA)).unwrap();
        e.flush_all().unwrap();
        let epoch1 = e.log().durable_lsn();
        e.execute(phys(0, 0xBB)).unwrap();
        e.execute(copy(0, 9)).unwrap();
        e.flush_all().unwrap();

        // Recover to epoch 1: the 0xBB write and the copy are excluded.
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.media_recover_to(&image, epoch1).unwrap();
        assert_eq!(e.store().read_page(pid(0)).unwrap().data()[0], 0xAA);
        assert!(e.store().read_page(pid(9)).unwrap().lsn().is_null());

        // Targets before the backup completed are rejected.
        assert!(matches!(
            e.media_recover_to(&image, Lsn(1)),
            Err(EngineError::Discipline(_))
        ));
    }

    #[test]
    fn file_backed_engine_survives_process_restart() {
        let dir = std::env::temp_dir().join(format!("lob-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.wal");
        let config = EngineConfig {
            log: crate::config::LogBacking::File(path.clone()),
            ..EngineConfig::small()
        };
        {
            let mut e = Engine::new(config.clone()).unwrap();
            e.execute(phys(0, 7)).unwrap();
            e.execute(copy(0, 1)).unwrap();
            e.force_log().unwrap();
            // Process "dies" here: nothing flushed to S.
        }
        let mut e2 = Engine::open_existing(config).unwrap();
        e2.recover().unwrap();
        assert_eq!(e2.store().read_page(pid(0)).unwrap().data()[0], 7);
        assert_eq!(e2.store().read_page(pid(1)).unwrap().data()[0], 7);
        // LSNs continue above everything in the file.
        let lsn = e2.execute(phys(2, 1)).unwrap();
        assert!(lsn > Lsn(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_oldest_advances_truncation_fastest() {
        let mut e = engine();
        for i in 0..6 {
            e.execute(phys(i, 1)).unwrap();
        }
        let t0 = e.log().truncation();
        // Flushing the two oldest pages moves the truncation bound past
        // their records.
        let cleaned = e.flush_oldest(2).unwrap();
        assert_eq!(cleaned, 2);
        assert!(e.log().truncation() > t0);
        assert!(e.log().truncation() >= Lsn(3));
        assert_eq!(e.cache().dirty_count(), 4);
        // Budget larger than the dirty set drains it.
        assert_eq!(e.flush_oldest(100).unwrap(), 4);
        assert_eq!(e.log().truncation(), e.log().next_lsn());
    }

    #[test]
    fn regression_blind_steal_requires_thief_durability() {
        // Distilled from a shadow-oracle counterexample: op A writes {X, Y};
        // op B blind-writes Y (stealing it from A's node, not yet durable);
        // flushing A's node (now vars = {X}) then flushing an overwrite of
        // A's readset must force B's record first — otherwise a crash
        // leaves Y with no value anywhere (not in S; A's replay reads the
        // overwritten input; B's record is lost).
        let mut e = engine();
        e.execute(phys(0, 1)).unwrap(); // input page 0
        e.flush_all().unwrap();
        // A: reads {0}, writes {1, 2}.
        let a = OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(0)],
            writes: vec![pid(1), pid(2)],
            salt: 7,
        });
        e.execute(a.clone()).unwrap();
        let expect_y = e.read_page(pid(2)).unwrap().data().clone();
        // B: blind Mix stealing page 2 (reads 3, writes 2) — appended but
        // never explicitly forced.
        e.execute(OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(3)],
            writes: vec![pid(2)],
            salt: 8,
        }))
        .unwrap();
        let expect_y2 = e.read_page(pid(2)).unwrap().data().clone();
        // Flush A's node (vars = {1} after the steal)…
        e.flush_page(pid(1)).unwrap();
        // …and overwrite + flush A's input, destroying A's replayability.
        e.execute(phys(0, 0xEE)).unwrap();
        e.flush_page(pid(0)).unwrap();
        // Crash. The WAL floor must have made B's record durable when A's
        // node installed, so page 2 recovers to B's value.
        e.crash();
        e.recover().unwrap();
        let got = e.store().read_page(pid(2)).unwrap();
        assert_eq!(
            got.data(),
            &expect_y2,
            "stolen page recovered from the (forced) thief record"
        );
        let _ = expect_y;
    }

    #[test]
    fn regression_identity_backdating_on_replay() {
        // Distilled from a shadow-oracle counterexample: an identity record
        // is logged (at flush time) *after* an operation that read the
        // value it carries; replay must apply it at the covered write, not
        // at its own LSN.
        let mut e = engine();
        for i in 0..4 {
            e.execute(phys(i, i as u8 + 1)).unwrap();
        }
        e.flush_all().unwrap();
        let mut run = e.begin_backup(2).unwrap();
        e.backup_step(&mut run).unwrap(); // low half Done

        // W: writes page 1 (Done region) from page 3.
        e.execute(OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(3)],
            writes: vec![pid(1)],
            salt: 1,
        }))
        .unwrap();
        // R: reads the new page 1, writes page 40 (Pend region).
        e.execute(OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(1)],
            writes: vec![pid(40)],
            salt: 2,
        }))
        .unwrap();
        let expect_40 = e.read_page(pid(40)).unwrap().data().clone();
        // Flush page 40 first (its node precedes nothing), then page 1 —
        // page 1 is Done → identity write logged AFTER R's record.
        e.flush_page(pid(40)).unwrap();
        e.flush_page(pid(1)).unwrap();
        assert!(e.stats().iwof_records >= 1);
        // Overwrite page 3 (W's input) and flush, destroying W's replay.
        e.execute(phys(3, 0x99)).unwrap();
        e.flush_page(pid(3)).unwrap();

        while !e.backup_step(&mut run).unwrap() {}
        let image = e.complete_backup(run).unwrap();
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.media_recover(&image).unwrap();
        assert_eq!(
            e.store().read_page(pid(40)).unwrap().data(),
            &expect_40,
            "R replays against the backdated identity value of page 1"
        );
    }

    #[test]
    fn partition_recovery_requires_per_partition_tracking() {
        let mut e = engine();
        let img = e.offline_backup().unwrap();
        assert!(matches!(
            e.media_recover_partition(&img, PartitionId(0)),
            Err(EngineError::Discipline(_))
        ));
    }

    /// One deterministic session, recovered four ways: sequential crash
    /// recovery and parallel crash recovery (several knob settings) must
    /// leave byte-identical stores and equal outcomes.
    fn crashed_session() -> Engine {
        let mut e = engine();
        for i in 0..6 {
            e.execute(phys(i, i as u8 + 1)).unwrap();
        }
        e.execute(copy(0, 8)).unwrap();
        e.execute(copy(8, 9)).unwrap();
        e.flush_page(pid(2)).unwrap();
        e.force_log().unwrap();
        e.crash();
        e
    }

    #[test]
    fn parallel_recover_matches_sequential_recover() {
        let mut seq = crashed_session();
        let want = seq.recover().unwrap();
        for recovery in [
            lob_recovery::RecoveryConfig::sequential(),
            lob_recovery::RecoveryConfig::new(2, 8),
            lob_recovery::RecoveryConfig::new(4, 64),
        ] {
            let mut par = crashed_session();
            let got = par.parallel_recover_with(recovery).unwrap();
            assert_eq!(got, want, "{recovery:?}");
            for i in 0..64u32 {
                assert_eq!(
                    par.store().read_page(pid(i)).unwrap(),
                    seq.store().read_page(pid(i)).unwrap(),
                    "page {i} under {recovery:?}"
                );
            }
        }
        assert_eq!(seq.stats().parallel_recoveries, 0);
    }

    #[test]
    fn parallel_restore_latest_uses_the_newest_generation() {
        let mut e = engine();
        for i in 0..6 {
            e.execute(phys(i, i as u8 + 1)).unwrap();
        }
        let image = e.offline_backup().unwrap();
        e.register_backup_generation(image).unwrap();
        // More work after the backup: the roll-forward must reapply it.
        e.execute(phys(1, 0xEE)).unwrap();
        e.execute(copy(1, 7)).unwrap();
        e.force_log().unwrap();
        let expect: Vec<_> = (0..8u32)
            .map(|i| e.read_page(pid(i)).unwrap().data().clone())
            .collect();
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.cache.clear();
        let out = e
            .parallel_restore_latest_with(lob_recovery::RecoveryConfig::new(4, 8))
            .unwrap();
        assert!(out.replayed > 0);
        assert_eq!(e.stats().parallel_restores, 1);
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(
                e.store().read_page(pid(i as u32)).unwrap().data(),
                want,
                "page {i} after catalog-sourced parallel restore"
            );
        }
    }

    #[test]
    fn parallel_restore_latest_requires_a_generation() {
        let mut e = engine();
        assert!(matches!(
            e.parallel_restore_latest(),
            Err(EngineError::Backup(BackupError::BadState(_)))
        ));
    }

    // ------------------------------------------------------------------
    // Self-healing media recovery
    // ------------------------------------------------------------------

    use lob_pagestore::fault::{FaultVerdict, IoEvent};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    /// A hook drawing `verdict` on the first `PageRead` of `target` only.
    fn once_read_hook(target: PageId, verdict: FaultVerdict) -> lob_pagestore::FaultHook {
        let fired = AtomicBool::new(false);
        Arc::new(move |ev, page| {
            if ev == IoEvent::PageRead
                && page == Some(target)
                && !fired.swap(true, Ordering::Relaxed)
            {
                verdict
            } else {
                FaultVerdict::Proceed
            }
        })
    }

    /// An engine with 8 flushed pages and an offline backup registered as
    /// the newest repair generation.
    fn healing_engine() -> (Engine, u64) {
        let mut e = engine();
        for i in 0..8 {
            e.execute(phys(i, i as u8 + 1)).unwrap();
        }
        let image = e.offline_backup().unwrap();
        let gen = image.backup_id;
        e.register_backup_generation(image).unwrap();
        (e, gen)
    }

    #[test]
    fn empty_catalog_leaves_read_errors_untouched() {
        let mut e = engine();
        e.execute(phys(0, 7)).unwrap();
        e.flush_all().unwrap();
        e.cache.evict(pid(0)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(0), FaultVerdict::CorruptRead)));
        assert!(matches!(
            e.read_page(pid(0)),
            Err(EngineError::Store(lob_pagestore::StoreError::Corrupt(p))) if p == pid(0)
        ));
        e.install_fault_hook(None);
        // And quarantine surfaces as its typed error, not a repair.
        e.store().quarantine_page(pid(0)).unwrap();
        e.cache.evict(pid(0)).unwrap();
        assert!(matches!(
            e.read_page(pid(0)),
            Err(EngineError::Quarantined(p)) if p == pid(0)
        ));
    }

    #[test]
    fn corrupt_read_self_heals_from_the_backup_chain() {
        let (mut e, gen) = healing_engine();
        e.cache.evict(pid(3)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(3), FaultVerdict::CorruptRead)));
        let page = e.read_page(pid(3)).unwrap();
        assert_eq!(page.data()[0], 4, "healed read returns the current value");
        assert_eq!(e.stats().repairs, 1);
        assert_eq!(e.stats().quarantines, 1);
        assert!(e.quarantined_pages().is_empty());
        let _ = gen;
        // The stored copy is verifiably intact again.
        assert!(e.store().verify_pages().is_clean());
    }

    #[test]
    fn transient_read_retries_without_repair() {
        let (mut e, _) = healing_engine();
        e.cache.evict(pid(2)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(2), FaultVerdict::TransientRead)));
        let page = e.read_page(pid(2)).unwrap();
        assert_eq!(page.data()[0], 3);
        assert_eq!(e.stats().transient_retries, 1);
        assert_eq!(e.stats().repairs, 0, "nothing was damaged");
    }

    #[test]
    fn repair_page_rebuilds_logical_closure_value() {
        let (mut e, gen) = healing_engine();
        // Post-backup logical history: copy 0 → 9, then overwrite 0. The
        // closure of 9 must pull in 0's *backup-vintage* copy, not current.
        e.execute(copy(0, 9)).unwrap();
        e.execute(phys(0, 0xEE)).unwrap();
        e.flush_all().unwrap();
        let want = e.read_page(pid(9)).unwrap().data().clone();
        e.cache.evict(pid(9)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(9), FaultVerdict::TornRead)));
        let healed = e.read_page(pid(9)).unwrap();
        assert_eq!(healed.data(), &want);
        assert_eq!(e.store().read_page(pid(9)).unwrap().data(), &want);
        let _ = gen;
    }

    #[test]
    fn repair_falls_back_to_an_older_good_generation() {
        let mut e = engine();
        for i in 0..8 {
            e.execute(phys(i, 1)).unwrap();
        }
        let old = e.offline_backup().unwrap();
        let old_id = old.backup_id;
        e.register_backup_generation(old).unwrap();
        e.execute(phys(1, 2)).unwrap();
        let newer = e.offline_backup().unwrap();
        let newer_id = newer.backup_id;
        e.register_backup_generation(newer).unwrap();
        // Rot the newest generation's copy of page 1; repair must detect
        // the checksum mismatch and fall back to the older generation,
        // replaying the longer suffix to the same final value.
        e.catalog().tamper_page(newer_id, pid(1)).unwrap();
        e.store().quarantine_page(pid(1)).unwrap();
        let report = e.repair_page(pid(1)).unwrap();
        assert_eq!(report.generation_used, old_id);
        assert_eq!(report.generations_tried, vec![newer_id, old_id]);
        assert_eq!(e.stats().repair_fallbacks, 1);
        assert_eq!(e.store().read_page(pid(1)).unwrap().data()[0], 2);
    }

    #[test]
    fn unrepairable_page_stays_quarantined_without_poisoning_others() {
        let (mut e, gen) = healing_engine();
        // Rot the only generation's copy of page 5: no good copy survives.
        e.catalog().tamper_page(gen, pid(5)).unwrap();
        e.cache.evict(pid(5)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(5), FaultVerdict::CorruptRead)));
        assert!(matches!(
            e.read_page(pid(5)),
            Err(EngineError::Unrepairable(p)) if p == pid(5)
        ));
        e.install_fault_hook(None);
        assert_eq!(e.quarantined_pages(), vec![pid(5)]);
        // Every other page keeps serving.
        assert_eq!(e.read_page(pid(4)).unwrap().data()[0], 5);
        // A later full overwrite heals the slot.
        e.execute(phys(5, 0x55)).unwrap();
        e.flush_page(pid(5)).unwrap();
        assert!(e.quarantined_pages().is_empty());
        assert_eq!(e.read_page(pid(5)).unwrap().data()[0], 0x55);
    }

    #[test]
    fn dirty_page_repairs_from_the_cache_not_the_chain() {
        let (mut e, _) = healing_engine();
        e.execute(phys(6, 0x66)).unwrap(); // dirty in cache
        let report = e.repair_page(pid(6)).unwrap();
        assert_eq!(report.generation_used, 0, "healed from the dirty copy");
        assert!(e.quarantined_pages().is_empty());
        assert_eq!(e.store().read_page(pid(6)).unwrap().data()[0], 0x66);
    }

    #[test]
    fn execute_heals_damaged_readset_pages() {
        let (mut e, _) = healing_engine();
        // Bounded cache forces the evaluation to re-read page 0 from S.
        e.cache.evict(pid(0)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(0), FaultVerdict::CorruptRead)));
        let lsn = e.execute(copy(0, 10)).unwrap();
        assert!(!lsn.is_null());
        assert_eq!(e.read_page(pid(10)).unwrap().data()[0], 1);
        assert_eq!(e.stats().repairs, 1);
        assert_eq!(e.stats().ops_executed, 9, "8 setup writes + the copy");
    }

    #[test]
    fn transient_image_reads_retry_under_backoff() {
        let (mut e, _) = healing_engine();
        // Image fetches fail transiently twice, then succeed.
        let count = AtomicUsize::new(0);
        e.install_fault_hook(Some(Arc::new(move |ev, _| {
            if ev == IoEvent::ImageRead && count.fetch_add(1, Ordering::Relaxed) < 2 {
                FaultVerdict::TransientRead
            } else {
                FaultVerdict::Proceed
            }
        })));
        e.store().quarantine_page(pid(7)).unwrap();
        let report = e.repair_page(pid(7)).unwrap();
        assert_eq!(report.retries, 2);
        assert!(report.backoff_ticks > 0);
        assert_eq!(e.stats().transient_retries, 2);
        assert_eq!(e.store().read_page(pid(7)).unwrap().data()[0], 8);
    }

    #[test]
    fn repair_partition_scrubs_and_heals_everything() {
        let (mut e, gen) = healing_engine();
        e.store().quarantine_page(pid(1)).unwrap();
        e.store().quarantine_page(pid(2)).unwrap();
        let reports = e.repair_partition(PartitionId(0)).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.generation_used == gen));
        assert!(e.quarantined_pages().is_empty());
        assert_eq!(e.read_page(pid(1)).unwrap().data()[0], 2);
        assert_eq!(e.read_page(pid(2)).unwrap().data()[0], 3);
    }

    #[test]
    fn repair_during_active_backup_sweep_is_atomic() {
        let (mut e, _) = healing_engine();
        // Start an on-line sweep, advance it halfway…
        let mut run = e.begin_backup(4).unwrap();
        e.backup_step(&mut run).unwrap();
        // …heal a page in the already-copied region mid-sweep…
        e.cache.evict(pid(0)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(0), FaultVerdict::CorruptRead)));
        assert_eq!(e.read_page(pid(0)).unwrap().data()[0], 1);
        e.install_fault_hook(None);
        assert!(e.quarantined_pages().is_empty());
        // …and the sweep completes into a restorable image: repair never
        // exposed an intermediate (backup-vintage) state to the sweep.
        while !e.backup_step(&mut run).unwrap() {}
        let image = e.complete_backup(run).unwrap();
        assert!(e.audit_backup(&image).unwrap().is_empty());
    }

    #[test]
    fn backup_sweep_copy_read_heals_online() {
        let (mut e, _) = healing_engine();
        // Damage surfaces under the sweep's own copy read of page 2: the
        // step fails, the engine repairs the page, and the retried step
        // (cursor untouched) re-copies identical bytes.
        e.cache.evict(pid(2)).unwrap();
        e.install_fault_hook(Some(once_read_hook(pid(2), FaultVerdict::CorruptRead)));
        let mut run = e.begin_backup(2).unwrap();
        while !e.backup_step(&mut run).unwrap() {}
        e.install_fault_hook(None);
        assert!(e.stats().repairs >= 1);
        assert!(e.quarantined_pages().is_empty());
        let image = e.complete_backup(run).unwrap();
        assert!(e.audit_backup(&image).unwrap().is_empty());
    }

    // ------------------------------------------------------------------
    // Instant restore (§5.13)
    // ------------------------------------------------------------------

    use lob_pagestore::PartitionSpec;
    use lob_recovery::SegmentState;

    fn page_at(p: u32, i: u32, fill: u8) -> OpBody {
        OpBody::PhysicalWrite {
            target: PageId::new(p, i),
            value: Bytes::from(vec![fill; 256]),
        }
    }

    /// A hook killing the process model at the first occurrence of
    /// `target` only.
    fn once_event_hook(target: IoEvent) -> lob_pagestore::FaultHook {
        let fired = AtomicBool::new(false);
        Arc::new(move |ev, _| {
            if ev == target && !fired.swap(true, Ordering::Relaxed) {
                FaultVerdict::Crash
            } else {
                FaultVerdict::Proceed
            }
        })
    }

    /// An engine over `parts` partitions with 8 flushed pages each
    /// (fill `p*8 + i + 1`), a full backup registered with a page-indexed
    /// archive, and a logged tail past the backup (page 0 of every
    /// partition overwritten with `0xA0 + p`).
    fn instant_engine(parts: u32) -> (Engine, u64) {
        let mut e = Engine::new(EngineConfig {
            partitions: (0..parts).map(|_| PartitionSpec { pages: 16 }).collect(),
            tracking: Tracking::Sequential((0..parts).map(PartitionId).collect()),
            ..EngineConfig::small()
        })
        .unwrap();
        for p in 0..parts {
            for i in 0..8 {
                e.execute(page_at(p, i, (p * 8 + i) as u8 + 1)).unwrap();
            }
        }
        let image = e.offline_backup().unwrap();
        let gen = image.backup_id;
        e.register_backup_generation(image).unwrap();
        e.extend_backup_archive(gen).unwrap();
        for p in 0..parts {
            e.execute(page_at(p, 0, 0xA0 + p as u8)).unwrap();
        }
        e.flush_all().unwrap();
        (e, gen)
    }

    fn fail_all(e: &Engine, parts: u32) {
        for p in 0..parts {
            e.store().fail_partition(PartitionId(p)).unwrap();
        }
    }

    #[test]
    fn instant_restore_serves_reads_and_writes_mid_epoch() {
        let (mut e, _) = instant_engine(4);
        fail_all(&e, 4);
        e.begin_instant_restore().unwrap();
        assert!(e.instant_restore_active());
        // A foreground read faults exactly its own segment in…
        assert_eq!(e.read_page(PageId::new(1, 0)).unwrap().data()[0], 0xA1);
        assert_eq!(
            e.instant_segment_state(PartitionId(1)),
            Some(SegmentState::Restored)
        );
        // …while unrequested segments stay failed: bounded degradation,
        // not a wait for the whole device.
        assert_eq!(
            e.instant_segment_state(PartitionId(2)),
            Some(SegmentState::Failed)
        );
        // A write is gated on every partition its sets touch.
        e.execute(OpBody::Logical(LogicalOp::Copy {
            src: PageId::new(0, 1),
            dst: PageId::new(2, 9),
        }))
        .unwrap();
        assert_eq!(
            e.instant_segment_state(PartitionId(0)),
            Some(SegmentState::Restored)
        );
        assert_eq!(
            e.instant_segment_state(PartitionId(2)),
            Some(SegmentState::Restored)
        );
        // The untouched fourth segment is left to the background sweep.
        assert_eq!(
            e.instant_segment_state(PartitionId(3)),
            Some(SegmentState::Failed)
        );
        e.instant_restore_drain().unwrap();
        assert!(!e.instant_restore_active());
        let s = e.stats();
        assert_eq!(s.instant_epochs, 1);
        assert_eq!(s.instant_completions, 1);
        assert_eq!(s.instant_on_demand, 3, "read + the write's two segments");
        assert_eq!(s.instant_swept, 1);
        // The copy executed against restored state: src held fill 2.
        assert_eq!(e.read_page(PageId::new(2, 9)).unwrap().data()[0], 2);
    }

    #[test]
    fn restored_segment_requests_are_noops_during_the_sweep() {
        let (mut e, _) = instant_engine(2);
        fail_all(&e, 2);
        e.begin_instant_restore().unwrap();
        e.read_page(PageId::new(0, 3)).unwrap();
        let first = e.instant_restore_stats().unwrap();
        assert_eq!(first.on_demand_restores, 1);
        // A second and third request for the same segment — the "racing
        // requests" shape, serialized here — must not restore it again.
        e.read_page(PageId::new(0, 5)).unwrap();
        e.read_page(PageId::new(0, 3)).unwrap();
        let second = e.instant_restore_stats().unwrap();
        assert_eq!(second.on_demand_restores, 1);
        assert_eq!(second.run_fetches, first.run_fetches);
        // The untouched segment is left to the background sweep.
        e.instant_restore_drain().unwrap();
        assert_eq!(e.stats().instant_swept, 1);
        assert_eq!(e.read_page(PageId::new(1, 0)).unwrap().data()[0], 0xA1);
    }

    #[test]
    fn corrupt_newest_archive_run_falls_back_a_generation() {
        let (mut e, _old_gen) = instant_engine(2);
        // A newer generation, also archived, then more history so its
        // archive holds a run for partition 0's page 0…
        let newer = e.offline_backup().unwrap();
        let newer_id = newer.backup_id;
        e.register_backup_generation(newer).unwrap();
        e.extend_backup_archive(newer_id).unwrap();
        e.execute(page_at(0, 0, 0xC0)).unwrap();
        e.flush_all().unwrap();
        e.extend_backup_archive(newer_id).unwrap();
        // …and that newest run rots. The restore must detect the checksum
        // mismatch and fall back to the older generation's intact archive,
        // replaying the longer suffix to the same bytes.
        e.catalog()
            .tamper_archive_run(newer_id, PageId::new(0, 0))
            .unwrap();
        fail_all(&e, 2);
        e.begin_instant_restore().unwrap();
        assert_eq!(e.read_page(PageId::new(0, 0)).unwrap().data()[0], 0xC0);
        let st = e.instant_restore_stats().unwrap();
        assert!(st.generation_fallbacks >= 1, "stats: {st:?}");
        e.instant_restore_drain().unwrap();
        assert_eq!(e.read_page(PageId::new(0, 1)).unwrap().data()[0], 2);
        assert_eq!(e.read_page(PageId::new(1, 0)).unwrap().data()[0], 0xA1);
    }

    #[test]
    fn instant_restore_with_an_empty_log_suffix() {
        // No history past the backup at all: the generation's control and
        // per-page runs are empty — an intact state, not a corrupt one.
        let mut e = engine();
        for i in 0..4 {
            e.execute(phys(i, i as u8 + 1)).unwrap();
        }
        let image = e.offline_backup().unwrap();
        let gen = image.backup_id;
        e.register_backup_generation(image).unwrap();
        e.extend_backup_archive(gen).unwrap();
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.begin_instant_restore().unwrap();
        e.instant_restore_drain().unwrap();
        for i in 0..4 {
            assert_eq!(e.read_page(pid(i)).unwrap().data()[0], i as u8 + 1);
        }
        assert_eq!(e.stats().instant_completions, 1);
    }

    #[test]
    fn begin_builds_the_missing_archive_on_the_newest_generation() {
        // A registered generation without an archive: entering the epoch
        // builds one (from the generation's own log suffix) rather than
        // refusing — with an empty catalog it refuses instead.
        let (mut e, _) = healing_engine();
        e.execute(phys(0, 0x77)).unwrap();
        e.flush_all().unwrap();
        e.store().fail_partition(PartitionId(0)).unwrap();
        e.begin_instant_restore().unwrap();
        e.instant_restore_drain().unwrap();
        assert_eq!(e.read_page(pid(0)).unwrap().data()[0], 0x77);

        let mut bare = engine();
        bare.execute(phys(0, 1)).unwrap();
        bare.flush_all().unwrap();
        bare.store().fail_partition(PartitionId(0)).unwrap();
        assert!(bare.begin_instant_restore().is_err());
    }

    #[test]
    fn mid_restore_kill_reenters_and_byte_verifies() {
        let (mut e, _) = instant_engine(2);
        let mut want = Vec::new();
        for p in 0..2 {
            for i in 0..8 {
                let id = PageId::new(p, i);
                want.push((id, e.read_page(id).unwrap().data().clone()));
            }
        }
        e.flush_all().unwrap();
        fail_all(&e, 2);
        // The first segment install dies mid-epoch: the install went to
        // the still-failed partition, so the commit point (clearing the
        // failure flag) was never reached.
        e.install_fault_hook(Some(once_event_hook(IoEvent::SegmentInstall)));
        e.begin_instant_restore().unwrap();
        let err = e.instant_restore_drain().unwrap_err();
        assert!(err.is_injected_crash(), "got {err}");
        e.crash();
        assert!(!e.instant_restore_active());
        // Reboot re-entry: every segment is re-derived from archive +
        // image, and the interrupted one is simply restored again.
        e.recover_instant().unwrap();
        e.instant_restore_drain().unwrap();
        assert_eq!(e.stats().instant_reboots, 1);
        for (id, bytes) in want {
            assert_eq!(e.read_page(id).unwrap().data(), &bytes, "page {id}");
        }
    }

    #[test]
    fn online_backup_sweep_completes_during_instant_restore() {
        let (mut e, _) = instant_engine(2);
        fail_all(&e, 2);
        e.begin_instant_restore().unwrap();
        // The sweep's copy reads hit failed partitions: each miss faults
        // the segment in (degraded mode) and the step retries.
        let mut run = e.begin_backup(4).unwrap();
        while !e.backup_step(&mut run).unwrap() {}
        let image = e.complete_backup(run).unwrap();
        e.instant_restore_drain().unwrap();
        assert!(e.audit_backup(&image).unwrap().is_empty());
        assert_eq!(e.read_page(PageId::new(1, 0)).unwrap().data()[0], 0xA1);
    }

    #[test]
    fn archive_indexed_repair_scans_fewer_records_than_the_suffix_scan() {
        // Twin engines with identical histories; only one generation has a
        // page-indexed archive. The indexed repair must examine fewer
        // records and produce byte-identical results.
        let mk = |archive: bool| {
            let mut e = engine();
            for i in 0..8 {
                e.execute(phys(i, i as u8 + 1)).unwrap();
            }
            let image = e.offline_backup().unwrap();
            let gen = image.backup_id;
            e.register_backup_generation(image).unwrap();
            if archive {
                e.extend_backup_archive(gen).unwrap();
            }
            // Post-backup history with independent strands: only the copy
            // belongs to page 1's closure; the other six writes do not.
            e.execute(copy(0, 1)).unwrap();
            for i in 2..8 {
                e.execute(phys(i, 0x40 + i as u8)).unwrap();
            }
            e.flush_all().unwrap();
            e.store().quarantine_page(pid(1)).unwrap();
            e
        };
        let mut indexed = mk(true);
        let mut scanned = mk(false);
        let ri = indexed.repair_page(pid(1)).unwrap();
        let rs = scanned.repair_page(pid(1)).unwrap();
        assert!(ri.index_used);
        assert!(!rs.index_used);
        assert!(
            ri.records_scanned < rs.records_scanned,
            "indexed examined {} records, suffix scan {}",
            ri.records_scanned,
            rs.records_scanned
        );
        assert_eq!(indexed.stats().repair_index_hits, 1);
        assert_eq!(scanned.stats().repair_index_hits, 0);
        assert_eq!(
            indexed.store().read_page(pid(1)).unwrap().data(),
            scanned.store().read_page(pid(1)).unwrap().data(),
            "index and scan repairs must agree byte-for-byte"
        );
    }
}
