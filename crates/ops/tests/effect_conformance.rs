//! Dynamic conformance check behind the `effect-sets` lint: for every
//! `OpBody` variant, a recording `PageReader` verifies that `apply()`
//! reads exactly the pages `readset()` declares and returns writes for
//! exactly the pages `writeset()` declares, in `writeset()` order. The
//! lint pass cross-checks the same contract lexically; this test is the
//! ground truth it is calibrated against.

use bytes::Bytes;
use lob_ops::{LogicalOp, OpBody, PhysioOp};
use lob_pagestore::PageId;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

const PAGE_SIZE: usize = 256;

fn p(index: u32) -> PageId {
    PageId::new(0, index)
}

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// One sample per variant. A zeroed page decodes as an empty `RecPage`
/// (record count 0), so every record operation applies cleanly against
/// the recording reader's all-zero universe.
fn samples() -> Vec<OpBody> {
    vec![
        OpBody::PhysicalWrite {
            target: p(1),
            value: Bytes::from(vec![7u8; PAGE_SIZE]),
        },
        OpBody::IdentityWrite {
            target: p(1),
            value: Bytes::from(vec![0u8; PAGE_SIZE]),
        },
        OpBody::Physio(PhysioOp::SetBytes {
            target: p(1),
            offset: 4,
            bytes: b("abc"),
        }),
        OpBody::Physio(PhysioOp::InsertRec {
            target: p(1),
            key: b("k"),
            val: b("v"),
        }),
        OpBody::Physio(PhysioOp::DeleteRec {
            target: p(1),
            key: b("k"),
        }),
        OpBody::Physio(PhysioOp::RmvRec {
            target: p(1),
            sep: b("m"),
        }),
        OpBody::Physio(PhysioOp::AppExec { app: p(1), salt: 7 }),
        OpBody::Logical(LogicalOp::Copy {
            src: p(1),
            dst: p(2),
        }),
        OpBody::Logical(LogicalOp::MovRec {
            old: p(1),
            sep: b("m"),
            new: p(2),
        }),
        OpBody::Logical(LogicalOp::AppRead {
            src: p(1),
            app: p(2),
        }),
        OpBody::Logical(LogicalOp::AppWrite {
            app: p(1),
            dst: p(2),
        }),
        OpBody::Logical(LogicalOp::MergeRec {
            src: p(1),
            dst: p(2),
        }),
        OpBody::Logical(LogicalOp::SortExtent {
            src: vec![p(1), p(2)],
            dst: vec![p(3)],
        }),
        OpBody::Logical(LogicalOp::Mix {
            reads: vec![p(1), p(2)],
            writes: vec![p(3), p(4)],
            salt: 9,
        }),
    ]
}

/// Exhaustive, wildcard-free variant enumeration: adding an `OpBody`
/// variant fails to compile here, forcing a new sample (and a fresh look
/// at the `effect-sets` lint) before the workspace builds again.
fn variant_index(op: &OpBody) -> usize {
    match op {
        OpBody::PhysicalWrite { .. } => 0,
        OpBody::IdentityWrite { .. } => 1,
        OpBody::Physio(PhysioOp::SetBytes { .. }) => 2,
        OpBody::Physio(PhysioOp::InsertRec { .. }) => 3,
        OpBody::Physio(PhysioOp::DeleteRec { .. }) => 4,
        OpBody::Physio(PhysioOp::RmvRec { .. }) => 5,
        OpBody::Physio(PhysioOp::AppExec { .. }) => 6,
        OpBody::Logical(LogicalOp::Copy { .. }) => 7,
        OpBody::Logical(LogicalOp::MovRec { .. }) => 8,
        OpBody::Logical(LogicalOp::AppRead { .. }) => 9,
        OpBody::Logical(LogicalOp::AppWrite { .. }) => 10,
        OpBody::Logical(LogicalOp::MergeRec { .. }) => 11,
        OpBody::Logical(LogicalOp::SortExtent { .. }) => 12,
        OpBody::Logical(LogicalOp::Mix { .. }) => 13,
    }
}

#[test]
fn sample_list_covers_every_variant() {
    let covered: BTreeSet<usize> = samples().iter().map(variant_index).collect();
    let expected: BTreeSet<usize> = (0..14).collect();
    assert_eq!(covered, expected, "one sample per OpBody variant");
}

#[test]
fn apply_reads_exactly_the_readset_and_writes_exactly_the_writeset() {
    for op in samples() {
        let recorded: Rc<RefCell<Vec<PageId>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = recorded.clone();
        let mut reader = move |id: PageId| {
            sink.borrow_mut().push(id);
            Ok(Bytes::from(vec![0u8; PAGE_SIZE]))
        };
        let writes = op
            .apply(&mut reader)
            .unwrap_or_else(|e| panic!("{} applies against zeroed pages: {e}", op.label()));

        let declared_reads: BTreeSet<PageId> = op.readset().into_iter().collect();
        let actual_reads: BTreeSet<PageId> = recorded.borrow().iter().copied().collect();
        assert_eq!(
            actual_reads,
            declared_reads,
            "{}: pages read through PageReader must equal readset()",
            op.label()
        );

        let written: Vec<PageId> = writes.iter().map(|(id, _)| *id).collect();
        assert_eq!(
            written,
            op.writeset(),
            "{}: apply() must return writes in writeset() order",
            op.label()
        );
    }
}
