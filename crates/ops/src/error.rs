//! Operation errors.

use lob_pagestore::PageId;
use std::fmt;

/// Errors raised while evaluating an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// The page reader could not supply a read-set page.
    ReadFailed {
        /// Page that could not be read.
        page: PageId,
        /// Human-readable cause from the reader.
        cause: String,
    },
    /// A page's payload did not parse as the format the operation expects
    /// (e.g. a record page).
    MalformedPage {
        /// Offending page.
        page: PageId,
        /// What went wrong.
        detail: String,
    },
    /// A record page overflowed while applying the operation.
    PageFull {
        /// Offending page.
        page: PageId,
    },
    /// The operation is structurally invalid (e.g. a `Mix` with an empty
    /// write set, or a physical write whose payload length is not the page
    /// size — detected when applied).
    Invalid(String),
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::ReadFailed { page, cause } => {
                write!(f, "failed to read {page}: {cause}")
            }
            OpError::MalformedPage { page, detail } => {
                write!(f, "malformed page {page}: {detail}")
            }
            OpError::PageFull { page } => write!(f, "page {page} is full"),
            OpError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for OpError {}
