//! # lob-ops — the log operation model
//!
//! This crate defines every form of log operation used in the reproduction of
//! Lomet's "High Speed On-line Backup When Using Logical Log Operations"
//! (SIGMOD 2000), mirroring Table 1 of the paper:
//!
//! | Paper             | Here                                                  |
//! |-------------------|-------------------------------------------------------|
//! | `W_P(X, log(v))`  | [`OpBody::PhysicalWrite`]                             |
//! | `W_PL(X)`         | [`OpBody::Physio`] (all [`PhysioOp`] variants)        |
//! | `W_IP(X, log(X))` | [`OpBody::IdentityWrite`] (cache-manager identity write) |
//! | `W_L(A, X)`       | [`LogicalOp::AppWrite`], [`LogicalOp::MovRec`] — *write-new* tree ops |
//! | `R(A, X)`         | [`LogicalOp::AppRead`]                                |
//! | `Ex(A)`           | [`PhysioOp::AppExec`]                                 |
//! | general logical   | [`LogicalOp::Copy`], [`LogicalOp::SortExtent`], [`LogicalOp::Mix`] |
//!
//! Every operation knows its **read set** and **write set** (paper §2.2) and
//! is a **deterministic** function from the values of its read set to new
//! values for its write set ([`OpBody::apply`]). Determinism is what makes
//! redo recovery by replay possible: during roll-forward the operation is
//! re-executed against the (recovered) read-set values and must regenerate
//! exactly the effects it had during normal execution.
//!
//! The crate also classifies operations ([`OpClass`], [`TreeForm`]):
//!
//! * *page-oriented* operations read and write at most the single target
//!   page, so dirty pages can be flushed in any order;
//! * *tree* operations (paper §4) additionally allow `W_L(old, new)` — read
//!   an existing object, write a brand-new one — which keeps every
//!   write-graph node single-object and the graph a forest;
//! * *general logical* operations may read and write several pages and
//!   induce arbitrary (acyclic after collapsing) flush-order constraints.
//!
//! Module map:
//!
//! * [`body`] — [`OpBody`], [`PhysioOp`], [`LogicalOp`]: the operation forms
//!   and their `readset`/`writeset`/`apply`.
//! * [`class`] — [`OpClass`] and [`TreeForm`] classification.
//! * [`recpage`] — a sorted record-page codec (the on-page format shared by
//!   the B-tree and file-system workloads).
//! * [`mix`] — deterministic byte-mixing primitives used by synthetic
//!   logical operations.
//! * [`error`] — [`OpError`].

pub mod body;
pub mod class;
pub mod error;
pub mod mix;
pub mod recpage;

pub use body::{LogicalOp, OpBody, PageReader, PhysioOp};
pub use class::{OpClass, TreeForm};
pub use error::OpError;
pub use recpage::RecPage;
