//! Operation classification.
//!
//! The backup protocol's cost depends on the *form* of the logged operations
//! (paper §1.1, §4): page-oriented operations permit unconstrained flushing;
//! tree operations constrain the write graph to a forest of single-object
//! nodes; general logical operations require conservative extra logging.

use lob_pagestore::PageId;

/// Broad class of a log operation (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `W_P(X, log(v))`: blind write of one object with a value from the log.
    Physical,
    /// `W_PL(X)`: reads and writes exactly one object (state transition).
    Physiological,
    /// `W_IP(X, log(X))`: a cache-manager identity write — physically logged
    /// write of the object's current value, injected by the cache manager to
    /// install operations without flushing (paper §2.5, §3.2).
    Identity,
    /// A logical operation: reads one or more objects, writes one or more
    /// (potentially different) objects (paper §1.1).
    Logical,
}

impl OpClass {
    /// Whether operations of this class are page-oriented (touch at most one
    /// object), so they impose no flush-order constraints.
    pub fn is_page_oriented(self) -> bool {
        !matches!(self, OpClass::Logical)
    }
}

/// The *shape* of an operation with respect to the tree-operation discipline
/// of paper §4.
///
/// Whether a `WriteNew`-shaped operation really is a valid tree operation
/// additionally requires that `new` has not been updated before ("an object
/// can only be a **new** object the first time it is updated") — a dynamic
/// condition the engine checks; this enum only captures the static shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeForm {
    /// Page-oriented: possibly read `target` and write `target`.
    PageOriented {
        /// The single object read (possibly) and written.
        target: PageId,
    },
    /// Write-new: read existing `old`, write (only) `new`.
    WriteNew {
        /// The object read.
        old: PageId,
        /// The object written (must be previously un-updated).
        new: PageId,
    },
    /// Read-extra (paper §6.2): read and write `target`, additionally read
    /// `extra` — the application-read form `R(X, A)`. Not a §4 tree
    /// operation (the successor set of `target` grows over time), but the
    /// same successor-tracking machinery handles it.
    ReadExtra {
        /// The object read and written (the application state `A`).
        target: PageId,
        /// The additional objects read (the input `X`).
        extra: Vec<PageId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_oriented_classes() {
        assert!(OpClass::Physical.is_page_oriented());
        assert!(OpClass::Physiological.is_page_oriented());
        assert!(OpClass::Identity.is_page_oriented());
        assert!(!OpClass::Logical.is_page_oriented());
    }

    #[test]
    fn tree_form_equality() {
        let a = TreeForm::WriteNew {
            old: PageId::new(0, 1),
            new: PageId::new(0, 2),
        };
        let b = TreeForm::WriteNew {
            old: PageId::new(0, 1),
            new: PageId::new(0, 2),
        };
        assert_eq!(a, b);
    }
}
