//! Deterministic byte-mixing primitives.
//!
//! Synthetic logical operations ([`crate::LogicalOp::Mix`], the application
//! recovery ops) need a page transformation that is
//!
//! 1. **deterministic** — redo replay must regenerate exactly the value
//!    produced at normal execution, and
//! 2. **input-sensitive** — if recovery replays an operation against the
//!    *wrong* read-set values (the failure mode the backup protocol exists to
//!    prevent), the produced value must differ so the test oracle detects it.
//!
//! A keyed xorshift-based expansion provides both properties cheaply. None of
//! this is cryptographic and none of it needs to be.

/// 64-bit mixing of a single word (splitmix64 finalizer).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold a byte slice into a 64-bit digest, keyed by `seed`.
pub fn digest(seed: u64, bytes: &[u8]) -> u64 {
    let mut acc = mix64(seed ^ 0x01de_c0de ^ bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        // lint:allow(panic) chunks_exact(8) yields exactly 8-byte slices
        acc = mix64(acc ^ u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut tail = [0u8; 8];
    let rem = chunks.remainder();
    tail[..rem.len()].copy_from_slice(rem);
    if !rem.is_empty() {
        acc = mix64(acc ^ u64::from_le_bytes(tail));
    }
    acc
}

/// Expand a 64-bit state into `len` pseudo-random bytes.
pub fn expand(mut state: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        state = mix64(state);
        let w = state.to_le_bytes();
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&w[..take]);
    }
    out
}

/// The canonical synthetic page transformation: fold all inputs (in order)
/// together with `salt` and a per-output index, then expand to a full page.
pub fn derive_page(salt: u64, output_index: u64, inputs: &[&[u8]], len: usize) -> Vec<u8> {
    let mut acc = mix64(salt ^ mix64(output_index ^ 0xa11c_e5ed));
    for (i, input) in inputs.iter().enumerate() {
        acc = mix64(acc ^ digest(i as u64, input));
    }
    expand(acc, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(1), mix64(1));
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn digest_sensitive_to_content_and_seed() {
        assert_ne!(digest(0, b"abc"), digest(0, b"abd"));
        assert_ne!(digest(0, b"abc"), digest(1, b"abc"));
        assert_eq!(digest(7, b"abcdefgh_tail"), digest(7, b"abcdefgh_tail"));
    }

    #[test]
    fn digest_sensitive_to_length_of_zeroes() {
        assert_ne!(digest(0, &[0u8; 8]), digest(0, &[0u8; 16]));
    }

    #[test]
    fn expand_produces_requested_length() {
        for len in [0usize, 1, 7, 8, 9, 63, 256] {
            assert_eq!(expand(42, len).len(), len);
        }
        assert_eq!(expand(42, 16), expand(42, 16));
        assert_ne!(expand(42, 16), expand(43, 16));
    }

    #[test]
    fn derive_page_sensitive_to_each_input() {
        let a = b"input-a".as_slice();
        let b = b"input-b".as_slice();
        let p1 = derive_page(1, 0, &[a, b], 32);
        let p2 = derive_page(1, 0, &[b, a], 32);
        let p3 = derive_page(1, 1, &[a, b], 32);
        let p4 = derive_page(2, 0, &[a, b], 32);
        assert_ne!(p1, p2, "order matters");
        assert_ne!(p1, p3, "output index matters");
        assert_ne!(p1, p4, "salt matters");
        assert_eq!(p1, derive_page(1, 0, &[a, b], 32), "deterministic");
    }
}
