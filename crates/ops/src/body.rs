//! Operation bodies: read/write sets and deterministic redo.

use crate::class::{OpClass, TreeForm};
use crate::error::OpError;
use crate::mix;
use crate::recpage::RecPage;
use bytes::Bytes;
use lob_pagestore::PageId;

/// Source of page values for [`OpBody::apply`]. During normal execution this
/// is the cache manager; during recovery it is the cache over the restored
/// stable database.
pub trait PageReader {
    /// Current value of page `id`.
    fn read(&mut self, id: PageId) -> Result<Bytes, OpError>;
}

/// Blanket impl so closures can serve as readers in tests.
impl<F> PageReader for F
where
    F: FnMut(PageId) -> Result<Bytes, OpError>,
{
    fn read(&mut self, id: PageId) -> Result<Bytes, OpError> {
        self(id)
    }
}

/// A physiological operation `W_PL(X)`: reads and writes exactly one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysioOp {
    /// Overlay `bytes` at `offset` within the target page.
    SetBytes {
        /// Page read and written.
        target: PageId,
        /// Byte offset of the overlay.
        offset: u32,
        /// Bytes written at the offset.
        bytes: Bytes,
    },
    /// Insert (or replace) a record in a record page ("the insert of a
    /// record onto a page" — the paper's canonical physiological example).
    InsertRec {
        /// Record page.
        target: PageId,
        /// Record key.
        key: Bytes,
        /// Record value.
        val: Bytes,
    },
    /// Delete a record from a record page.
    DeleteRec {
        /// Record page.
        target: PageId,
        /// Key to delete.
        key: Bytes,
    },
    /// `RmvRec(old, key)`: remove all records with keys greater than `sep`
    /// from the page — the second half of a logically-logged B-tree split.
    RmvRec {
        /// Record page (the split's `old` node).
        target: PageId,
        /// Separator key; records strictly above it are removed.
        sep: Bytes,
    },
    /// `Ex(A)`: application execution between resource-manager calls — a
    /// physiological state transition of the application object.
    AppExec {
        /// Application state page.
        app: PageId,
        /// Captures the nondeterministic outcome of the execution interval
        /// so replay is deterministic.
        salt: u64,
    },
}

impl PhysioOp {
    /// The single page this operation reads and writes.
    pub fn target(&self) -> PageId {
        match *self {
            PhysioOp::SetBytes { target, .. }
            | PhysioOp::InsertRec { target, .. }
            | PhysioOp::DeleteRec { target, .. }
            | PhysioOp::RmvRec { target, .. } => target,
            PhysioOp::AppExec { app, .. } => app,
        }
    }
}

/// A logical operation: reads one or more pages, writes one or more
/// (potentially different) pages (paper §1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalOp {
    /// `copy(X, Y)`: copy the value of `src` to `dst`. Reads `src` only;
    /// blind with respect to `dst`.
    Copy {
        /// Source page.
        src: PageId,
        /// Destination page.
        dst: PageId,
    },
    /// `MovRec(old, key, new)`: initialize `new` with the records of `old`
    /// whose keys exceed `sep` — the first half of a logically-logged B-tree
    /// split. Reads `old`, writes only `new`.
    MovRec {
        /// Source node of the split.
        old: PageId,
        /// Separator key.
        sep: Bytes,
        /// Newly allocated node receiving the high records.
        new: PageId,
    },
    /// `R(X, A)`: application read — `app` absorbs the value of `src` into
    /// its state. Reads `src` and `app`, writes `app`.
    AppRead {
        /// Input page read by the application.
        src: PageId,
        /// Application state page.
        app: PageId,
    },
    /// `W_L(A, X)`: application logical write — `dst` is derived from the
    /// application's output buffer (its state). Reads `app`, writes `dst`.
    AppWrite {
        /// Application state page.
        app: PageId,
        /// Output page written.
        dst: PageId,
    },
    /// `MergeRec(src, dst)`: append every record of `src` into `dst` — the
    /// dual of `MovRec`, used for B-tree underflow merges. Reads both pages
    /// (the shape of the paper's §6.2 read-extra operations: `dst` is read
    /// and written, `src` adds a successor edge), writes only `dst`. The
    /// caller guarantees disjoint key ranges.
    MergeRec {
        /// Node whose records move (left-sibling merges read the right
        /// node).
        src: PageId,
        /// Node absorbing the records.
        dst: PageId,
    },
    /// Sort the records held in the `src` extent into the `dst` extent
    /// (the paper's file-sort example: "X is the unsorted input and Y is the
    /// sorted output"). Reads every `src` page, writes every `dst` page.
    SortExtent {
        /// Unsorted input extent.
        src: Vec<PageId>,
        /// Sorted output extent (densely filled in order).
        dst: Vec<PageId>,
    },
    /// Synthetic general logical operation: every written page gets a
    /// deterministic mix of all read pages. Used by the randomized workloads
    /// behind the Figure 5 measurements.
    Mix {
        /// Pages read.
        reads: Vec<PageId>,
        /// Pages written.
        writes: Vec<PageId>,
        /// Key making distinct operations produce distinct values.
        salt: u64,
    },
}

/// A log operation body: the payload of one log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpBody {
    /// `W_P(X, log(v))`: physical write, value carried in the log record.
    PhysicalWrite {
        /// Page written.
        target: PageId,
        /// Full page value.
        value: Bytes,
    },
    /// `W_IP(X, log(X))`: cache-manager identity write. Semantically a
    /// physical write of the page's current value; kept distinct so the
    /// experiments can count Iw/oF logging separately.
    IdentityWrite {
        /// Page "written" (unchanged).
        target: PageId,
        /// The page's value at the time of the identity write.
        value: Bytes,
    },
    /// A physiological operation.
    Physio(PhysioOp),
    /// A logical operation.
    Logical(LogicalOp),
}

impl OpBody {
    /// The operation's class (paper Table 1).
    pub fn class(&self) -> OpClass {
        match self {
            OpBody::PhysicalWrite { .. } => OpClass::Physical,
            OpBody::IdentityWrite { .. } => OpClass::Identity,
            OpBody::Physio(_) => OpClass::Physiological,
            OpBody::Logical(_) => OpClass::Logical,
        }
    }

    /// `readset(Op)`: pages whose values the operation reads.
    pub fn readset(&self) -> Vec<PageId> {
        match self {
            OpBody::PhysicalWrite { .. } | OpBody::IdentityWrite { .. } => vec![],
            OpBody::Physio(p) => vec![p.target()],
            OpBody::Logical(l) => match l {
                LogicalOp::Copy { src, .. } => vec![*src],
                LogicalOp::MovRec { old, .. } => vec![*old],
                LogicalOp::AppRead { src, app } => vec![*src, *app],
                LogicalOp::AppWrite { app, .. } => vec![*app],
                LogicalOp::MergeRec { src, dst } => vec![*src, *dst],
                LogicalOp::SortExtent { src, .. } => src.clone(),
                LogicalOp::Mix { reads, .. } => reads.clone(),
            },
        }
    }

    /// `writeset(Op)`: pages the operation writes.
    pub fn writeset(&self) -> Vec<PageId> {
        match self {
            OpBody::PhysicalWrite { target, .. } | OpBody::IdentityWrite { target, .. } => {
                vec![*target]
            }
            OpBody::Physio(p) => vec![p.target()],
            OpBody::Logical(l) => match l {
                LogicalOp::Copy { dst, .. } => vec![*dst],
                LogicalOp::MovRec { new, .. } => vec![*new],
                LogicalOp::AppRead { app, .. } => vec![*app],
                LogicalOp::AppWrite { dst, .. } => vec![*dst],
                LogicalOp::MergeRec { dst, .. } => vec![*dst],
                LogicalOp::SortExtent { dst, .. } => dst.clone(),
                LogicalOp::Mix { writes, .. } => writes.clone(),
            },
        }
    }

    /// Visit every page of `readset(Op)` without allocating. Same pages,
    /// same order as [`OpBody::readset`].
    pub fn for_each_read(&self, mut f: impl FnMut(PageId)) {
        match self {
            OpBody::PhysicalWrite { .. } | OpBody::IdentityWrite { .. } => {}
            OpBody::Physio(p) => f(p.target()),
            OpBody::Logical(l) => match l {
                LogicalOp::Copy { src, .. } => f(*src),
                LogicalOp::MovRec { old, .. } => f(*old),
                LogicalOp::AppRead { src, app } => {
                    f(*src);
                    f(*app);
                }
                LogicalOp::AppWrite { app, .. } => f(*app),
                LogicalOp::MergeRec { src, dst } => {
                    f(*src);
                    f(*dst);
                }
                LogicalOp::SortExtent { src, .. } => src.iter().copied().for_each(f),
                LogicalOp::Mix { reads, .. } => reads.iter().copied().for_each(f),
            },
        }
    }

    /// Visit every page of `writeset(Op)` without allocating. Same pages,
    /// same order as [`OpBody::writeset`].
    pub fn for_each_write(&self, mut f: impl FnMut(PageId)) {
        match self {
            OpBody::PhysicalWrite { target, .. } | OpBody::IdentityWrite { target, .. } => {
                f(*target)
            }
            OpBody::Physio(p) => f(p.target()),
            OpBody::Logical(l) => match l {
                LogicalOp::Copy { dst, .. } => f(*dst),
                LogicalOp::MovRec { new, .. } => f(*new),
                LogicalOp::AppRead { app, .. } => f(*app),
                LogicalOp::AppWrite { dst, .. } => f(*dst),
                LogicalOp::MergeRec { dst, .. } => f(*dst),
                LogicalOp::SortExtent { dst, .. } => dst.iter().copied().for_each(f),
                LogicalOp::Mix { writes, .. } => writes.iter().copied().for_each(f),
            },
        }
    }

    /// Whether the operation writes `page` *blindly*, i.e. without reading
    /// `page`'s prior value. Blind writes are what allow the refined write
    /// graph to un-expose old values (paper §2.4).
    pub fn is_blind_write_of(&self, page: PageId) -> bool {
        self.writeset().contains(&page) && !self.readset().contains(&page)
    }

    /// The operation's shape under the tree-operation discipline of §4, if
    /// it has one. `None` means the operation is irreducibly general
    /// (multiple writes, or multiple reads feeding a write-new).
    pub fn tree_form(&self) -> Option<TreeForm> {
        match self {
            OpBody::PhysicalWrite { target, .. } | OpBody::IdentityWrite { target, .. } => {
                Some(TreeForm::PageOriented { target: *target })
            }
            OpBody::Physio(p) => Some(TreeForm::PageOriented { target: p.target() }),
            OpBody::Logical(l) => match l {
                LogicalOp::Copy { src, dst } => Some(TreeForm::WriteNew {
                    old: *src,
                    new: *dst,
                }),
                LogicalOp::MovRec { old, new, .. } => Some(TreeForm::WriteNew {
                    old: *old,
                    new: *new,
                }),
                LogicalOp::AppWrite { app, dst } => Some(TreeForm::WriteNew {
                    old: *app,
                    new: *dst,
                }),
                LogicalOp::AppRead { src, app } => Some(TreeForm::ReadExtra {
                    target: *app,
                    extra: vec![*src],
                }),
                LogicalOp::MergeRec { src, dst } => Some(TreeForm::ReadExtra {
                    target: *dst,
                    extra: vec![*src],
                }),
                LogicalOp::SortExtent { .. } | LogicalOp::Mix { .. } => None,
            },
        }
    }

    /// Evaluate the operation: read its read set through `reader` and return
    /// the new values of its write set, in `writeset()` order.
    ///
    /// This function is **deterministic** in the read values, which is the
    /// contract redo replay depends on. The caller decides, per written
    /// page, whether to install the value (LSN redo test).
    pub fn apply(&self, reader: &mut dyn PageReader) -> Result<Vec<(PageId, Bytes)>, OpError> {
        match self {
            OpBody::PhysicalWrite { target, value } | OpBody::IdentityWrite { target, value } => {
                Ok(vec![(*target, value.clone())])
            }
            OpBody::Physio(p) => apply_physio(p, reader),
            OpBody::Logical(l) => apply_logical(l, reader),
        }
    }

    /// Validate structural well-formedness (unique write set, nonempty write
    /// set, reads/writes as the form requires). The engine calls this before
    /// logging an operation.
    pub fn validate(&self) -> Result<(), OpError> {
        let writes = self.writeset();
        if writes.is_empty() {
            return Err(OpError::Invalid("empty write set".into()));
        }
        let mut sorted = writes.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != writes.len() {
            return Err(OpError::Invalid("duplicate pages in write set".into()));
        }
        if let OpBody::Logical(LogicalOp::Mix { reads, .. }) = self {
            if reads.is_empty() {
                return Err(OpError::Invalid("Mix must read at least one page".into()));
            }
        }
        if let OpBody::Logical(LogicalOp::SortExtent { src, dst }) = self {
            if src.is_empty() || dst.is_empty() {
                return Err(OpError::Invalid(
                    "SortExtent extents must be nonempty".into(),
                ));
            }
        }
        Ok(())
    }

    /// Short label for logs and experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            OpBody::PhysicalWrite { .. } => "W_P",
            OpBody::IdentityWrite { .. } => "W_IP",
            OpBody::Physio(PhysioOp::SetBytes { .. }) => "SetBytes",
            OpBody::Physio(PhysioOp::InsertRec { .. }) => "InsRec",
            OpBody::Physio(PhysioOp::DeleteRec { .. }) => "DelRec",
            OpBody::Physio(PhysioOp::RmvRec { .. }) => "RmvRec",
            OpBody::Physio(PhysioOp::AppExec { .. }) => "Ex",
            OpBody::Logical(LogicalOp::Copy { .. }) => "Copy",
            OpBody::Logical(LogicalOp::MovRec { .. }) => "MovRec",
            OpBody::Logical(LogicalOp::AppRead { .. }) => "R",
            OpBody::Logical(LogicalOp::AppWrite { .. }) => "W_L",
            OpBody::Logical(LogicalOp::MergeRec { .. }) => "MergeRec",
            OpBody::Logical(LogicalOp::SortExtent { .. }) => "Sort",
            OpBody::Logical(LogicalOp::Mix { .. }) => "Mix",
        }
    }
}

fn apply_physio(
    p: &PhysioOp,
    reader: &mut dyn PageReader,
) -> Result<Vec<(PageId, Bytes)>, OpError> {
    match p {
        PhysioOp::SetBytes {
            target,
            offset,
            bytes,
        } => {
            let cur = reader.read(*target)?;
            let off = *offset as usize;
            if off + bytes.len() > cur.len() {
                return Err(OpError::Invalid(format!(
                    "SetBytes overlay {}..{} exceeds page size {}",
                    off,
                    off + bytes.len(),
                    cur.len()
                )));
            }
            let mut out = cur.to_vec();
            out[off..off + bytes.len()].copy_from_slice(bytes);
            Ok(vec![(*target, Bytes::from(out))])
        }
        PhysioOp::InsertRec { target, key, val } => {
            let cur = reader.read(*target)?;
            let size = cur.len();
            let mut page = RecPage::decode(*target, &cur)?;
            page.insert(key.to_vec(), val.to_vec());
            Ok(vec![(*target, page.encode(*target, size)?)])
        }
        PhysioOp::DeleteRec { target, key } => {
            let cur = reader.read(*target)?;
            let size = cur.len();
            let mut page = RecPage::decode(*target, &cur)?;
            page.delete(key);
            Ok(vec![(*target, page.encode(*target, size)?)])
        }
        PhysioOp::RmvRec { target, sep } => {
            let cur = reader.read(*target)?;
            let size = cur.len();
            let mut page = RecPage::decode(*target, &cur)?;
            page.remove_above(sep);
            Ok(vec![(*target, page.encode(*target, size)?)])
        }
        PhysioOp::AppExec { app, salt } => {
            let cur = reader.read(*app)?;
            let out = mix::derive_page(*salt ^ 0xE0EC, 0, &[&cur], cur.len());
            Ok(vec![(*app, Bytes::from(out))])
        }
    }
}

fn apply_logical(
    l: &LogicalOp,
    reader: &mut dyn PageReader,
) -> Result<Vec<(PageId, Bytes)>, OpError> {
    match l {
        LogicalOp::Copy { src, dst } => {
            let v = reader.read(*src)?;
            Ok(vec![(*dst, v)])
        }
        LogicalOp::MovRec { old, sep, new } => {
            let cur = reader.read(*old)?;
            let size = cur.len();
            let page = RecPage::decode(*old, &cur)?;
            let moved = RecPage::from_sorted(page.records_above(sep));
            Ok(vec![(*new, moved.encode(*new, size)?)])
        }
        LogicalOp::AppRead { src, app } => {
            let x = reader.read(*src)?;
            let a = reader.read(*app)?;
            let out = mix::derive_page(0xA99D, 0, &[&a, &x], a.len());
            Ok(vec![(*app, Bytes::from(out))])
        }
        LogicalOp::AppWrite { app, dst } => {
            let a = reader.read(*app)?;
            let out = mix::derive_page(0xA77E, 0, &[&a], a.len());
            Ok(vec![(*dst, Bytes::from(out))])
        }
        LogicalOp::MergeRec { src, dst } => {
            let src_bytes = reader.read(*src)?;
            let dst_bytes = reader.read(*dst)?;
            let size = dst_bytes.len();
            let mut merged = RecPage::decode(*dst, &dst_bytes)?;
            let moving = RecPage::decode(*src, &src_bytes)?;
            for (k, v) in moving.iter() {
                merged.insert(k.to_vec(), v.to_vec());
            }
            Ok(vec![(*dst, merged.encode(*dst, size)?)])
        }
        LogicalOp::SortExtent { src, dst } => {
            let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut size = 0;
            for &s in src {
                let cur = reader.read(s)?;
                size = cur.len();
                let page = RecPage::decode(s, &cur)?;
                all.extend(page.into_entries());
            }
            // Last occurrence of a duplicate key (across pages) wins, as if
            // the extent were scanned in order.
            all.sort_by(|a, b| a.0.cmp(&b.0));
            all.dedup_by(|later, earlier| {
                if later.0 == earlier.0 {
                    // `dedup_by` removes `later` when true and keeps
                    // `earlier`; swap values so the later one survives.
                    std::mem::swap(&mut later.1, &mut earlier.1);
                    true
                } else {
                    false
                }
            });
            // Greedily pack sorted records into the destination extent.
            let mut out = Vec::with_capacity(dst.len());
            let mut it = all.into_iter().peekable();
            for &d in dst {
                let mut page = RecPage::new();
                while let Some((k, v)) = it.next_if(|(k, v)| page.fits_with(k, v, size)) {
                    page.insert(k, v);
                }
                out.push((d, page.encode(d, size)?));
            }
            if it.peek().is_some() {
                return Err(match dst.last() {
                    Some(&d) => OpError::PageFull { page: d },
                    None => OpError::Invalid("sort with an empty destination extent".to_string()),
                });
            }
            Ok(out)
        }
        LogicalOp::Mix {
            reads,
            writes,
            salt,
        } => {
            let mut inputs = Vec::with_capacity(reads.len());
            let mut size = 0;
            for &r in reads {
                let v = reader.read(r)?;
                size = v.len();
                inputs.push(v);
            }
            let refs: Vec<&[u8]> = inputs.iter().map(|b| b.as_ref()).collect();
            Ok(writes
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    (
                        w,
                        Bytes::from(mix::derive_page(*salt, i as u64, &refs, size)),
                    )
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    const SIZE: usize = 64;

    struct MapReader(HashMap<PageId, Bytes>);

    impl PageReader for MapReader {
        fn read(&mut self, id: PageId) -> Result<Bytes, OpError> {
            self.0.get(&id).cloned().ok_or(OpError::ReadFailed {
                page: id,
                cause: "absent".into(),
            })
        }
    }

    fn pid(i: u32) -> PageId {
        PageId::new(0, i)
    }

    fn recpage_bytes(id: PageId, kvs: &[(&str, &str)]) -> Bytes {
        let mut p = RecPage::new();
        for (k, v) in kvs {
            p.insert(k.as_bytes().to_vec(), v.as_bytes().to_vec());
        }
        p.encode(id, SIZE).unwrap()
    }

    fn reader(pages: &[(PageId, Bytes)]) -> MapReader {
        MapReader(pages.iter().cloned().collect())
    }

    #[test]
    fn physical_write_is_blind() {
        let op = OpBody::PhysicalWrite {
            target: pid(1),
            value: Bytes::from(vec![7u8; SIZE]),
        };
        assert_eq!(op.class(), OpClass::Physical);
        assert!(op.readset().is_empty());
        assert_eq!(op.writeset(), vec![pid(1)]);
        assert!(op.is_blind_write_of(pid(1)));
        let out = op.apply(&mut reader(&[])).unwrap();
        assert_eq!(out[0].1[0], 7);
    }

    #[test]
    fn identity_write_reports_identity_class() {
        let op = OpBody::IdentityWrite {
            target: pid(1),
            value: Bytes::from(vec![0u8; SIZE]),
        };
        assert_eq!(op.class(), OpClass::Identity);
        assert!(op.class().is_page_oriented());
        assert!(op.is_blind_write_of(pid(1)));
    }

    #[test]
    fn setbytes_overlays() {
        let op = OpBody::Physio(PhysioOp::SetBytes {
            target: pid(0),
            offset: 2,
            bytes: Bytes::from_static(b"xyz"),
        });
        let base = Bytes::from(vec![b'.'; SIZE]);
        let out = op.apply(&mut reader(&[(pid(0), base)])).unwrap();
        assert_eq!(&out[0].1[..6], b"..xyz.");
        assert_eq!(op.readset(), vec![pid(0)]);
        assert!(!op.is_blind_write_of(pid(0)));
    }

    #[test]
    fn setbytes_bounds_checked() {
        let op = OpBody::Physio(PhysioOp::SetBytes {
            target: pid(0),
            offset: SIZE as u32 - 1,
            bytes: Bytes::from_static(b"ab"),
        });
        let base = Bytes::from(vec![0u8; SIZE]);
        assert!(op.apply(&mut reader(&[(pid(0), base)])).is_err());
    }

    #[test]
    fn insert_and_delete_rec() {
        let base = recpage_bytes(pid(0), &[("b", "1")]);
        let ins = OpBody::Physio(PhysioOp::InsertRec {
            target: pid(0),
            key: Bytes::from_static(b"a"),
            val: Bytes::from_static(b"0"),
        });
        let out = ins.apply(&mut reader(&[(pid(0), base)])).unwrap();
        let page = RecPage::decode(pid(0), &out[0].1).unwrap();
        assert_eq!(page.len(), 2);
        assert_eq!(page.get(b"a"), Some(b"0".as_slice()));

        let del = OpBody::Physio(PhysioOp::DeleteRec {
            target: pid(0),
            key: Bytes::from_static(b"b"),
        });
        let out2 = del
            .apply(&mut reader(&[(pid(0), out[0].1.clone())]))
            .unwrap();
        let page2 = RecPage::decode(pid(0), &out2[0].1).unwrap();
        assert_eq!(page2.len(), 1);
        assert!(page2.get(b"b").is_none());
    }

    #[test]
    fn movrec_then_rmvrec_is_a_split() {
        let base = recpage_bytes(pid(0), &[("a", "1"), ("c", "3"), ("e", "5"), ("g", "7")]);
        let mov = OpBody::Logical(LogicalOp::MovRec {
            old: pid(0),
            sep: Bytes::from_static(b"c"),
            new: pid(1),
        });
        assert_eq!(mov.readset(), vec![pid(0)]);
        assert_eq!(mov.writeset(), vec![pid(1)]);
        assert!(mov.is_blind_write_of(pid(1)));
        assert_eq!(
            mov.tree_form(),
            Some(TreeForm::WriteNew {
                old: pid(0),
                new: pid(1)
            })
        );

        let out = mov.apply(&mut reader(&[(pid(0), base.clone())])).unwrap();
        let newp = RecPage::decode(pid(1), &out[0].1).unwrap();
        assert_eq!(newp.len(), 2);
        assert_eq!(newp.get(b"e"), Some(b"5".as_slice()));
        assert_eq!(newp.get(b"g"), Some(b"7".as_slice()));

        let rmv = OpBody::Physio(PhysioOp::RmvRec {
            target: pid(0),
            sep: Bytes::from_static(b"c"),
        });
        let out2 = rmv.apply(&mut reader(&[(pid(0), base)])).unwrap();
        let oldp = RecPage::decode(pid(0), &out2[0].1).unwrap();
        assert_eq!(oldp.len(), 2);
        assert!(oldp.get(b"e").is_none());
    }

    #[test]
    fn copy_moves_value_verbatim() {
        let v = Bytes::from(vec![0xAA; SIZE]);
        let op = OpBody::Logical(LogicalOp::Copy {
            src: pid(3),
            dst: pid(9),
        });
        let out = op.apply(&mut reader(&[(pid(3), v.clone())])).unwrap();
        assert_eq!(out, vec![(pid(9), v)]);
    }

    #[test]
    fn app_ops_shapes() {
        let r = OpBody::Logical(LogicalOp::AppRead {
            src: pid(1),
            app: pid(2),
        });
        assert_eq!(r.readset(), vec![pid(1), pid(2)]);
        assert_eq!(r.writeset(), vec![pid(2)]);
        assert!(matches!(r.tree_form(), Some(TreeForm::ReadExtra { .. })));

        let w = OpBody::Logical(LogicalOp::AppWrite {
            app: pid(2),
            dst: pid(5),
        });
        assert!(w.is_blind_write_of(pid(5)));
        assert_eq!(
            w.tree_form(),
            Some(TreeForm::WriteNew {
                old: pid(2),
                new: pid(5)
            })
        );

        let ex = OpBody::Physio(PhysioOp::AppExec {
            app: pid(2),
            salt: 4,
        });
        assert_eq!(
            ex.tree_form(),
            Some(TreeForm::PageOriented { target: pid(2) })
        );
    }

    #[test]
    fn app_read_depends_on_both_inputs() {
        let a = Bytes::from(vec![1u8; SIZE]);
        let x1 = Bytes::from(vec![2u8; SIZE]);
        let x2 = Bytes::from(vec![3u8; SIZE]);
        let op = OpBody::Logical(LogicalOp::AppRead {
            src: pid(1),
            app: pid(2),
        });
        let o1 = op
            .apply(&mut reader(&[(pid(1), x1), (pid(2), a.clone())]))
            .unwrap();
        let o2 = op.apply(&mut reader(&[(pid(1), x2), (pid(2), a)])).unwrap();
        assert_ne!(o1[0].1, o2[0].1, "different inputs → different app state");
    }

    #[test]
    fn sort_extent_sorts_and_packs() {
        let p0 = recpage_bytes(pid(0), &[("d", "4"), ("b", "2")]);
        let p1 = recpage_bytes(pid(1), &[("a", "1"), ("c", "3")]);
        let op = OpBody::Logical(LogicalOp::SortExtent {
            src: vec![pid(0), pid(1)],
            dst: vec![pid(10), pid(11)],
        });
        assert!(op.tree_form().is_none(), "sort is irreducibly general");
        let out = op
            .apply(&mut reader(&[(pid(0), p0), (pid(1), p1)]))
            .unwrap();
        assert_eq!(out.len(), 2);
        let first = RecPage::decode(pid(10), &out[0].1).unwrap();
        let all: Vec<Vec<u8>> = first.iter().map(|(k, _)| k.to_vec()).collect();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        // All four records land somewhere and first page is filled first.
        let second = RecPage::decode(pid(11), &out[1].1).unwrap();
        assert_eq!(first.len() + second.len(), 4);
        assert!(first.len() >= second.len());
    }

    #[test]
    fn sort_extent_duplicate_keys_last_wins() {
        let p0 = recpage_bytes(pid(0), &[("k", "old")]);
        let p1 = recpage_bytes(pid(1), &[("k", "new")]);
        let op = OpBody::Logical(LogicalOp::SortExtent {
            src: vec![pid(0), pid(1)],
            dst: vec![pid(10)],
        });
        let out = op
            .apply(&mut reader(&[(pid(0), p0), (pid(1), p1)]))
            .unwrap();
        let page = RecPage::decode(pid(10), &out[0].1).unwrap();
        assert_eq!(page.get(b"k"), Some(b"new".as_slice()));
    }

    #[test]
    fn sort_extent_overflow_errors() {
        let mut big = RecPage::new();
        for i in 0..5u8 {
            big.insert(vec![i], vec![0u8; 10]);
        }
        let src = big.encode(pid(0), 128).unwrap();
        let op = OpBody::Logical(LogicalOp::SortExtent {
            src: vec![pid(0)],
            dst: vec![pid(1)],
        });
        // dst pages inherit the 128-byte size; 5 × 15B records fit (77B),
        // so shrink page capacity by using many more records instead.
        let mut huge = RecPage::new();
        for i in 0..9u8 {
            huge.insert(vec![i], vec![0u8; 10]);
        }
        assert!(huge.encode(pid(0), 256).is_ok());
        let src2 = huge.encode(pid(0), 256).unwrap();
        let op2 = OpBody::Logical(LogicalOp::SortExtent {
            src: vec![pid(0)],
            dst: vec![pid(1)],
        });
        // 9 records × 15B + 2 = 137B fits in 256 → ok.
        assert!(op2.apply(&mut reader(&[(pid(0), src2)])).is_ok());
        // One 128B destination page cannot hold 5 × 15B + header? 77B fits;
        // verify the success path too.
        assert!(op.apply(&mut reader(&[(pid(0), src)])).is_ok());
    }

    #[test]
    fn mix_is_deterministic_and_input_sensitive() {
        let op = OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(0), pid(1)],
            writes: vec![pid(2), pid(3)],
            salt: 99,
        });
        let a = Bytes::from(vec![1u8; SIZE]);
        let b = Bytes::from(vec![2u8; SIZE]);
        let o1 = op
            .apply(&mut reader(&[(pid(0), a.clone()), (pid(1), b.clone())]))
            .unwrap();
        let o2 = op
            .apply(&mut reader(&[(pid(0), a.clone()), (pid(1), b.clone())]))
            .unwrap();
        assert_eq!(o1, o2);
        assert_ne!(o1[0].1, o1[1].1, "distinct outputs per written page");
        let c = Bytes::from(vec![9u8; SIZE]);
        let o3 = op.apply(&mut reader(&[(pid(0), a), (pid(1), c)])).unwrap();
        assert_ne!(o1[0].1, o3[0].1, "output reflects read values");
    }

    #[test]
    fn validation_catches_malformed_ops() {
        let dup = OpBody::Logical(LogicalOp::Mix {
            reads: vec![pid(0)],
            writes: vec![pid(1), pid(1)],
            salt: 0,
        });
        assert!(dup.validate().is_err());
        let noread = OpBody::Logical(LogicalOp::Mix {
            reads: vec![],
            writes: vec![pid(1)],
            salt: 0,
        });
        assert!(noread.validate().is_err());
        let ok = OpBody::Logical(LogicalOp::Copy {
            src: pid(0),
            dst: pid(1),
        });
        assert!(ok.validate().is_ok());
        let empty_sort = OpBody::Logical(LogicalOp::SortExtent {
            src: vec![],
            dst: vec![pid(1)],
        });
        assert!(empty_sort.validate().is_err());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            OpBody::Logical(LogicalOp::MovRec {
                old: pid(0),
                sep: Bytes::new(),
                new: pid(1)
            })
            .label(),
            "MovRec"
        );
        assert_eq!(
            OpBody::Physio(PhysioOp::RmvRec {
                target: pid(0),
                sep: Bytes::new()
            })
            .label(),
            "RmvRec"
        );
    }
}
