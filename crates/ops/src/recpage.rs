//! A sorted record-page codec.
//!
//! Both motivating workloads of the paper — B-tree node splits (§1.1
//! "Database Recovery") and record files (§1.1 "File System Recovery") —
//! manipulate pages holding ordered *records*. This module provides the
//! shared on-page format: a count followed by length-prefixed `(key, value)`
//! entries kept sorted by key, padded with zeroes to the page size.
//!
//! Layout (little-endian):
//!
//! ```text
//! [u16 count] ([u16 key_len][u16 val_len][key][val])*  [zero padding]
//! ```
//!
//! The codec round-trips exactly, so a record page re-encoded after a
//! no-op modification is byte-identical — important because page equality is
//! how the test oracle checks recovery correctness.

use crate::error::OpError;
use bytes::Bytes;
use lob_pagestore::PageId;

/// Header bytes (the `u16` record count).
const HEADER: usize = 2;
/// Per-entry overhead bytes (two `u16` length fields).
const ENTRY_OVERHEAD: usize = 4;

/// A decoded record page: records sorted by key, unique keys.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecPage {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
}

impl RecPage {
    /// An empty record page.
    pub fn new() -> RecPage {
        RecPage::default()
    }

    /// Decode a page payload. `page` is used only for error reporting.
    pub fn decode(page: PageId, data: &[u8]) -> Result<RecPage, OpError> {
        let malformed = |detail: &str| OpError::MalformedPage {
            page,
            detail: detail.to_string(),
        };
        if data.len() < HEADER {
            return Err(malformed("page smaller than header"));
        }
        let count = u16::from_le_bytes([data[0], data[1]]) as usize;
        let mut entries = Vec::with_capacity(count);
        let mut off = HEADER;
        for _ in 0..count {
            if off + ENTRY_OVERHEAD > data.len() {
                return Err(malformed("truncated entry header"));
            }
            let klen = u16::from_le_bytes([data[off], data[off + 1]]) as usize;
            let vlen = u16::from_le_bytes([data[off + 2], data[off + 3]]) as usize;
            off += ENTRY_OVERHEAD;
            if off + klen + vlen > data.len() {
                return Err(malformed("truncated entry body"));
            }
            let key = data[off..off + klen].to_vec();
            let val = data[off + klen..off + klen + vlen].to_vec();
            off += klen + vlen;
            if let Some((prev, _)) = entries.last() {
                if *prev >= key {
                    return Err(malformed("keys not strictly ascending"));
                }
            }
            entries.push((key, val));
        }
        Ok(RecPage { entries })
    }

    /// Encode into a payload of exactly `page_size` bytes.
    pub fn encode(&self, page: PageId, page_size: usize) -> Result<Bytes, OpError> {
        let need = self.encoded_len();
        if need > page_size {
            return Err(OpError::PageFull { page });
        }
        let mut out = Vec::with_capacity(page_size);
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for (k, v) in &self.entries {
            out.extend_from_slice(&(k.len() as u16).to_le_bytes());
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            out.extend_from_slice(k);
            out.extend_from_slice(v);
        }
        out.resize(page_size, 0);
        Ok(Bytes::from(out))
    }

    /// Bytes the encoded form occupies before padding.
    pub fn encoded_len(&self) -> usize {
        HEADER
            + self
                .entries
                .iter()
                .map(|(k, v)| ENTRY_OVERHEAD + k.len() + v.len())
                .sum::<usize>()
    }

    /// Whether inserting `(key, val)` would fit in `page_size`.
    pub fn fits_with(&self, key: &[u8], val: &[u8], page_size: usize) -> bool {
        // Replacing an existing key frees its old value first.
        let existing = self.get(key).map(|v| ENTRY_OVERHEAD + key.len() + v.len());
        let after =
            self.encoded_len() - existing.unwrap_or(0) + ENTRY_OVERHEAD + key.len() + val.len();
        after <= page_size
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a record by key.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Insert or replace a record. Returns the previous value if replaced.
    pub fn insert(&mut self, key: Vec<u8>, val: Vec<u8>) -> Option<Vec<u8>> {
        match self
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(&key))
        {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, val)),
            Err(i) => {
                self.entries.insert(i, (key, val));
                None
            }
        }
    }

    /// Delete a record by key, returning its value if present.
    pub fn delete(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        match self
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
        {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Records with keys strictly greater than `sep`, in key order.
    /// This is the set a `MovRec(old, key, new)` split moves (paper §1.3:
    /// "moves index entries with keys greater than the split key").
    pub fn records_above(&self, sep: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let start = match self
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(sep))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.entries[start..].to_vec()
    }

    /// Remove all records with keys strictly greater than `sep` (the
    /// `RmvRec(old, key)` physiological operation).
    pub fn remove_above(&mut self, sep: &[u8]) {
        let start = match self
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(sep))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.entries.truncate(start);
    }

    /// The median key (used to pick split separators).
    pub fn median_key(&self) -> Option<&[u8]> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries[self.entries.len() / 2].0.as_slice())
        }
    }

    /// First (smallest) key.
    pub fn min_key(&self) -> Option<&[u8]> {
        self.entries.first().map(|(k, _)| k.as_slice())
    }

    /// Last (largest) key.
    pub fn max_key(&self) -> Option<&[u8]> {
        self.entries.last().map(|(k, _)| k.as_slice())
    }

    /// Iterate over records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Bulk-load from sorted unique records (panics in debug if unsorted).
    pub fn from_sorted(entries: Vec<(Vec<u8>, Vec<u8>)>) -> RecPage {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        RecPage { entries }
    }

    /// Consume into the record vector.
    pub fn into_entries(self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid() -> PageId {
        PageId::new(0, 0)
    }

    fn kv(k: &str, v: &str) -> (Vec<u8>, Vec<u8>) {
        (k.as_bytes().to_vec(), v.as_bytes().to_vec())
    }

    #[test]
    fn empty_round_trip() {
        let p = RecPage::new();
        let enc = p.encode(pid(), 64).unwrap();
        assert_eq!(enc.len(), 64);
        let q = RecPage::decode(pid(), &enc).unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn insert_get_delete() {
        let mut p = RecPage::new();
        let (k, v) = kv("bee", "1");
        assert!(p.insert(k.clone(), v).is_none());
        assert_eq!(p.get(b"bee"), Some(b"1".as_slice()));
        assert_eq!(p.insert(k.clone(), b"2".to_vec()), Some(b"1".to_vec()));
        assert_eq!(p.get(b"bee"), Some(b"2".as_slice()));
        assert_eq!(p.delete(b"bee"), Some(b"2".to_vec()));
        assert_eq!(p.get(b"bee"), None);
        assert_eq!(p.delete(b"bee"), None);
    }

    #[test]
    fn keys_stay_sorted() {
        let mut p = RecPage::new();
        for k in ["m", "a", "z", "b"] {
            p.insert(k.as_bytes().to_vec(), vec![]);
        }
        let keys: Vec<&[u8]> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"m", b"z"]);
        assert_eq!(p.min_key(), Some(b"a".as_slice()));
        assert_eq!(p.max_key(), Some(b"z".as_slice()));
    }

    #[test]
    fn round_trip_preserves_bytes_exactly() {
        let mut p = RecPage::new();
        p.insert(b"alpha".to_vec(), b"1".to_vec());
        p.insert(b"beta".to_vec(), vec![0, 255, 7]);
        let enc1 = p.encode(pid(), 128).unwrap();
        let q = RecPage::decode(pid(), &enc1).unwrap();
        let enc2 = q.encode(pid(), 128).unwrap();
        assert_eq!(enc1, enc2);
        assert_eq!(p, q);
    }

    #[test]
    fn encode_respects_capacity() {
        let mut p = RecPage::new();
        p.insert(vec![b'k'; 30], vec![b'v'; 30]);
        assert!(matches!(p.encode(pid(), 32), Err(OpError::PageFull { .. })));
        assert!(p.encode(pid(), 128).is_ok());
    }

    #[test]
    fn fits_with_accounts_for_replacement() {
        let mut p = RecPage::new();
        p.insert(b"k".to_vec(), vec![0u8; 20]);
        // encoded_len = 2 + 4+1+20 = 27. Page of 32: new record wouldn't fit...
        assert!(!p.fits_with(b"j", &[0u8; 10], 32));
        // ...but replacing k's 20-byte value with a 10-byte one does.
        assert!(p.fits_with(b"k", &[0u8; 10], 32));
    }

    #[test]
    fn split_primitives() {
        let mut p = RecPage::new();
        for (i, k) in ["a", "c", "e", "g"].iter().enumerate() {
            p.insert(k.as_bytes().to_vec(), vec![i as u8]);
        }
        let moved = p.records_above(b"c");
        assert_eq!(
            moved,
            vec![kv_raw("e", &[2]), kv_raw("g", &[3])],
            "records strictly above the separator move"
        );
        // Separator between existing keys.
        let moved2 = p.records_above(b"d");
        assert_eq!(moved2.len(), 2);
        p.remove_above(b"c");
        let keys: Vec<&[u8]> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"c"]);
    }

    fn kv_raw(k: &str, v: &[u8]) -> (Vec<u8>, Vec<u8>) {
        (k.as_bytes().to_vec(), v.to_vec())
    }

    #[test]
    fn median_key_exists_for_nonempty() {
        let mut p = RecPage::new();
        assert!(p.median_key().is_none());
        for k in ["a", "b", "c", "d", "e"] {
            p.insert(k.as_bytes().to_vec(), vec![]);
        }
        assert_eq!(p.median_key(), Some(b"c".as_slice()));
    }

    #[test]
    fn decode_rejects_garbage() {
        // Count says 1 entry but no bytes follow.
        let mut data = vec![0u8; 16];
        data[0] = 1;
        // key_len = 200 overruns.
        data[2] = 200;
        assert!(RecPage::decode(pid(), &data).is_err());
        // Too-short page.
        assert!(RecPage::decode(pid(), &[0u8; 1]).is_err());
    }

    #[test]
    fn decode_rejects_unsorted() {
        let mut p = Vec::new();
        p.extend_from_slice(&2u16.to_le_bytes());
        for k in [b"b", b"a"] {
            p.extend_from_slice(&1u16.to_le_bytes());
            p.extend_from_slice(&0u16.to_le_bytes());
            p.extend_from_slice(k);
        }
        p.resize(64, 0);
        assert!(RecPage::decode(pid(), &p).is_err());
    }

    #[test]
    fn from_sorted_round_trips() {
        let p = RecPage::from_sorted(vec![kv("a", "1"), kv("b", "2")]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.into_entries().len(), 2);
    }
}
