//! # lob-filesys — an extent-based file layer
//!
//! The paper's file-system example (§1.1): "A copy operation copies file X
//! to file Y. This same operation form describes a sort ... With logical
//! operations, only source and target file identifiers are logged. With
//! page oriented operations, one can't avoid logging the value of Y."
//!
//! A *file* here is a named extent of record pages. The catalog (name →
//! extent) lives in a dedicated catalog page maintained with physiological
//! record operations, so the whole file system is recoverable from the
//! log.
//!
//! * [`FsVolume::copy_file`] — page-wise `Copy` operations (write-new tree
//!   ops: each destination page is freshly allocated) or, in
//!   [`CopyLogging::PageOriented`] mode, physical writes carrying the full
//!   page values in the log — the baseline the economy experiment
//!   compares against.
//! * [`FsVolume::sort_file`] — a single `SortExtent` operation reading the
//!   whole source extent and writing the whole destination extent: the
//!   canonical *general* logical operation (multi-read, multi-write),
//!   exercising multi-object write-graph nodes.

use bytes::Bytes;
use lob_core::{Engine, EngineError};
use lob_ops::{LogicalOp, OpBody, PhysioOp, RecPage};
use lob_pagestore::{PageId, PartitionId};

/// How file copies are logged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyLogging {
    /// One `Copy(src, dst)` record (two identifiers) per page.
    Logical,
    /// One `W_P(dst, log(value))` record (full page value) per page.
    PageOriented,
}

/// Errors from the file layer.
#[derive(Debug)]
pub enum FsError {
    /// Underlying engine failure.
    Engine(EngineError),
    /// No such file.
    NotFound(String),
    /// A file with that name already exists.
    Exists(String),
    /// Catalog page is corrupt or full.
    Catalog(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Engine(e) => write!(f, "engine error: {e}"),
            FsError::NotFound(n) => write!(f, "no such file: {n}"),
            FsError::Exists(n) => write!(f, "file exists: {n}"),
            FsError::Catalog(m) => write!(f, "catalog error: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<EngineError> for FsError {
    fn from(e: EngineError) -> Self {
        FsError::Engine(e)
    }
}

fn encode_extent(pages: &[PageId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(pages.len() * 8);
    for p in pages {
        out.extend_from_slice(&p.partition.0.to_le_bytes());
        out.extend_from_slice(&p.index.to_le_bytes());
    }
    out
}

fn decode_extent(bytes: &[u8]) -> Result<Vec<PageId>, FsError> {
    if bytes.len() % 8 != 0 {
        return Err(FsError::Catalog(
            "extent record length not 8-aligned".into(),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .filter_map(|c| match *c {
            [a0, a1, a2, a3, b0, b1, b2, b3] => Some(PageId::new(
                u32::from_le_bytes([a0, a1, a2, a3]),
                u32::from_le_bytes([b0, b1, b2, b3]),
            )),
            // chunks_exact(8) yields exactly 8-byte slices.
            _ => None,
        })
        .collect())
}

/// A key-value record: owned key and value bytes.
pub type Record = (Vec<u8>, Vec<u8>);

/// A file-system volume over one partition.
///
/// ```
/// use lob_filesys::{CopyLogging, FsVolume};
/// use lob_core::{Engine, EngineConfig, PartitionId};
///
/// let mut engine = Engine::new(EngineConfig::single(128, 512)).unwrap();
/// let vol = FsVolume::create(&mut engine, PartitionId(0)).unwrap();
/// vol.create_file(&mut engine, "data", 4).unwrap();
/// vol.write_record(&mut engine, "data", 0, b"k1", b"v1").unwrap();
/// // A logical copy logs two identifiers per page, not page contents.
/// vol.copy_file(&mut engine, "data", "data.bak", CopyLogging::Logical).unwrap();
/// assert_eq!(
///     vol.read_records(&mut engine, "data").unwrap(),
///     vol.read_records(&mut engine, "data.bak").unwrap(),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct FsVolume {
    partition: PartitionId,
    catalog: PageId,
}

impl FsVolume {
    /// Format a volume: allocates the catalog page.
    pub fn create(engine: &mut Engine, partition: PartitionId) -> Result<FsVolume, FsError> {
        let catalog = engine.alloc_page(partition)?;
        Ok(FsVolume { partition, catalog })
    }

    /// Re-open a volume from its catalog page.
    pub fn open(partition: PartitionId, catalog: PageId) -> FsVolume {
        FsVolume { partition, catalog }
    }

    /// The catalog page id.
    pub fn catalog_page(&self) -> PageId {
        self.catalog
    }

    fn read_catalog(&self, engine: &mut Engine) -> Result<RecPage, FsError> {
        let page = engine.read_page(self.catalog)?;
        RecPage::decode(self.catalog, page.data()).map_err(|e| FsError::Catalog(e.to_string()))
    }

    /// Create a file of `pages` fresh pages. Returns its extent.
    pub fn create_file(
        &self,
        engine: &mut Engine,
        name: &str,
        pages: u32,
    ) -> Result<Vec<PageId>, FsError> {
        let catalog = self.read_catalog(engine)?;
        if catalog.get(name.as_bytes()).is_some() {
            return Err(FsError::Exists(name.to_string()));
        }
        let extent: Vec<PageId> = (0..pages)
            .map(|_| engine.alloc_page(self.partition))
            .collect::<Result<_, _>>()?;
        let rec = encode_extent(&extent);
        if !catalog.fits_with(name.as_bytes(), &rec, engine.config().page_size) {
            return Err(FsError::Catalog("catalog page full".into()));
        }
        engine.execute(OpBody::Physio(PhysioOp::InsertRec {
            target: self.catalog,
            key: Bytes::copy_from_slice(name.as_bytes()),
            val: Bytes::from(rec),
        }))?;
        Ok(extent)
    }

    /// The extent of a file.
    pub fn extent(&self, engine: &mut Engine, name: &str) -> Result<Vec<PageId>, FsError> {
        let catalog = self.read_catalog(engine)?;
        match catalog.get(name.as_bytes()) {
            Some(rec) => decode_extent(rec),
            None => Err(FsError::NotFound(name.to_string())),
        }
    }

    /// File names in the catalog.
    pub fn list(&self, engine: &mut Engine) -> Result<Vec<String>, FsError> {
        let catalog = self.read_catalog(engine)?;
        Ok(catalog
            .iter()
            .map(|(k, _)| String::from_utf8_lossy(k).into_owned())
            .collect())
    }

    /// Insert a record into page `page_idx` of a file.
    pub fn write_record(
        &self,
        engine: &mut Engine,
        name: &str,
        page_idx: usize,
        key: &[u8],
        val: &[u8],
    ) -> Result<(), FsError> {
        let extent = self.extent(engine, name)?;
        let page = *extent
            .get(page_idx)
            .ok_or_else(|| FsError::NotFound(format!("{name}[{page_idx}]")))?;
        engine.execute(OpBody::Physio(PhysioOp::InsertRec {
            target: page,
            key: Bytes::copy_from_slice(key),
            val: Bytes::copy_from_slice(val),
        }))?;
        Ok(())
    }

    /// All records of a file, in extent order (per-page key order).
    pub fn read_records(&self, engine: &mut Engine, name: &str) -> Result<Vec<Record>, FsError> {
        let extent = self.extent(engine, name)?;
        let mut out = Vec::new();
        for pid in extent {
            let page = engine.read_page(pid)?;
            let rp =
                RecPage::decode(pid, page.data()).map_err(|e| FsError::Catalog(e.to_string()))?;
            out.extend(rp.into_entries());
        }
        Ok(out)
    }

    /// Copy file `src` to a new file `dst` (fresh extent), page by page.
    /// Logical mode logs two identifiers per page; page-oriented mode logs
    /// the full page values.
    pub fn copy_file(
        &self,
        engine: &mut Engine,
        src: &str,
        dst: &str,
        logging: CopyLogging,
    ) -> Result<Vec<PageId>, FsError> {
        let src_extent = self.extent(engine, src)?;
        let dst_extent = self.create_file(engine, dst, src_extent.len() as u32)?;
        for (s, d) in src_extent.iter().zip(&dst_extent) {
            match logging {
                CopyLogging::Logical => {
                    engine.execute(OpBody::Logical(LogicalOp::Copy { src: *s, dst: *d }))?;
                }
                CopyLogging::PageOriented => {
                    let value = engine.read_page(*s)?.data().clone();
                    engine.execute(OpBody::PhysicalWrite { target: *d, value })?;
                }
            }
        }
        Ok(dst_extent)
    }

    /// Sort the records of `src` into a new file `dst` with one logical
    /// `SortExtent` operation — a general logical operation (reads the
    /// whole source extent, writes the whole destination extent). Requires
    /// the engine's `General` discipline.
    pub fn sort_file(
        &self,
        engine: &mut Engine,
        src: &str,
        dst: &str,
    ) -> Result<Vec<PageId>, FsError> {
        let src_extent = self.extent(engine, src)?;
        let dst_extent = self.create_file(engine, dst, src_extent.len() as u32)?;
        engine.execute(OpBody::Logical(LogicalOp::SortExtent {
            src: src_extent,
            dst: dst_extent.clone(),
        }))?;
        Ok(dst_extent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lob_core::{Discipline, EngineConfig};

    fn engine() -> Engine {
        Engine::new(EngineConfig::single(128, 256)).unwrap()
    }

    fn fill(vol: &FsVolume, e: &mut Engine, name: &str, n: usize) {
        let extent = vol.extent(e, name).unwrap();
        for i in 0..n {
            let page_idx = i % extent.len();
            vol.write_record(
                e,
                name,
                page_idx,
                format!("k{:03}", (n - i) * 7 % 100).as_bytes(),
                format!("v{i}").as_bytes(),
            )
            .unwrap();
        }
    }

    #[test]
    fn create_and_list_files() {
        let mut e = engine();
        let vol = FsVolume::create(&mut e, PartitionId(0)).unwrap();
        let ext = vol.create_file(&mut e, "alpha", 3).unwrap();
        assert_eq!(ext.len(), 3);
        vol.create_file(&mut e, "beta", 2).unwrap();
        let mut names = vol.list(&mut e).unwrap();
        names.sort();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert!(matches!(
            vol.create_file(&mut e, "alpha", 1),
            Err(FsError::Exists(_))
        ));
        assert!(matches!(
            vol.extent(&mut e, "gamma"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn records_round_trip() {
        let mut e = engine();
        let vol = FsVolume::create(&mut e, PartitionId(0)).unwrap();
        vol.create_file(&mut e, "f", 2).unwrap();
        vol.write_record(&mut e, "f", 0, b"a", b"1").unwrap();
        vol.write_record(&mut e, "f", 1, b"b", b"2").unwrap();
        let recs = vol.read_records(&mut e, "f").unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn logical_copy_replicates_content() {
        let mut e = engine();
        let vol = FsVolume::create(&mut e, PartitionId(0)).unwrap();
        vol.create_file(&mut e, "src", 3).unwrap();
        fill(&vol, &mut e, "src", 12);
        vol.copy_file(&mut e, "src", "dst", CopyLogging::Logical)
            .unwrap();
        assert_eq!(
            vol.read_records(&mut e, "src").unwrap(),
            vol.read_records(&mut e, "dst").unwrap()
        );
    }

    #[test]
    fn copy_logging_economy() {
        let run = |logging: CopyLogging| {
            let mut e = engine();
            let vol = FsVolume::create(&mut e, PartitionId(0)).unwrap();
            vol.create_file(&mut e, "src", 8).unwrap();
            fill(&vol, &mut e, "src", 24);
            let before = e.log().stats().bytes;
            vol.copy_file(&mut e, "src", "dst", logging).unwrap();
            e.log().stats().bytes - before
        };
        let logical = run(CopyLogging::Logical);
        let physical = run(CopyLogging::PageOriented);
        assert!(
            logical * 4 < physical,
            "copy: logical {logical}B should be far below page-oriented {physical}B"
        );
    }

    #[test]
    fn sort_file_produces_sorted_records() {
        let mut e = engine();
        let vol = FsVolume::create(&mut e, PartitionId(0)).unwrap();
        vol.create_file(&mut e, "in", 4).unwrap();
        fill(&vol, &mut e, "in", 20);
        vol.sort_file(&mut e, "in", "out").unwrap();
        let out = vol.read_records(&mut e, "out").unwrap();
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "globally sorted");
        let mut input = vol.read_records(&mut e, "in").unwrap();
        input.sort();
        input.dedup_by(|a, b| a.0 == b.0);
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn copy_and_sort_survive_crash_recovery() {
        let mut e = engine();
        let vol = FsVolume::create(&mut e, PartitionId(0)).unwrap();
        vol.create_file(&mut e, "src", 3).unwrap();
        fill(&vol, &mut e, "src", 9);
        vol.copy_file(&mut e, "src", "cp", CopyLogging::Logical)
            .unwrap();
        vol.sort_file(&mut e, "src", "sorted").unwrap();
        let expect_cp = vol.read_records(&mut e, "cp").unwrap();
        let expect_sorted = vol.read_records(&mut e, "sorted").unwrap();
        e.force_log().unwrap();
        e.crash();
        e.recover().unwrap();
        let vol2 = FsVolume::open(PartitionId(0), vol.catalog_page());
        assert_eq!(vol2.read_records(&mut e, "cp").unwrap(), expect_cp);
        assert_eq!(vol2.read_records(&mut e, "sorted").unwrap(), expect_sorted);
    }

    #[test]
    fn sort_requires_general_discipline() {
        let mut e = Engine::new(EngineConfig {
            discipline: Discipline::Tree,
            ..EngineConfig::single(64, 256)
        })
        .unwrap();
        let vol = FsVolume::create(&mut e, PartitionId(0)).unwrap();
        vol.create_file(&mut e, "in", 2).unwrap();
        assert!(vol.sort_file(&mut e, "in", "out").is_err());
        // But logical copy (a tree op) is fine.
        vol.copy_file(&mut e, "in", "cp", CopyLogging::Logical)
            .unwrap();
    }
}
